"""Lemmas 3.1, 3.2 and 5.1 as executable facts about sequences.

The three fusion-closure lemmas underpin the detector/corrector
extraction proofs.  For specifications in component form (the
fusion+suffix-closed class, per Lemma 3.2 itself) they are *theorems
about our representation*, and these functions check each instance:
given concrete sequences, verify that the lemma's implication holds.

Each function returns ``True`` when the implication is respected (either
because a premise fails or because the conclusion holds), making them
direct targets for property-based testing with random programs,
specifications, and sequences.

A note on Assumption 1 (fusion closure).  Lemmas 3.1 and 3.2 concern
*maintains*, which only involves the safety part — always fusion-closed
in our (bad-state, bad-transition) representation.  Lemma 5.1 involves
full membership and therefore requires the specification itself to be
fusion closed.  A general ``LeadsTo(a, b)`` component with ``a ≠ true``
is **not** fusion closed (an obligation raised before the fusion state is
invisible at it); the paper's Assumption 1 prescribes history variables
in that case.  ``LeadsTo(true, b)`` — the shape used by Convergence and
by every specification in this library's program catalogue — *is*
compatible: a complete sequence satisfies it iff its final state
discharges the standing obligation, which is determined by the tail
alone.  :func:`lemma_5_1` therefore documents (and the property tests
exercise) validity for safety components plus ``LeadsTo(true, ·)``
liveness.
"""

from __future__ import annotations

from typing import Sequence

from ..core.specification import Spec
from ..core.state import State

__all__ = ["lemma_3_1", "lemma_3_2", "lemma_5_1"]


def _fused(prefix: Sequence[State], suffix: Sequence[State]) -> Sequence[State]:
    """Concatenate ``σs`` and ``sβ`` through their shared state ``s``."""
    if not prefix or not suffix or prefix[-1] != suffix[0]:
        raise ValueError("sequences must share the fusion state")
    return list(prefix) + list(suffix[1:])


def lemma_3_1(spec: Spec, prefix: Sequence[State], suffix: Sequence[State]) -> bool:
    """Lemma 3.1: if ``σs`` maintains SPEC and ``sβ`` maintains SPEC then
    ``σsβ`` maintains SPEC (both end/start at the shared state ``s``)."""
    if not (spec.maintains_prefix(prefix) and spec.maintains_prefix(suffix)):
        return True  # premises fail; implication holds vacuously
    return spec.maintains_prefix(_fused(prefix, suffix))


def lemma_3_2(spec: Spec, prefix: Sequence[State], successor: State) -> bool:
    """Lemma 3.2: if ``σs`` maintains SPEC then ``σss'`` maintains SPEC
    iff ``ss'`` maintains SPEC — violation of safety is detectable from
    the final transition alone."""
    if not spec.maintains_prefix(prefix):
        return True
    extended = list(prefix) + [successor]
    pair = [prefix[-1], successor]
    return spec.maintains_prefix(extended) == spec.maintains_prefix(pair)


def lemma_5_1(
    spec: Spec, prefix: Sequence[State], suffix: Sequence[State]
) -> bool:
    """Lemma 5.1: if ``αs`` maintains SPEC and ``sβ ∈ SPEC`` then
    ``αsβ ∈ SPEC`` (``sβ`` evaluated as a complete computation)."""
    if not spec.maintains_prefix(prefix):
        return True
    if not spec.holds_on(suffix, complete=True):
        return True
    return spec.holds_on(_fused(prefix, suffix), complete=True)
