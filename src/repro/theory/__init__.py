"""The paper's theorems, executable.

Each theorem module exposes a function that (a) verifies the theorem's
premises on concrete programs, (b) *constructs* the witness predicates
exactly as the proof does (Theorem 3.4's ``Z = g ∧ g'`` and repaired
``X``; Theorem 4.1's ``X = S`` and reachability-strengthened ``Z``;
Lemma 5.4's projection-closure ``S_p``), and (c) model-checks the
theorem's conclusion with those witnesses — a mechanical validation of
the paper's main results on any finite-state instance.
"""

from .detectors import (
    DetectorWitness,
    detector_witness,
    embedding_action,
    theorem_3_4,
    theorem_3_6,
    witnesses_for,
)
from .correctors import (
    CorrectorWitness,
    corrector_witness,
    lemma_4_2,
    theorem_4_1,
    theorem_4_3,
)
from .masking import (
    lemma_5_4,
    projection_closure,
    theorem_5_2,
    theorem_5_3,
    theorem_5_5,
)
from .lemmas import lemma_3_1, lemma_3_2, lemma_5_1

__all__ = [
    "DetectorWitness", "detector_witness", "embedding_action",
    "witnesses_for", "theorem_3_4", "theorem_3_6",
    "CorrectorWitness", "corrector_witness",
    "theorem_4_1", "lemma_4_2", "theorem_4_3",
    "projection_closure", "theorem_5_2", "theorem_5_3", "lemma_5_4",
    "theorem_5_5",
    "lemma_3_1", "lemma_3_2", "lemma_5_1",
]
