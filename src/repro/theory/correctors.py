"""Theorem 4.1, Lemma 4.2 and Theorem 4.3: programs that eventually
refine a specification contain correctors.

Theorem 4.1's proof constructs the corrector witness

- ``X = S`` (the invariant predicate of the base program), and
- ``Z = S ∧ {states reached in some computation of p' starting from T}``

and shows ``p'`` refines ``Z corrects X`` from ``T``.
:func:`corrector_witness` builds exactly these predicates (the
reachability conjunct extensionally, over the explored transition
system).

Lemma 4.2 generalizes to ``p'`` behaving like ``p`` only from ``R ⊆ S``
(e.g. after auxiliary variables are restored): then ``p'`` is a
*nonmasking* corrector with ``X = S`` and ``Z = R``.  Theorem 4.3 adds a
fault-class: a nonmasking F-tolerant program is a nonmasking F-tolerant
corrector of an invariant predicate of the base program.

The premise ``p' [] F refines (true)*(p' | R) from T`` — every
computation from the fault-span eventually *is* a computation of ``p'``
from ``R`` — is decided as: ``T`` closed in ``p' [] F`` and
``true leads-to R`` on the fault-aware graph (suffix closure makes any
suffix of a ``p'``-computation a ``p'``-computation, so reaching ``R``
suffices).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..core import (
    CheckResult,
    FaultClass,
    Predicate,
    Program,
    Spec,
    TRUE,
    all_of,
    check_leads_to,
    is_corrector,
    is_nonmasking_tolerant,
    is_nonmasking_tolerant_corrector,
    refines_program,
    refines_spec,
)
from ..core.refinement import system_from
from ..core.tolerance import check_implication

__all__ = [
    "CorrectorWitness",
    "corrector_witness",
    "theorem_4_1",
    "lemma_4_2",
    "theorem_4_3",
]


@dataclass(frozen=True)
class CorrectorWitness:
    """The Theorem 4.1 witness: correction predicate ``X`` and witness
    predicate ``Z``."""

    witness: Predicate
    correction: Predicate


def corrector_witness(
    refined: Program,
    invariant: Predicate,
    span: Predicate,
) -> CorrectorWitness:
    """Build Theorem 4.1's ``X = S`` and ``Z = S ∧ reach(T)``."""
    ts = system_from(refined, span)
    reachable = Predicate.from_states(ts.states, name=f"reach({span.name})")
    return CorrectorWitness(
        witness=(invariant & reachable).rename(
            f"Z({invariant.name}∧reach)"
        ),
        correction=invariant.rename(f"X({invariant.name})"),
    )


def _eventually_behaves_from(
    refined: Program,
    region: Predicate,
    span: Predicate,
    faults: Optional[FaultClass] = None,
) -> CheckResult:
    """The premise ``p' [] F refines (true)*(p' | region) from span``."""
    fault_actions = list(faults.actions) if faults is not None else []
    ts = system_from(refined, span, fault_actions=fault_actions)
    label = refined.name + (f" [] {faults.name}" if faults else "")
    closed = ts.is_closed(
        span, include_faults=bool(fault_actions),
        description=f"{span.name} closed in {label}",
    )
    reaches = check_leads_to(
        ts, TRUE, region,
        description=(
            f"{label} refines (true)*({refined.name} | {region.name}) "
            f"from {span.name}"
        ),
    )
    return all_of([closed, reaches], description=reaches.description)


def theorem_4_1(
    refined: Program,
    base: Program,
    spec: Spec,
    invariant: Predicate,
    span: Predicate,
) -> CheckResult:
    """Mechanically validate Theorem 4.1 on a concrete instance.

    Premises: ``p refines SPEC from S``; ``p' refines p from S``; ``p'
    refines (true)*(p' | S) from T``.  Conclusion: ``p'`` is a corrector
    of an invariant predicate of ``p`` (witness constructed as in the
    proof).
    """
    what = (
        f"Theorem 4.1 on ({refined.name}, {base.name}): programs that "
        f"eventually refine a specification contain correctors"
    )
    premises = all_of(
        [
            refines_spec(base, spec, invariant),
            refines_program(refined, base, invariant),
            _eventually_behaves_from(refined, invariant, span),
        ],
        description=f"{what}: premises",
    )
    if not premises:
        return premises
    built = corrector_witness(refined, invariant, span)
    conclusion = is_corrector(
        refined, built.witness, built.correction, span
    )
    return all_of([premises, conclusion], description=what)


def lemma_4_2(
    refined: Program,
    base: Program,
    spec: Spec,
    invariant: Predicate,
    restored: Predicate,
    span: Predicate,
) -> CheckResult:
    """Mechanically validate Lemma 4.2 on a concrete instance.

    Premises: ``p refines SPEC from S``; ``p' refines p from R`` with
    ``R ⇒ S``; ``p' refines (true)*(p' | R) from T``.  Conclusion:
    ``p'`` is a *nonmasking* corrector of an invariant predicate of
    ``p`` — with ``X = S`` and ``Z = R``, every computation of ``p'``
    from ``T`` has a suffix refining ``Z corrects X``.
    """
    what = (
        f"Lemma 4.2 on ({refined.name}, {base.name}): nonmasking corrector "
        f"with witness {restored.name} for correction {invariant.name}"
    )
    premises = all_of(
        [
            refines_spec(base, spec, invariant),
            refines_program(refined, base, restored),
            check_implication(refined, restored, invariant),
            _eventually_behaves_from(refined, restored, span),
        ],
        description=f"{what}: premises",
    )
    if not premises:
        return premises
    ts = system_from(refined, span)
    converges = check_leads_to(
        ts, TRUE, restored,
        description=f"{refined.name} converges to {restored.name} from {span.name}",
    )
    restored_closed = ts.is_closed(
        restored, include_faults=False,
        description=f"{restored.name} closed in {refined.name}",
    )
    from ..core.corrector import corrects_spec

    suffix = refines_spec(
        refined, corrects_spec(restored, invariant), restored
    )
    return all_of(
        [premises, converges, restored_closed, suffix], description=what
    )


def theorem_4_3(
    refined: Program,
    base: Program,
    spec: Spec,
    invariant: Predicate,
    restored: Predicate,
    span: Predicate,
    faults: FaultClass,
) -> CheckResult:
    """Mechanically validate Theorem 4.3 on a concrete instance.

    Premises: ``p refines SPEC from S``; ``p' refines p from R`` with
    ``R ⇒ S``; ``p' [] F refines (true)*(p' | R) from T`` with
    ``T ⇐ R``.  Conclusions: ``p'`` is nonmasking F-tolerant for SPEC
    from R, and ``p'`` is a nonmasking F-tolerant corrector of an
    invariant predicate of ``p``.
    """
    what = (
        f"Theorem 4.3 on ({refined.name}, {base.name}): nonmasking "
        f"F-tolerant programs contain nonmasking tolerant correctors"
    )
    premises = all_of(
        [
            refines_spec(base, spec, invariant),
            refines_program(refined, base, restored),
            check_implication(refined, restored, invariant),
            check_implication(refined, restored, span),
            _eventually_behaves_from(refined, restored, span, faults=faults),
        ],
        description=f"{what}: premises",
    )
    if not premises:
        return premises
    conclusions = [
        is_nonmasking_tolerant(refined, faults, spec, restored, span),
        is_nonmasking_tolerant_corrector(
            refined, faults,
            witness=restored, correction=invariant,
            from_=restored, span=span, recovered=restored,
        ),
    ]
    return all_of([premises] + conclusions, description=what)
