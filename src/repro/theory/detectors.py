"""Theorems 3.4 and 3.6: fault-tolerant programs contain detectors.

Theorem 3.4 states: if ``p'`` refines ``p`` from ``S``, ``p'``
encapsulates ``p``, and ``p'`` refines ``SSPEC`` from ``S``, then for
every action ``ac`` of ``p``, ``p'`` is a detector of a detection
predicate of ``ac``.

The proof is constructive, and :func:`detector_witness` follows it:

- the witness predicate is ``Z = g ∧ g'``, the guard of the ``p'``-action
  ``ac'`` that encapsulation guarantees embeds ``ac``
  (:func:`embedding_action` finds it);
- the detection predicate starts from ``g ∧ sf`` where ``sf`` is the
  weakest detection predicate of ``ac`` for ``SSPEC`` (Theorem 3.3), and
  is then *shrunk* exactly as the proof's third and fourth conjuncts
  prescribe:

  - the third conjunct removes states that would break **Stability**
    (states where ``Z`` has just been falsified while ``g ∧ sf``
    remained true);
  - the fourth conjunct removes states that would break **Progress**
    (states where ``p'`` may forever take *other* actions with the same
    effect on ``p``, so ``Z`` need never be witnessed).

  We implement both conjuncts as an iterated fixpoint repair on the
  reachable state set: remove Stability offenders (successors of
  ``Z``-states that lose ``Z`` but kept candidate membership), and
  remove Progress offenders (states inside fair-recurrent SCCs — or at
  deadlocks — of the ``X ∧ ¬Z`` region).  Each round strictly shrinks a
  finite set, so the repair terminates; Safeness (``Z ⇒ X`` on reachable
  states) is re-verified at the end, which the theorem's premises
  guarantee.

Theorem 3.6 extends this to fail-safe F-tolerance: under the premises
``p refines SPEC from S``, ``p' refines p from R`` (``R ⇒ S``), ``p'``
encapsulates ``p``, and ``p' [] F refines SSPEC from T`` (``T ⇐ R``),
the program ``p'`` is fail-safe F-tolerant for SPEC from R **and** is a
fail-safe F-tolerant detector of a detection predicate of every action
of ``p``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Set, Tuple

from ..core import (
    Action,
    CheckResult,
    FaultClass,
    Predicate,
    Program,
    Spec,
    all_of,
    is_detector,
    is_failsafe_tolerant,
    is_failsafe_tolerant_detector,
    refines_program,
    refines_spec,
    weakest_detection_predicate,
)
from ..core.exploration import TransitionSystem
from ..core.fairness import fair_recurrent_sccs
from ..core.refinement import system_from
from ..core.state import State

__all__ = [
    "DetectorWitness",
    "embedding_action",
    "detector_witness",
    "witnesses_for",
    "theorem_3_4",
    "theorem_3_6",
]


@dataclass(frozen=True)
class DetectorWitness:
    """The constructed witness for one base action: the embedded action
    ``ac'``, the witness predicate ``Z``, and the detection predicate
    ``X`` (extensional over the explored states)."""

    base_action: str
    embedded_action: str
    witness: Predicate
    detection: Predicate


def embedding_action(
    refined: Program, base: Program, action: Action,
    states: Optional[List[State]] = None,
) -> Action:
    """The ``p'``-action ``g ∧ g' --> st || st'`` that embeds ``action``
    of ``p`` (exists whenever ``refined`` encapsulates ``base``).

    An action ``ac'`` embeds ``ac`` iff wherever ``ac'`` is enabled,
    ``ac`` is enabled and their effects on the base variables coincide,
    and ``ac'`` actually updates base variables somewhere.
    """
    if states is None:
        states = list(refined.states())
    base_vars = set(base.variable_names)
    matching: List[Tuple[bool, Action]] = []
    for refined_action in refined.actions:
        touches = False
        matches = True
        for state in states:
            successors = refined_action.successors(state)
            if not successors:
                continue
            projected = state.project(base_vars)
            if not action.enabled(projected):
                matches = False  # guard g ∧ g' would not strengthen g
                break
            base_successors = {
                t.project(base_vars) for t in action.successors(projected)
            }
            for successor in successors:
                base_next = successor.project(base_vars)
                if base_next != projected:
                    touches = True
                if base_next not in base_successors:
                    matches = False
                    break
            if not matches:
                break
        if matches:
            matching.append((touches, refined_action))
    # prefer an embedding that actually exercises the base statement
    for touches, refined_action in matching:
        if touches:
            return refined_action
    if matching:
        return matching[0][1]
    raise LookupError(
        f"no action of {refined.name} embeds {action.name} "
        f"(is the encapsulation premise satisfied?)"
    )


def detector_witness(
    refined: Program,
    base: Program,
    action: Action,
    from_: Predicate,
    safety_spec: Spec,
    ts: Optional[TransitionSystem] = None,
) -> DetectorWitness:
    """Construct the Theorem 3.4 witness ``(Z, X)`` for ``action``.

    ``safety_spec`` is SSPEC (only its safety part is used).  The
    returned detection predicate is extensional over the states reachable
    from ``from_`` in ``refined``.
    """
    if ts is None:
        ts = system_from(refined, from_)
    states = list(ts.states)
    base_vars = set(base.variable_names)

    embedded = embedding_action(refined, base, action, states=states)
    witness = Predicate(
        lambda s, a=embedded: a.enabled(s), name=f"Z({embedded.name})"
    )

    weakest = weakest_detection_predicate(
        action,
        safety_spec,
        (s.project(base_vars) for s in states),
        name=f"sf({action.name})",
    )

    candidate: Set[State] = {
        s
        for s in states
        if action.enabled(s.project(base_vars)) and weakest(s.project(base_vars))
    }

    changed = True
    while changed:
        changed = False
        # third conjunct: Stability repair — drop states that can be
        # entered from a Z-state while losing Z.
        stability_offenders: Set[State] = set()
        for source in states:
            if not witness(source):
                continue
            for _, target in ts.edges_from(source, include_faults=False):
                if target in candidate and not witness(target):
                    stability_offenders.add(target)
        if stability_offenders & candidate:
            candidate -= stability_offenders
            changed = True

        # fourth conjunct: Progress repair — drop states where a fair
        # computation can stay in X ∧ ¬Z forever (or deadlock there).
        region = {s for s in candidate if not witness(s)}
        progress_offenders: Set[State] = set()
        for component in fair_recurrent_sccs(ts, region):
            progress_offenders |= component
        for state in region:
            if ts.program.is_deadlocked(state):
                progress_offenders.add(state)
        if progress_offenders & candidate:
            candidate -= progress_offenders
            changed = True

    detection = Predicate.from_states(candidate, name=f"X({action.name})")
    return DetectorWitness(
        base_action=action.name,
        embedded_action=embedded.name,
        witness=witness,
        detection=detection,
    )


def witnesses_for(
    refined: Program,
    base: Program,
    from_: Predicate,
    safety_spec: Spec,
    ts: Optional[TransitionSystem] = None,
) -> List[DetectorWitness]:
    """The Theorem 3.4 witness for **every** action of ``base``.

    This is the constructive half of the theorem on its own — the list
    of (witness, detection) pairs the refined program embeds, one per
    base action.  :func:`theorem_3_4` model-checks each of them;
    :meth:`repro.monitoring.DetectorBank.from_witnesses` compiles them
    into a bit-packed detector bank instead.
    """
    if ts is None:
        ts = system_from(refined, from_)
    return [
        detector_witness(refined, base, action, from_, safety_spec, ts=ts)
        for action in base.actions
    ]


def theorem_3_4(
    refined: Program,
    base: Program,
    from_: Predicate,
    safety_spec: Spec,
) -> CheckResult:
    """Mechanically validate Theorem 3.4 on a concrete instance.

    Verifies the premises (``p'`` refines ``p`` from S, ``p'``
    encapsulates ``p``, ``p'`` refines SSPEC from S), constructs the
    witness for **every** action of the base program, and model-checks
    that the refined program is a detector for each.
    """
    what = (
        f"Theorem 3.4 on ({refined.name}, {base.name}): programs refining "
        f"a safety specification contain detectors"
    )
    results = [
        refines_program(refined, base, from_),
        CheckResult.passed(f"{refined.name} encapsulates {base.name}")
        if refined.encapsulates(base)
        else CheckResult.failed(f"{refined.name} encapsulates {base.name}"),
        refines_spec(refined, safety_spec.safety_part(), from_),
    ]
    premises = all_of(results, description=f"{what}: premises")
    if not premises:
        return premises

    conclusions = [
        is_detector(refined, built.witness, built.detection, from_)
        for built in witnesses_for(refined, base, from_, safety_spec)
    ]
    return all_of([premises] + conclusions, description=what)


def theorem_3_6(
    refined: Program,
    base: Program,
    spec: Spec,
    invariant_base: Predicate,
    invariant_refined: Predicate,
    span: Predicate,
    faults: FaultClass,
) -> CheckResult:
    """Mechanically validate Theorem 3.6 on a concrete instance.

    Premises: ``p refines SPEC from S``; ``p' refines p from R`` with
    ``R ⇒ S``; ``p'`` encapsulates ``p``; ``p' [] F refines SSPEC from
    T`` with ``T ⇐ R``.  Conclusions: ``p'`` is fail-safe F-tolerant for
    SPEC from R, and for every action of ``p``, ``p'`` is a fail-safe
    F-tolerant detector of one of its detection predicates.
    """
    what = (
        f"Theorem 3.6 on ({refined.name}, {base.name}): fail-safe "
        f"F-tolerant programs contain fail-safe tolerant detectors"
    )
    from ..core.tolerance import check_implication

    premise_results = [
        refines_spec(base, spec, invariant_base),
        refines_program(refined, base, invariant_refined),
        check_implication(refined, invariant_refined, invariant_base),
        CheckResult.passed(f"{refined.name} encapsulates {base.name}")
        if refined.encapsulates(base)
        else CheckResult.failed(f"{refined.name} encapsulates {base.name}"),
        check_implication(refined, invariant_refined, span),
        refines_spec(refined, spec.safety_part(), span,
                     fault_actions=list(faults.actions)),
    ]
    premises = all_of(premise_results, description=f"{what}: premises")
    if not premises:
        return premises

    conclusions = [
        is_failsafe_tolerant(refined, faults, spec, invariant_refined, span)
    ]
    fault_ts = faults.system(refined, span)
    for action in base.actions:
        built = detector_witness(
            refined, base, action, invariant_refined, spec.safety_part(),
            ts=fault_ts,
        )
        conclusions.append(
            is_failsafe_tolerant_detector(
                refined, faults, built.witness, built.detection,
                invariant_refined, span,
            )
        )
    return all_of([premises] + conclusions, description=what)
