"""Section 5: detectors *and* correctors in masking tolerance.

- :func:`theorem_5_2` — masking tolerance decomposes: if ``p`` refines
  SPEC from ``S``, refines SSPEC from ``T ⊇ S``, and refines
  ``(true)*(p | S)`` from ``T``, then ``p`` refines the masking
  tolerance specification of SPEC (i.e. SPEC itself) from ``T``.  The
  proof fuses a safe prefix with a correct suffix via Lemma 5.1.
- :func:`theorem_5_3` — programs transformed to satisfy a specification
  contain both detectors (one per base action, Theorem 3.4's witness)
  and a corrector (Theorem 4.1's witness).
- :func:`lemma_5_4` / :func:`theorem_5_5` — the masking F-tolerant case.
  The corrector's correction predicate is the *projection closure*
  ``S_p`` of the invariant onto the base program's variables
  (:func:`projection_closure`): the proof strengthens ``p refines SPEC
  from S`` to ``from S_p`` so that the correction predicate depends only
  on base variables and is therefore closed under encapsulation.

Theorem 5.5's caveat is honoured: the extracted correctors are masking
*tolerant* (program actions never violate Stability/Convergence) but
only nonmasking *F-tolerant* (fault actions may perturb them) — so the
corrector conclusions are checked as ``is_corrector`` in the absence of
faults plus ``is_nonmasking_tolerant_corrector`` under faults.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from ..core import (
    CheckResult,
    FaultClass,
    Predicate,
    Program,
    Spec,
    TRUE,
    all_of,
    check_leads_to,
    is_corrector,
    is_masking_tolerant,
    is_masking_tolerant_detector,
    is_nonmasking_tolerant_corrector,
    refines_program,
    refines_spec,
)
from ..core.refinement import system_from
from ..core.state import State
from ..core.tolerance import check_implication
from .correctors import _eventually_behaves_from, corrector_witness
from .detectors import detector_witness

__all__ = [
    "projection_closure",
    "theorem_5_2",
    "theorem_5_3",
    "lemma_5_4",
    "theorem_5_5",
]


def projection_closure(
    invariant: Predicate,
    refined: Program,
    base: Program,
    states: Optional[Iterable[State]] = None,
) -> Predicate:
    """Lemma 5.4's ``S_p``: the weakest predicate over the *base*
    variables implied by the invariant.

    A state belongs iff some state with the same projection on the base
    variables satisfies the invariant.  Computed extensionally over
    ``states`` (default: the full state space of the refined program).
    """
    if states is None:
        states = list(refined.states())
    else:
        states = list(states)
    base_vars = set(base.variable_names)
    satisfying_projections = {
        s.project(base_vars) for s in states if invariant(s)
    }
    return Predicate(
        lambda s, proj=satisfying_projections, names=base_vars: (
            s.project(names) in proj
        ),
        name=f"S_p({invariant.name})",
    )


def theorem_5_2(
    program: Program,
    spec: Spec,
    invariant: Predicate,
    span: Predicate,
) -> CheckResult:
    """Mechanically validate Theorem 5.2 on a concrete instance.

    Premises: ``p refines SPEC from S``; ``p refines SSPEC from T``
    (``T ⇐ S``); ``p refines (true)*(p | S) from T``.  Conclusion:
    ``p`` refines the masking tolerance specification of SPEC (= SPEC)
    from ``T``.
    """
    what = (
        f"Theorem 5.2 on {program.name}: fail-safe + nonmasking from the "
        f"span implies masking from the span"
    )
    premises = all_of(
        [
            refines_spec(program, spec, invariant),
            check_implication(program, invariant, span),
            refines_spec(program, spec.safety_part(), span),
            _eventually_behaves_from(program, invariant, span),
        ],
        description=f"{what}: premises",
    )
    if not premises:
        return premises
    conclusion = refines_spec(program, spec.masking(), span)
    return all_of([premises, conclusion], description=what)


def theorem_5_3(
    refined: Program,
    base: Program,
    spec: Spec,
    invariant: Predicate,
    span: Predicate,
) -> CheckResult:
    """Mechanically validate Theorem 5.3 on a concrete instance:
    programs transformed to satisfy a specification contain detectors
    for every base action and a corrector for an invariant predicate."""
    what = (
        f"Theorem 5.3 on ({refined.name}, {base.name}): transformed "
        f"programs contain detectors and correctors"
    )
    encapsulated = (
        CheckResult.passed(f"{refined.name} encapsulates {base.name}")
        if refined.encapsulates(base)
        else CheckResult.failed(f"{refined.name} encapsulates {base.name}")
    )
    premises = all_of(
        [
            refines_spec(base, spec, invariant),
            refines_program(refined, base, invariant),
            encapsulated,
            _eventually_behaves_from(refined, invariant, span),
            refines_spec(refined, spec.safety_part(), span),
        ],
        description=f"{what}: premises",
    )
    if not premises:
        return premises

    ts = system_from(refined, span)
    conclusions: List[CheckResult] = []
    for action in base.actions:
        built = detector_witness(
            refined, base, action, invariant, spec.safety_part(), ts=ts
        )
        from ..core import is_detector

        conclusions.append(
            is_detector(refined, built.witness, built.detection, invariant)
        )
    corrector = corrector_witness(refined, invariant, span)
    conclusions.append(
        is_corrector(refined, corrector.witness, corrector.correction, span)
    )
    return all_of([premises] + conclusions, description=what)


def lemma_5_4(
    refined: Program,
    base: Program,
    spec: Spec,
    invariant: Predicate,
    restored: Predicate,
    span: Predicate,
) -> CheckResult:
    """Mechanically validate Lemma 5.4 on a concrete instance: with
    ``p' refines p from R ⊆ S`` the extracted corrector uses the
    projection closure ``S_p`` as its correction predicate and ``R`` as
    its witness."""
    what = (
        f"Lemma 5.4 on ({refined.name}, {base.name}): masking tolerant "
        f"detector and corrector with projected invariant"
    )
    encapsulated = (
        CheckResult.passed(f"{refined.name} encapsulates {base.name}")
        if refined.encapsulates(base)
        else CheckResult.failed(f"{refined.name} encapsulates {base.name}")
    )
    premises = all_of(
        [
            refines_spec(base, spec, invariant),
            refines_program(refined, base, restored),
            check_implication(refined, restored, invariant),
            encapsulated,
            _eventually_behaves_from(refined, restored, span),
            refines_spec(refined, spec.safety_part(), span),
        ],
        description=f"{what}: premises",
    )
    if not premises:
        return premises
    projected = projection_closure(invariant, refined, base)
    conclusion = is_corrector(refined, restored, projected, span)
    return all_of([premises, conclusion], description=what)


def theorem_5_5(
    refined: Program,
    base: Program,
    spec: Spec,
    invariant: Predicate,
    restored: Predicate,
    span: Predicate,
    faults: FaultClass,
) -> CheckResult:
    """Mechanically validate Theorem 5.5 on a concrete instance.

    Premises: ``p refines SPEC from S``; ``p' refines p from R``
    (``R ⇒ S``); ``p' [] F refines (true)*(p' | R) from T``
    (``T ⇐ R``); ``p'`` encapsulates ``p``; ``p' [] F refines SSPEC
    from T``.  Conclusions: ``p'`` is masking F-tolerant for SPEC; for
    every base action, ``p'`` is a masking F-tolerant detector of one
    of its detection predicates; ``p'`` is a masking tolerant corrector
    (checked without faults) and a nonmasking F-tolerant corrector of an
    invariant predicate of ``p``.
    """
    what = (
        f"Theorem 5.5 on ({refined.name}, {base.name}): masking F-tolerant "
        f"programs contain masking tolerant detectors and correctors"
    )
    encapsulated = (
        CheckResult.passed(f"{refined.name} encapsulates {base.name}")
        if refined.encapsulates(base)
        else CheckResult.failed(f"{refined.name} encapsulates {base.name}")
    )
    premises = all_of(
        [
            refines_spec(base, spec, invariant),
            refines_program(refined, base, restored),
            check_implication(refined, restored, invariant),
            check_implication(refined, restored, span),
            encapsulated,
            _eventually_behaves_from(refined, restored, span, faults=faults),
            refines_spec(refined, spec.safety_part(), span,
                         fault_actions=list(faults.actions)),
        ],
        description=f"{what}: premises",
    )
    if not premises:
        return premises

    conclusions: List[CheckResult] = [
        is_masking_tolerant(refined, faults, spec, restored, span)
    ]
    fault_ts = faults.system(refined, span)
    for action in base.actions:
        built = detector_witness(
            refined, base, action, restored, spec.safety_part(), ts=fault_ts
        )
        conclusions.append(
            is_masking_tolerant_detector(
                refined, faults, built.witness, built.detection,
                restored, span,
            )
        )
    projected = projection_closure(invariant, refined, base)
    conclusions.append(is_corrector(refined, restored, projected, span))
    conclusions.append(
        is_nonmasking_tolerant_corrector(
            refined, faults,
            witness=restored, correction=projected,
            from_=span, span=span, recovered=restored,
        )
    )
    return all_of([premises] + conclusions, description=what)
