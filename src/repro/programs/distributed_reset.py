"""Distributed reset — a distributed corrector [10].

The paper's application list includes *distributed reset*: a wave
protocol that restores a global invariant by re-initializing every
process.  Here is a line-topology session-number reset in the style of
Arora–Gouda:

- every process ``i`` holds application state ``x{i}`` (0 is the clean
  value), a request bit ``req{i}``, and a session number ``sn{i}``;
- a process whose state is corrupt raises its request bit (the
  *detector* part — local detection of the correction predicate's
  violation);
- request bits propagate toward the root (process 0);
- the root answers a request by starting a new session: it increments
  its session number (mod K) and cleans its own state;
- a non-root process that sees its parent in a newer session *adopts*
  it: copies the session number and resets its state — the reset wave
  sweeping down the line (the *corrector* part).

The fault corrupts application state (and may spuriously raise request
bits).  The composed system is **nonmasking tolerant**: from any such
perturbation the wave restores "all states clean" — verified as
convergence to the invariant.  Session numbers themselves are assumed
uncorrupted (bounded-session distributed reset under session corruption
requires the full machinery of [10]; see DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..core import (
    Action,
    FaultClass,
    LeadsTo,
    Predicate,
    Program,
    Spec,
    TRUE,
    Variable,
    assign,
)

__all__ = ["DistributedResetModel", "build"]


@dataclass(frozen=True)
class DistributedResetModel:
    """All artifacts of the distributed-reset application."""

    size: int
    sessions: int
    program: Program
    spec: Spec
    invariant: Predicate   #: all clean, no requests, sessions agree
    span: Predicate        #: sessions consistent (x/req arbitrary)
    faults: FaultClass     #: state corruption + spurious requests


def build(size: int = 3, sessions: int = 2) -> DistributedResetModel:
    """Construct the distributed-reset family: ``size`` processes on a
    line with session numbers mod ``sessions``."""
    if size < 2:
        raise ValueError("need at least two processes")
    if sessions < 2:
        raise ValueError("need at least two session numbers")

    variables: List[Variable] = []
    for i in range(size):
        variables.append(Variable(f"x{i}", [0, 1]))
        variables.append(Variable(f"req{i}", [False, True]))
        variables.append(Variable(f"sn{i}", list(range(sessions))))

    actions: List[Action] = []
    for i in range(size):
        # detector: locally corrupt state raises the request bit
        actions.append(
            Action(
                f"request{i}",
                Predicate(
                    lambda s, i=i: s[f"x{i}"] != 0 and not s[f"req{i}"],
                    name=f"x{i} corrupt ∧ ¬req{i}",
                ),
                assign(**{f"req{i}": True}),
                reads={f"x{i}", f"req{i}"}, writes={f"req{i}"},
            )
        )
    for i in range(1, size):
        # requests propagate toward the root
        actions.append(
            Action(
                f"forward{i}",
                Predicate(
                    lambda s, i=i: s[f"req{i}"] and not s[f"req{i - 1}"],
                    name=f"req{i} ∧ ¬req{i-1}",
                ),
                assign(**{f"req{i - 1}": True}),
                reads={f"req{i}", f"req{i - 1}"}, writes={f"req{i - 1}"},
            )
        )
    # The root starts a new session — but only once the previous wave
    # has completed (all sessions agree).  Without this guard the root
    # can keep flipping its session number while a lagging process is
    # only intermittently able to adopt, and weak fairness alone does
    # not force the wave to finish (a genuine livelock the model checker
    # exhibits if the conjunct is dropped).  In [10] this completion
    # test is a diffusing computation; at this abstraction it is a
    # global guard.
    wave_done = Predicate(
        lambda s, n=size: all(s[f"sn{i}"] == s["sn0"] for i in range(n)),
        name="wave complete",
    )
    actions.append(
        Action(
            "reset_root",
            Predicate(lambda s: s["req0"], name="req0") & wave_done,
            assign(
                sn0=lambda s, k=sessions: (s["sn0"] + 1) % k,
                x0=0,
                req0=False,
            ),
            reads={"req0"} | {f"sn{i}" for i in range(size)},
            writes={"sn0", "x0", "req0"},
        )
    )
    for i in range(1, size):
        # the wave: adopt the parent's newer session, clean up
        actions.append(
            Action(
                f"adopt{i}",
                Predicate(
                    lambda s, i=i: s[f"sn{i}"] != s[f"sn{i - 1}"],
                    name=f"sn{i}≠sn{i-1}",
                ),
                assign(
                    **{
                        f"sn{i}": lambda s, i=i: s[f"sn{i - 1}"],
                        f"x{i}": 0,
                        f"req{i}": False,
                    }
                ),
                reads={f"sn{i}", f"sn{i - 1}"},
                writes={f"sn{i}", f"x{i}", f"req{i}"},
            )
        )
    program = Program(variables, actions, name=f"distributed_reset(n={size})")

    clean = Predicate(
        lambda s, n=size: all(
            s[f"x{i}"] == 0 and not s[f"req{i}"] for i in range(n)
        )
        and all(s[f"sn{i}"] == s["sn0"] for i in range(n)),
        name="all clean, sessions agree",
    )
    spec = Spec(
        [
            LeadsTo(
                TRUE,
                Predicate(
                    lambda s, n=size: all(s[f"x{i}"] == 0 for i in range(n)),
                    name="all states clean",
                ),
                name="every corruption is eventually reset",
            )
        ],
        name="SPEC_reset",
    )

    # sessions form a "prefix" pattern on a line after any run of the
    # wave: each process's session equals its parent's or the parent is
    # one step ahead (mod K); x/req arbitrary.
    span = Predicate(
        lambda s, n=size: all(
            s[f"sn{i}"] in (s[f"sn{i - 1}"], (s[f"sn{i - 1}"] - 1) % sessions)
            for i in range(1, n)
        ),
        name="T_reset (session prefix pattern)",
    )

    fault_actions: List[Action] = []
    for i in range(size):
        fault_actions.append(
            Action(
                f"corrupt_x{i}",
                Predicate(lambda s, i=i: s[f"x{i}"] == 0, name=f"x{i}=0"),
                assign(**{f"x{i}": 1}),
                reads={f"x{i}"}, writes={f"x{i}"},
            )
        )
        fault_actions.append(
            Action(
                f"spurious_req{i}",
                Predicate(lambda s, i=i: not s[f"req{i}"], name=f"¬req{i}"),
                assign(**{f"req{i}": True}),
                reads={f"req{i}"}, writes={f"req{i}"},
            )
        )

    return DistributedResetModel(
        size=size,
        sessions=sessions,
        program=program,
        spec=spec,
        invariant=clean.rename("S_reset"),
        span=span,
        faults=FaultClass(fault_actions, name="state corruption"),
    )
