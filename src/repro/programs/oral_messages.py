"""Lamport's Oral Messages algorithm OM(m) — the general case of
Section 6.2.

The paper restricts its worked Byzantine example to n = 4, f = 1 and
defers the general case to the companion work [11].  To reproduce the
*claim* that the construction generalizes (masking agreement whenever
n ≥ 3f + 1), this module implements the classical OM(m) algorithm as an
exponential-information-gathering (EIG) protocol over synchronous
rounds, with pluggable Byzantine behaviour:

- in round 0 the general sends its value to every lieutenant;
- in round r each lieutenant relays every value it learned along each
  ``(r-1)``-length path of distinct relays;
- after m + 1 rounds each lieutenant decides by recursive majority over
  its EIG tree.

Byzantine processes lie through a *strategy*: a function
``strategy(sender, receiver, path, true_value) -> value`` — per-receiver
equivocation included, which is exactly what makes the problem hard.

The correctness conditions (the paper's SPEC_byz, classically IC1/IC2):

- **agreement** — all honest lieutenants decide the same value;
- **validity** — if the general is honest, that value is the general's.

Both hold whenever ``n > 3m`` and at most ``m`` processes are Byzantine
(Lamport–Shostak–Pease [12]); the test suite checks them across
adversarial strategies and the benchmark sweeps (n, f) to reproduce the
3f + 1 threshold — including its *failure* at n = 3f.

In detector/corrector terms: each EIG path is a detector sample of the
general's value, and the recursive majority is the corrector that
restores consistency among them — the same decomposition as Section 6.2
(``DB.j`` = witness over collected copies, ``CB.j`` = majority
correction), iterated m + 1 times.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field
from typing import Callable, Dict, Hashable, List, Optional, Sequence, Tuple

__all__ = [
    "ByzantineStrategy",
    "honest_strategy",
    "constant_lie_strategy",
    "split_strategy",
    "random_strategy",
    "OralMessagesRun",
    "run_oral_messages",
    "check_agreement",
    "check_validity",
]

#: path: the sequence of process ids the value travelled through (the
#: general first); value: what the honest protocol would send.
ByzantineStrategy = Callable[[int, int, Tuple[int, ...], int], int]


def honest_strategy(sender: int, receiver: int, path: Tuple[int, ...],
                    value: int) -> int:
    """Faithful relay (used for honest processes)."""
    return value


def constant_lie_strategy(lie: int) -> ByzantineStrategy:
    """Always report ``lie`` regardless of the truth."""

    def strategy(sender, receiver, path, value):
        return lie

    return strategy


def split_strategy(values: Sequence[int] = (0, 1)) -> ByzantineStrategy:
    """Equivocate: send ``values[receiver mod len(values)]`` — the
    classic general-splits-the-lieutenants attack."""

    def strategy(sender, receiver, path, value):
        return values[receiver % len(values)]

    return strategy


def random_strategy(seed: int, values: Sequence[int] = (0, 1)) -> ByzantineStrategy:
    """Independently random lies (a chaotic adversary)."""
    rng = random.Random(seed)

    def strategy(sender, receiver, path, value):
        return rng.choice(list(values))

    return strategy


@dataclass
class OralMessagesRun:
    """The outcome of one OM(m) execution."""

    n: int
    m: int
    general_value: int
    byzantine: Tuple[int, ...]
    decisions: Dict[int, int]           #: per honest lieutenant
    messages_sent: int
    rounds: int

    @property
    def honest_lieutenants(self) -> List[int]:
        return [
            p for p in range(1, self.n) if p not in self.byzantine
        ]


def run_oral_messages(
    n: int,
    m: int,
    general_value: int = 1,
    byzantine: Sequence[int] = (),
    strategy: Optional[ByzantineStrategy] = None,
    default_value: int = 0,
) -> OralMessagesRun:
    """Execute OM(m) with processes ``0..n-1`` (0 is the general).

    ``byzantine`` lists the faulty processes; ``strategy`` is how they
    lie (default: constant 0).  Returns the run record with every
    honest lieutenant's decision.
    """
    if n < 2:
        raise ValueError("need a general and at least one lieutenant")
    if m < 0:
        raise ValueError("m must be nonnegative")
    byzantine = tuple(sorted(set(byzantine)))
    if any(p < 0 or p >= n for p in byzantine):
        raise ValueError("byzantine ids out of range")
    strategy = strategy or constant_lie_strategy(0)

    lieutenants = [p for p in range(1, n)]
    message_count = [0]

    def sent_value(sender: int, receiver: int, path: Tuple[int, ...],
                   value: int) -> int:
        message_count[0] += 1
        if sender in byzantine:
            return strategy(sender, receiver, path, value)
        return value

    # EIG tree per lieutenant: maps a path (general, relays...) to the
    # value received along it.
    tree: Dict[int, Dict[Tuple[int, ...], int]] = {p: {} for p in lieutenants}

    # round 0: the general broadcasts.
    for lieutenant in lieutenants:
        tree[lieutenant][(0,)] = sent_value(
            0, lieutenant, (0,), general_value
        )

    # rounds 1..m: relay along paths of distinct non-general relays.
    for round_index in range(1, m + 1):
        for lieutenant in lieutenants:
            additions: Dict[Tuple[int, ...], int] = {}
            for relay in lieutenants:
                if relay == lieutenant:
                    continue
                for path, value in tree[relay].items():
                    if len(path) != round_index:
                        continue
                    if relay in path:
                        continue
                    additions[path + (relay,)] = sent_value(
                        relay, lieutenant, path + (relay,), value
                    )
            tree[lieutenant].update(additions)

    def decide(lieutenant: int, path: Tuple[int, ...]) -> int:
        """Recursive majority over the EIG subtree rooted at ``path``."""
        children = [
            p for p in tree[lieutenant]
            if len(p) == len(path) + 1 and p[: len(path)] == path
        ]
        if not children:
            return tree[lieutenant][path]
        values = [decide(lieutenant, child) for child in children]
        values.append(tree[lieutenant][path])
        return _majority_or_default(values, default_value)

    decisions = {
        lieutenant: decide(lieutenant, (0,))
        for lieutenant in lieutenants
        if lieutenant not in byzantine
    }
    return OralMessagesRun(
        n=n,
        m=m,
        general_value=general_value,
        byzantine=byzantine,
        decisions=decisions,
        messages_sent=message_count[0],
        rounds=m + 1,
    )


def _majority_or_default(values: Sequence[int], default: int) -> int:
    counts: Dict[int, int] = {}
    for value in values:
        counts[value] = counts.get(value, 0) + 1
    best_count = max(counts.values())
    winners = [v for v, c in counts.items() if c == best_count]
    if len(winners) == 1 and best_count * 2 > len(values):
        return winners[0]
    return default


def check_agreement(run: OralMessagesRun) -> bool:
    """IC2: all honest lieutenants decide identically."""
    return len(set(run.decisions.values())) <= 1


def check_validity(run: OralMessagesRun) -> bool:
    """IC1: with an honest general every honest lieutenant decides the
    general's value (vacuous when the general is Byzantine)."""
    if 0 in run.byzantine:
        return True
    return all(v == run.general_value for v in run.decisions.values())
