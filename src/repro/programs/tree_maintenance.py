"""Tree maintenance — a self-stabilizing BFS spanning tree.

Another entry in the paper's application list (Section 1): maintaining
a spanning tree of a network in the presence of transient corruption.
The classic construction (Dolev–Israeli–Moran style) is a *corrector
in the large*: each node's action detects a local inconsistency and
repairs it, and the composition converges from any state to the global
BFS tree rooted at node 0.

Per non-root node ``i``: ``dist{i}`` (believed distance to the root,
capped at ``n - 1``) and ``parent{i}`` (a neighbour).  A node is
locally consistent iff its distance is one more than its cheapest
neighbour's (capped) and its parent attains that minimum.  The single
action per node re-computes both from the neighbourhood — its guard is
exactly the local detection predicate, its statement the local
correction, so each action literally is a detector–corrector pair and
the paper's thesis reads off the program text.

The legitimate states are "every node locally consistent", which on a
connected graph pins distances to true BFS distances and parents to a
BFS tree.  Tolerance: nonmasking to arbitrary corruption of distances
and parents, with fault-span ``true`` — self-stabilization.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..core import (
    Action,
    FaultClass,
    LeadsTo,
    Predicate,
    Program,
    Spec,
    TRUE,
    Variable,
    perturb_variable,
)

__all__ = ["TreeModel", "build", "DEFAULT_EDGES"]

#: A small 2-connected topology: a diamond with a tail.
DEFAULT_EDGES: Tuple[Tuple[int, int], ...] = ((0, 1), (0, 2), (1, 2), (2, 3))


def _adjacency(size: int, edges: Sequence[Tuple[int, int]]) -> Dict[int, List[int]]:
    adjacency: Dict[int, List[int]] = {i: [] for i in range(size)}
    for a, b in edges:
        if a == b or not (0 <= a < size and 0 <= b < size):
            raise ValueError(f"bad edge ({a}, {b})")
        adjacency[a].append(b)
        adjacency[b].append(a)
    for node, neighbours in adjacency.items():
        if node != 0 and not neighbours:
            raise ValueError(f"node {node} is isolated")
    return {node: sorted(set(ns)) for node, ns in adjacency.items()}


def _bfs_distances(adjacency: Dict[int, List[int]]) -> Dict[int, int]:
    distance = {0: 0}
    frontier = deque([0])
    while frontier:
        node = frontier.popleft()
        for neighbour in adjacency[node]:
            if neighbour not in distance:
                distance[neighbour] = distance[node] + 1
                frontier.append(neighbour)
    if len(distance) != len(adjacency):
        raise ValueError("graph must be connected")
    return distance


@dataclass(frozen=True)
class TreeModel:
    """All artifacts of the tree-maintenance application."""

    size: int
    adjacency: Dict[int, List[int]]
    true_distances: Dict[int, int]
    program: Program
    spec: Spec
    invariant: Predicate     #: the exact BFS tree
    faults: FaultClass       #: corrupt any dist/parent


def build(size: int = 4,
          edges: Sequence[Tuple[int, int]] = DEFAULT_EDGES) -> TreeModel:
    """Construct the tree-maintenance family over the given topology
    (node 0 is the root)."""
    if size < 2:
        raise ValueError("need at least two nodes")
    adjacency = _adjacency(size, edges)
    true_distances = _bfs_distances(adjacency)
    cap = size - 1

    variables: List[Variable] = []
    for i in range(1, size):
        variables.append(Variable(f"dist{i}", list(range(size))))
        variables.append(Variable(f"parent{i}", adjacency[i]))

    def neighbour_distance(state, node: int) -> int:
        if node == 0:
            return 0
        return state[f"dist{node}"]

    def best(state, i: int) -> Tuple[int, int]:
        """(capped distance, parent) node i should adopt."""
        candidates = [
            (min(neighbour_distance(state, j) + 1, cap), j)
            for j in adjacency[i]
        ]
        return min(candidates)

    def consistent(state, i: int) -> bool:
        distance, parent = best(state, i)
        return (
            state[f"dist{i}"] == distance and state[f"parent{i}"] == parent
        )

    actions: List[Action] = []
    for i in range(1, size):
        # the root contributes distance 0 without a dist variable, so
        # only non-root neighbours are actual reads
        neighbour_dists = {
            f"dist{j}" for j in adjacency[i] if j != 0
        }
        actions.append(
            Action(
                f"fix{i}",
                Predicate(lambda s, i=i: not consistent(s, i),
                          name=f"node {i} locally inconsistent"),
                lambda s, i=i: s.assign(
                    **{
                        f"dist{i}": best(s, i)[0],
                        f"parent{i}": best(s, i)[1],
                    }
                ),
                reads=neighbour_dists | {f"dist{i}", f"parent{i}"},
                writes={f"dist{i}", f"parent{i}"},
            )
        )
    program = Program(variables, actions, name=f"bfs_tree(n={size})")

    def is_bfs_tree(state) -> bool:
        for i in range(1, size):
            if state[f"dist{i}"] != true_distances[i]:
                return False
            parent = state[f"parent{i}"]
            parent_distance = 0 if parent == 0 else true_distances[parent]
            if parent_distance != true_distances[i] - 1:
                return False
        return True

    invariant = Predicate(is_bfs_tree, name="S_tree (exact BFS tree)")
    spec = Spec(
        [LeadsTo(TRUE, invariant,
                 name="the BFS spanning tree is eventually (re)built")],
        name="SPEC_tree",
    )

    fault_actions = [
        action
        for i in range(1, size)
        for variable in (program.variable(f"dist{i}"),
                         program.variable(f"parent{i}"))
        for action in perturb_variable(variable)
    ]
    return TreeModel(
        size=size,
        adjacency=adjacency,
        true_distances=true_distances,
        program=program,
        spec=spec,
        invariant=invariant,
        faults=FaultClass(fault_actions, name="dist/parent corruption"),
    )
