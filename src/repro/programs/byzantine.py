"""Section 6.2: Byzantine agreement by detector + corrector.

The problem: a general ``g`` holds a binary value ``d.g``; every
non-general process ``j`` must eventually output a decision such that

1. (validity) if ``g`` is not Byzantine, every non-Byzantine output
   equals ``d.g``; and
2. (agreement) even if ``g`` is Byzantine, all non-Byzantine outputs are
   identical.

With four processes (``g`` plus three non-generals) at most one process
may be Byzantine (n = 3f + 1 with f = 1).  The paper derives the masking
program constructively:

- **IB** (fault-intolerant): each ``j`` copies ``d.g`` into ``d.j``
  (action ``IB1.j``), then outputs it (action ``IB2.j``).
- **BYZ.j**: following the paper, ``BYZ.j`` consists of (a) the action
  that latches ``b.j`` (entering Byzantine mode — at most one process
  may do so) and (b) actions that let a Byzantine process change its
  decision and output arbitrarily.  The *latch* is the fault; the
  arbitrary-behaviour actions appear **in the program composition**
  (``BYZ.g ‖ (‖ j : … ‖ BYZ.j)``), i.e. they execute under weak
  fairness like any program action.  A Byzantine write is an arbitrary
  *value* — ``⊥`` means "not yet written" and cannot be restored, just
  as a sent message cannot be unsent.
- **DB.j** (detector): detection predicate ``d.j = corrdecn`` (the
  correct decision — ``d.g`` when ``g`` is honest, else the majority of
  the non-general decisions); witness predicate "every non-general has
  copied a value and ``d.j`` equals their majority".  The fail-safe
  program restricts ``IB2.j`` to the witness (``DB.j ; IB2.j``).
- **CB.j** (corrector): same correction predicate; action ``CB1.j``
  overwrites a minority ``d.j`` with the majority once every
  non-general holds a value.
- The masking program is ``BYZ.g ‖ (‖ j : IB1.j ‖ DB.j;IB2.j ‖ CB.j ‖
  BYZ.j)`` — exactly the classical one-round Byzantine agreement for
  n = 4.

State variables: ``dg``/``bg`` for the general; per non-general ``j``:
``d{j}`` (copied decision, ``⊥`` initially), ``out{j}`` (the output,
``⊥`` until ``IB2.j`` fires), ``b{j}`` (Byzantine flag).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Hashable, List, Sequence, Tuple

from ..core import (
    BOTTOM,
    Action,
    EvaluatorMemo,
    FaultClass,
    LeadsTo,
    Plan,
    Predicate,
    Program,
    ReplicaSymmetry,
    Spec,
    StateInvariant,
    TRUE,
    Variable,
    assign,
)

__all__ = ["ByzantineModel", "build", "build_family", "majority", "corrdecn"]

NON_GENERALS: Tuple[int, ...] = (1, 2, 3)
VALUES: Tuple[int, ...] = (0, 1)


def majority(values: Sequence[Hashable]) -> Hashable:
    """The strict-majority value of an odd-length sequence."""
    counts: Dict[Hashable, int] = {}
    for value in values:
        counts[value] = counts.get(value, 0) + 1
    best, best_count = max(counts.items(), key=lambda kv: kv[1])
    if best_count * 2 <= len(values):
        raise ValueError(f"no strict majority in {values!r}")
    return best


# per-process names, computed once: the tolerance predicates below run on
# every state of the full product space, where rebuilding f"d{j}"-style
# keys per call dominated their cost
_B_NAMES: Tuple[str, ...] = tuple(f"b{j}" for j in NON_GENERALS)
_D_NAMES: Tuple[str, ...] = tuple(f"d{j}" for j in NON_GENERALS)
_OUT_NAMES: Tuple[str, ...] = tuple(f"out{j}" for j in NON_GENERALS)


def _majority_of_state(state) -> Hashable:
    # specialization of majority() for the three non-general copies
    a, b, c = state["d1"], state["d2"], state["d3"]
    if a == b or a == c:
        return a
    if b == c:
        return b
    raise ValueError(f"no strict majority in {[a, b, c]!r}")


def _all_copied(state) -> bool:
    return all(state[n] is not BOTTOM for n in _D_NAMES)


def corrdecn(state) -> Hashable:
    """The paper's *correct decision*: ``d.g`` when the general is
    honest, else the majority of the non-general copies (defined once
    every non-general holds a value)."""
    if not state["bg"]:
        return state["dg"]
    return _majority_of_state(state)


@dataclass(frozen=True)
class ByzantineModel:
    """All artifacts of the Section 6.2 construction (n = 4, f = 1)."""

    ib: Program              #: fault-intolerant agreement (no BYZ components)
    ib_with_byz: Program     #: IB ‖ BYZ — the intolerant program in the fault environment
    failsafe: Program        #: BYZ.g ‖ (‖j: IB1.j ‖ DB.j;IB2.j ‖ BYZ.j)
    masking: Program         #: BYZ.g ‖ (‖j: IB1.j ‖ DB.j;IB2.j ‖ CB.j ‖ BYZ.j)
    spec: Spec               #: validity ∧ agreement ∧ eventual output
    invariant_ib: Predicate  #: S for IB — nobody Byzantine, copies consistent
    invariant: Predicate     #: S for the guarded programs (outputs ⇒ all copied)
    span: Predicate          #: T — at most one Byzantine, outputs consistent
    faults: FaultClass       #: the b.j := true latches
    witnesses: Dict[int, Predicate]   #: DB.j witness per non-general
    detections: Dict[int, Predicate]  #: d.j = corrdecn per non-general


def _variables() -> List[Variable]:
    variables = [Variable("dg", VALUES), Variable("bg", [False, True])]
    for j in NON_GENERALS:
        variables.append(Variable(f"d{j}", [BOTTOM, *VALUES]))
        variables.append(Variable(f"out{j}", [BOTTOM, *VALUES]))
        variables.append(Variable(f"b{j}", [False, True]))
    return variables


def _compiled_predicate(name: str, build: Callable) -> Predicate:
    """A predicate compiled per state schema.

    ``build(schema.index)`` returns a values-tuple evaluator with the
    variable positions bound as defaults.  Action guards run once per
    (state, action) pair in every exploration and the tolerance
    predicates sweep the full product space, so the per-call cost of
    rebuilding ``f"b{j}"``-style keys and chaining ``&`` lambdas was a
    measurable share of the Byzantine workloads."""
    plans: Dict[object, Callable] = EvaluatorMemo()

    def holds(state) -> bool:
        schema = state.schema
        fn = plans.get(schema)
        if fn is None:
            fn = build(schema.index)
            plans[schema] = fn
        return fn(state.values_tuple)

    return Predicate(holds, name=name, values_builder=build)


def _honest(j: int) -> Predicate:
    return Predicate(lambda s, j=j: not s[f"b{j}"], name=f"¬b{j}")


def _witness(j: int) -> Predicate:
    """DB.j / CB.j witness: every non-general has copied a value and
    ``d.j`` equals their majority."""
    return Predicate(
        lambda s, j=j: _all_copied(s) and s[f"d{j}"] == _majority_of_state(s),
        name=f"W{j}: all copied ∧ d{j}=majority",
    )


def _detection(j: int) -> Predicate:
    """DB.j / CB.j detection predicate: ``d.j = corrdecn`` (false while
    the correct decision is still undefined)."""

    def holds(state, j=j):
        if state["bg"] and not _all_copied(state):
            return False
        return state[f"d{j}"] == corrdecn(state)

    return Predicate(holds, name=f"X{j}: d{j}=corrdecn")


def _ib1_guard(j: int) -> Predicate:
    bn, dn = f"b{j}", f"d{j}"

    def build(index):
        b_at, d_at = index[bn], index[dn]

        def fn(values, b_at=b_at, d_at=d_at):
            return not values[b_at] and values[d_at] is BOTTOM

        return fn

    return _compiled_predicate(f"(¬{bn} ∧ {dn}=⊥)", build)


def _ib2_guard(j: int, guarded: bool) -> Predicate:
    bn, dn, on = f"b{j}", f"d{j}", f"out{j}"
    name = f"(¬{bn} ∧ {dn}≠⊥ ∧ {on}=⊥)"
    if guarded:
        name = f"({name[1:-1]} ∧ W{j})"

    def build(index):
        b_at, d_at, o_at = index[bn], index[dn], index[on]
        if not guarded:
            def fn(values, b_at=b_at, d_at=d_at, o_at=o_at):
                return (
                    not values[b_at]
                    and values[d_at] is not BOTTOM
                    and values[o_at] is BOTTOM
                )
            return fn
        d1, d2, d3 = (index[n] for n in _D_NAMES)

        def fn(values, b_at=b_at, d_at=d_at, o_at=o_at,
               d1=d1, d2=d2, d3=d3):
            if (
                values[b_at]
                or values[d_at] is BOTTOM
                or values[o_at] is not BOTTOM
            ):
                return False
            a, b, c = values[d1], values[d2], values[d3]
            if a is BOTTOM or b is BOTTOM or c is BOTTOM:
                return False
            if a == b or a == c:
                m = a
            elif b == c:
                m = b
            else:
                raise ValueError(f"no strict majority in {[a, b, c]!r}")
            return values[d_at] == m

        return fn

    return _compiled_predicate(name, build)


def _ib_actions(j: int, guarded: bool) -> List[Action]:
    """``IB1.j`` and ``IB2.j``; with ``guarded=True`` the output action
    carries DB.j's witness (the fail-safe restriction ``DB.j ; IB2.j``)."""
    bn, dn, on = f"b{j}", f"d{j}", f"out{j}"
    copy = Action(
        f"IB1.{j}",
        _ib1_guard(j),
        assign(**{dn: lambda s: s["dg"]}),
        reads={bn, dn, "dg"}, writes={dn},
        plan=Plan(
            ("and", ("eq_const", bn, False), ("eq_const", dn, BOTTOM)),
            [("copy", dn, "dg")],
        ),
    )
    output_reads = {bn, on, dn}
    output_guard = [
        ("eq_const", bn, False),
        ("ne_const", dn, BOTTOM),
        ("eq_const", on, BOTTOM),
    ]
    if guarded:
        # DB.j's witness consults every non-general's copy
        output_reads |= set(_D_NAMES)
        output_guard += [
            ("all_ne_const", _D_NAMES, BOTTOM),
            ("eq_majority", dn, _D_NAMES, len(_D_NAMES)),
        ]
    output = Action(
        f"IB2.{j}",
        _ib2_guard(j, guarded),
        assign(**{on: lambda s, dn=dn: s[dn]}),
        reads=output_reads, writes={on},
        plan=Plan(("and", *output_guard), [("copy", on, dn)]),
    )
    return [copy, output]


def _cb1_guard(j: int) -> Predicate:
    bn, dn = f"b{j}", f"d{j}"

    def build(index):
        b_at, d_at = index[bn], index[dn]
        d1, d2, d3 = (index[n] for n in _D_NAMES)

        def fn(values, b_at=b_at, d_at=d_at, d1=d1, d2=d2, d3=d3):
            if values[b_at]:
                return False
            a, b, c = values[d1], values[d2], values[d3]
            if a is BOTTOM or b is BOTTOM or c is BOTTOM:
                return False
            if a == b or a == c:
                m = a
            elif b == c:
                m = b
            else:
                raise ValueError(f"no strict majority in {[a, b, c]!r}")
            return values[d_at] != m

        return fn

    return _compiled_predicate(
        f"(¬{bn} ∧ ∀k: dk≠⊥ ∧ {dn}≠majority)", build
    )


def _cb_action(j: int) -> Action:
    k = len(_D_NAMES)
    return Action(
        f"CB1.{j}",
        _cb1_guard(j),
        assign(**{f"d{j}": lambda s: _majority_of_state(s)}),
        reads={f"b{j}", *_D_NAMES}, writes={f"d{j}"},
        plan=Plan(
            ("and",
             ("eq_const", f"b{j}", False),
             ("all_ne_const", _D_NAMES, BOTTOM),
             ("ne_majority", f"d{j}", _D_NAMES, k)),
            [("set_majority", f"d{j}", _D_NAMES, k)],
        ),
    )


def _byz_behaviour_actions() -> List[Action]:
    """The arbitrary-behaviour halves of BYZ.g and BYZ.j — program
    actions, enabled while the respective Byzantine flag is up.  Writes
    are arbitrary *values*: a Byzantine process may lie but cannot
    un-send (``⊥`` is never written)."""
    actions: List[Action] = [
        Action(
            "BYZ.g.lie",
            Predicate(lambda s: s["bg"], name="bg"),
            lambda s: s.assign_each("dg", VALUES),
            reads={"bg"}, writes={"dg"},
        )
    ]
    for j in NON_GENERALS:
        actions.append(
            Action(
                f"BYZ.{j}.lie_d",
                Predicate(lambda s, j=j: s[f"b{j}"], name=f"b{j}"),
                lambda s, j=j: s.assign_each(f"d{j}", VALUES),
                reads={f"b{j}"}, writes={f"d{j}"},
            )
        )
        actions.append(
            Action(
                f"BYZ.{j}.lie_out",
                Predicate(lambda s, j=j: s[f"b{j}"], name=f"b{j}"),
                lambda s, j=j: s.assign_each(f"out{j}", VALUES),
                reads={f"b{j}"}, writes={f"out{j}"},
            )
        )
    return actions


def _fault_latches() -> FaultClass:
    """The fault-class proper: one latch per process, guarded so that at
    most one process ever turns Byzantine."""
    def build(index):
        bg_at = index["bg"]
        b1, b2, b3 = (index[n] for n in _B_NAMES)

        def fn(values, bg_at=bg_at, b1=b1, b2=b2, b3=b3):
            return not (
                values[bg_at] or values[b1] or values[b2] or values[b3]
            )

        return fn

    nobody_byzantine = _compiled_predicate("nobody Byzantine", build)
    flags = {"bg", *_B_NAMES}
    quiet = ("and", ("eq_const", "bg", False),
             *(("eq_const", n, False) for n in _B_NAMES))
    actions = [Action("BYZ.g.enter", nobody_byzantine, assign(bg=True),
                      reads=flags, writes={"bg"},
                      plan=Plan(quiet, [("set_const", "bg", True)]))]
    for j in NON_GENERALS:
        actions.append(
            Action(f"BYZ.{j}.enter", nobody_byzantine,
                   assign(**{f"b{j}": True}),
                   reads=flags, writes={f"b{j}"},
                   plan=Plan(quiet, [("set_const", f"b{j}", True)]))
        )
    return FaultClass(actions, name="BYZ (≤1 process)")


def _spec() -> Spec:
    def build_validity(index):
        bg_at, dg_at = index["bg"], index["dg"]
        pairs = tuple(
            (index[b], index[o]) for b, o in zip(_B_NAMES, _OUT_NAMES)
        )

        def fn(values, bg_at=bg_at, dg_at=dg_at, pairs=pairs):
            if values[bg_at]:
                return True
            dg = values[dg_at]
            for bi, oi in pairs:
                if values[bi]:
                    continue
                out = values[oi]
                if out is not BOTTOM and out != dg:
                    return False
            return True

        return fn

    def build_agreement(index):
        pairs = tuple(
            (index[b], index[o]) for b, o in zip(_B_NAMES, _OUT_NAMES)
        )

        def fn(values, pairs=pairs):
            seen = None
            for bi, oi in pairs:
                if values[bi]:
                    continue
                out = values[oi]
                if out is BOTTOM:
                    continue
                if seen is None:
                    seen = out
                elif out != seen:
                    return False
            return True

        return fn

    def build_all_decided(index):
        pairs = tuple(
            (index[b], index[o]) for b, o in zip(_B_NAMES, _OUT_NAMES)
        )

        def fn(values, pairs=pairs):
            for bi, oi in pairs:
                if not values[bi] and values[oi] is BOTTOM:
                    return False
            return True

        return fn

    return Spec(
        [
            StateInvariant(
                _compiled_predicate("validity", build_validity),
                name="validity",
            ),
            StateInvariant(
                _compiled_predicate("agreement", build_agreement),
                name="agreement",
            ),
            LeadsTo(
                TRUE,
                _compiled_predicate(
                    "all honest processes decided", build_all_decided
                ),
                name="every honest process eventually outputs",
            ),
        ],
        name="SPEC_byz",
    )


def _build_invariant_ib(index) -> Callable:
    """Values-tuple evaluator for the IB invariant: nobody Byzantine,
    every copy/output either ``⊥`` or ``d.g``."""
    bg_at, dg_at = index["bg"], index["dg"]
    b_at = tuple(index[n] for n in _B_NAMES)
    do_at = tuple(
        (index[d], index[o]) for d, o in zip(_D_NAMES, _OUT_NAMES)
    )

    def fn(values, bg_at=bg_at, dg_at=dg_at, b_at=b_at, do_at=do_at):
        if values[bg_at]:
            return False
        for i in b_at:
            if values[i]:
                return False
        honest = (BOTTOM, values[dg_at])
        for di, oi in do_at:
            if values[di] not in honest:
                return False
            if values[oi] not in honest:
                return False
        return True

    return fn


def _invariant_ib() -> Predicate:
    # Compiled against the state schema like _span below: the invariant
    # seeds every refinement/implication sweep over the full product
    # space, so positions are resolved once per schema and evaluation
    # reads the values-tuple directly.
    return _compiled_predicate("S_ib", _build_invariant_ib)


def _invariant() -> Predicate:
    def build(index):
        ib_fn = _build_invariant_ib(index)
        out_at = tuple(index[n] for n in _OUT_NAMES)
        d_at = tuple(index[n] for n in _D_NAMES)

        def fn(values, ib_fn=ib_fn, out_at=out_at, d_at=d_at):
            if not ib_fn(values):
                return False
            for i in out_at:
                if values[i] is not BOTTOM:
                    break
            else:
                return True
            for i in d_at:
                if values[i] is BOTTOM:
                    return False
            return True

        return fn

    return _compiled_predicate("S_byz", build)


def _span() -> Predicate:
    """T_byz: at most one Byzantine process; every honest output was
    emitted under the witness — all copies present and the output equals
    their (thereafter stable) majority; under an honest general, honest
    copies and outputs carry only ``d.g``."""

    # The span is evaluated on every state of the full product space to
    # seed each exploration, so it is compiled against the state schema:
    # variable positions are resolved once per schema and each evaluation
    # reads the values-tuple directly instead of going through
    # ``state[name]`` a dozen times.
    def build(index):
        bg_at, dg_at = index["bg"], index["dg"]
        b_at = tuple(index[n] for n in _B_NAMES)
        d_at = tuple(index[n] for n in _D_NAMES)
        out_at = tuple(index[n] for n in _OUT_NAMES)
        bo_at = tuple(zip(b_at, out_at))
        bdo_at = tuple(zip(b_at, d_at, out_at))

        def fn(values, bg_at=bg_at, dg_at=dg_at, b_at=b_at, d_at=d_at,
               bo_at=bo_at, bdo_at=bdo_at):
            count = 1 if values[bg_at] else 0
            for i in b_at:
                if values[i]:
                    count += 1
            if count > 1:
                return False
            witness = None  # the stable majority, computed at most once
            for bi, oi in bo_at:
                if values[bi]:
                    continue
                out = values[oi]
                if out is BOTTOM:
                    continue
                if witness is None:
                    copies = [values[i] for i in d_at]
                    if any(c is BOTTOM for c in copies):
                        return False
                    a, b, c = copies
                    if a == b or a == c:
                        witness = a
                    elif b == c:
                        witness = b
                    else:
                        raise ValueError(f"no strict majority in {copies!r}")
                if out != witness:
                    return False
            if not values[bg_at]:
                honest = (BOTTOM, values[dg_at])
                for bi, di, oi in bdo_at:
                    if values[bi]:
                        continue
                    if values[di] not in honest:
                        return False
                    if values[oi] not in honest:
                        return False
            return True

        return fn

    return _compiled_predicate("T_byz", build)


def build() -> ByzantineModel:
    """Construct the Byzantine-agreement family for n = 4, f = 1."""
    variables = _variables()

    # the non-generals are interchangeable: permuting the (d, out, b)
    # triples permutes every per-j action onto its sibling and fixes the
    # majority/witness/spec predicates (all functions of the multiset of
    # copies), so every program of the family declares S_3 over them
    symmetry = ReplicaSymmetry.of_families(
        "d{i}", "out{i}", "b{i}", indices=NON_GENERALS,
        name="S_3 over non-generals",
        action_templates=(
            "IB1.{i}", "IB2.{i}", "CB1.{i}",
            "BYZ.{i}.lie_d", "BYZ.{i}.lie_out",
        ),
    )

    ib_actions = [a for j in NON_GENERALS for a in _ib_actions(j, guarded=False)]
    ib = Program(variables, ib_actions, name="IB", symmetry=symmetry)

    byz_behaviour = _byz_behaviour_actions()
    ib_with_byz = Program(variables, ib_actions + byz_behaviour,
                          name="IB‖BYZ", symmetry=symmetry)
    # one shared set of guarded IB actions: actions are immutable and
    # memoize their successors, so the masking program's exploration
    # replays the fail-safe program's evaluations instead of redoing them
    guarded_ib = [a for j in NON_GENERALS for a in _ib_actions(j, guarded=True)]
    failsafe = Program(
        variables, guarded_ib + byz_behaviour, name="IB1‖DB;IB2‖BYZ",
        symmetry=symmetry,
    )

    masking_actions = (
        guarded_ib
        + [_cb_action(j) for j in NON_GENERALS]
        + byz_behaviour
    )
    masking = Program(variables, masking_actions, name="IB1‖DB;IB2‖CB‖BYZ",
                      symmetry=symmetry)

    return ByzantineModel(
        ib=ib,
        ib_with_byz=ib_with_byz,
        failsafe=failsafe,
        masking=masking,
        spec=_spec(),
        invariant_ib=_invariant_ib(),
        invariant=_invariant(),
        span=_span(),
        faults=_fault_latches(),
        witnesses={j: _witness(j) for j in NON_GENERALS},
        detections={j: _detection(j) for j in NON_GENERALS},
    )


# -- the k-non-general generalization -----------------------------------------

def initial_states(non_generals: Sequence[int] = NON_GENERALS) -> List:
    """The protocol's initial states: the general holds either value,
    nobody is Byzantine, nothing copied or output yet.  Exploration from
    these states covers exactly the protocol's runs — the scaling
    benchmarks use this (the full product space sweep that seeds
    span-based exploration is itself exponential in k)."""
    from ..core import State

    base = {"bg": False}
    for j in non_generals:
        base[f"d{j}"] = BOTTOM
        base[f"out{j}"] = BOTTOM
        base[f"b{j}"] = False
    return [State(dict(base, dg=value)) for value in VALUES]


def build_family(non_generals: Sequence[int] = NON_GENERALS) -> ByzantineModel:
    """Byzantine agreement generalized to ``k`` non-generals (k odd).

    The same Section 6.2 construction — copy, guarded output, majority
    correction, ≤1 Byzantine latch — with the majority taken over ``k``
    copies.  ``build_family((1, 2, 3))`` is semantically identical to
    :func:`build` (the parity tests pin this); larger instances are the
    scaling story for symmetric exploration, since the unreduced graph
    grows exponentially in ``k`` while the quotient grows polynomially
    (states are determined by *counts* of non-general configurations,
    not their assignment to processes).

    The model's programs declare ``S_k`` over the per-process
    ``(d, out, b)`` triples.
    """
    ngs = tuple(non_generals)
    k = len(ngs)
    if k < 3 or k % 2 == 0:
        raise ValueError(
            "build_family needs an odd number of non-generals ≥ 3 "
            "(strict majority voting)"
        )
    if len(set(ngs)) != k:
        raise ValueError(f"duplicate non-general ids: {ngs}")
    b_names = tuple(f"b{j}" for j in ngs)
    d_names = tuple(f"d{j}" for j in ngs)
    out_names = tuple(f"out{j}" for j in ngs)

    variables = [Variable("dg", VALUES), Variable("bg", [False, True])]
    for j in ngs:
        variables.append(Variable(f"d{j}", [BOTTOM, *VALUES]))
        variables.append(Variable(f"out{j}", [BOTTOM, *VALUES]))
        variables.append(Variable(f"b{j}", [False, True]))

    # binary strict majority of k odd copies: 1 iff more than half are 1
    # (callers guarantee no copy is ⊥)
    def majority_of(copies, k=k):
        return 1 if 2 * sum(copies) > k else 0

    def ib2_guard(j: int, guarded: bool) -> Predicate:
        bn, dn, on = f"b{j}", f"d{j}", f"out{j}"
        name = f"(¬{bn} ∧ {dn}≠⊥ ∧ {on}=⊥)"
        if guarded:
            name = f"({name[1:-1]} ∧ W{j})"

        def build_fn(index):
            b_at, d_at, o_at = index[bn], index[dn], index[on]
            if not guarded:
                def fn(values, b_at=b_at, d_at=d_at, o_at=o_at):
                    return (
                        not values[b_at]
                        and values[d_at] is not BOTTOM
                        and values[o_at] is BOTTOM
                    )
                return fn
            all_d = tuple(index[n] for n in d_names)

            def fn(values, b_at=b_at, d_at=d_at, o_at=o_at, all_d=all_d):
                if (
                    values[b_at]
                    or values[d_at] is BOTTOM
                    or values[o_at] is not BOTTOM
                ):
                    return False
                copies = [values[i] for i in all_d]
                if BOTTOM in copies:
                    return False
                return values[d_at] == majority_of(copies)

            return fn

        return _compiled_predicate(name, build_fn)

    def ib_actions(j: int, guarded: bool) -> List[Action]:
        bn, dn, on = f"b{j}", f"d{j}", f"out{j}"
        copy = Action(
            f"IB1.{j}",
            _ib1_guard(j),
            assign(**{dn: lambda s: s["dg"]}),
            reads={bn, dn, "dg"}, writes={dn},
            plan=Plan(
                ("and", ("eq_const", bn, False), ("eq_const", dn, BOTTOM)),
                [("copy", dn, "dg")],
            ),
        )
        output_reads = {bn, on, dn}
        output_guard = [
            ("eq_const", bn, False),
            ("ne_const", dn, BOTTOM),
            ("eq_const", on, BOTTOM),
        ]
        if guarded:
            output_reads |= set(d_names)
            output_guard += [
                ("all_ne_const", d_names, BOTTOM),
                ("eq_majority", dn, d_names, k),
            ]
        output = Action(
            f"IB2.{j}",
            ib2_guard(j, guarded),
            assign(**{on: lambda s, dn=dn: s[dn]}),
            reads=output_reads, writes={on},
            plan=Plan(("and", *output_guard), [("copy", on, dn)]),
        )
        return [copy, output]

    def cb_action(j: int) -> Action:
        bn, dn = f"b{j}", f"d{j}"

        def build_fn(index):
            b_at, d_at = index[bn], index[dn]
            all_d = tuple(index[n] for n in d_names)

            def fn(values, b_at=b_at, d_at=d_at, all_d=all_d):
                if values[b_at]:
                    return False
                copies = [values[i] for i in all_d]
                if BOTTOM in copies:
                    return False
                return values[d_at] != majority_of(copies)

            return fn

        return Action(
            f"CB1.{j}",
            _compiled_predicate(f"(¬{bn} ∧ ∀k: dk≠⊥ ∧ {dn}≠majority)",
                                build_fn),
            assign(**{dn: lambda s, dn=dn: majority_of(
                [s[n] for n in d_names]
            )}),
            reads={bn, *d_names}, writes={dn},
            plan=Plan(
                ("and",
                 ("eq_const", bn, False),
                 ("all_ne_const", d_names, BOTTOM),
                 ("ne_majority", dn, d_names, k)),
                [("set_majority", dn, d_names, k)],
            ),
        )

    def byz_behaviour() -> List[Action]:
        actions = [
            Action(
                "BYZ.g.lie",
                Predicate(lambda s: s["bg"], name="bg"),
                lambda s: s.assign_each("dg", VALUES),
                reads={"bg"}, writes={"dg"},
            )
        ]
        for j in ngs:
            actions.append(
                Action(
                    f"BYZ.{j}.lie_d",
                    Predicate(lambda s, j=j: s[f"b{j}"], name=f"b{j}"),
                    lambda s, j=j: s.assign_each(f"d{j}", VALUES),
                    reads={f"b{j}"}, writes={f"d{j}"},
                )
            )
            actions.append(
                Action(
                    f"BYZ.{j}.lie_out",
                    Predicate(lambda s, j=j: s[f"b{j}"], name=f"b{j}"),
                    lambda s, j=j: s.assign_each(f"out{j}", VALUES),
                    reads={f"b{j}"}, writes={f"out{j}"},
                )
            )
        return actions

    def fault_latches() -> FaultClass:
        def build_fn(index):
            flag_at = (index["bg"],) + tuple(index[n] for n in b_names)

            def fn(values, flag_at=flag_at):
                for i in flag_at:
                    if values[i]:
                        return False
                return True

            return fn

        nobody_byzantine = _compiled_predicate("nobody Byzantine", build_fn)
        flags = {"bg", *b_names}
        quiet = ("and", ("eq_const", "bg", False),
                 *(("eq_const", n, False) for n in b_names))
        actions = [Action("BYZ.g.enter", nobody_byzantine, assign(bg=True),
                          reads=flags, writes={"bg"},
                          plan=Plan(quiet, [("set_const", "bg", True)]))]
        for j in ngs:
            actions.append(
                Action(f"BYZ.{j}.enter", nobody_byzantine,
                       assign(**{f"b{j}": True}),
                       reads=flags, writes={f"b{j}"},
                       plan=Plan(quiet, [("set_const", f"b{j}", True)]))
            )
        return FaultClass(actions, name="BYZ (≤1 process)")

    bo_names = tuple(zip(b_names, out_names))

    def spec() -> Spec:
        def build_validity(index):
            bg_at, dg_at = index["bg"], index["dg"]
            pairs = tuple((index[b], index[o]) for b, o in bo_names)

            def fn(values, bg_at=bg_at, dg_at=dg_at, pairs=pairs):
                if values[bg_at]:
                    return True
                dg = values[dg_at]
                for bi, oi in pairs:
                    if values[bi]:
                        continue
                    out = values[oi]
                    if out is not BOTTOM and out != dg:
                        return False
                return True

            return fn

        def build_agreement(index):
            pairs = tuple((index[b], index[o]) for b, o in bo_names)

            def fn(values, pairs=pairs):
                seen = None
                for bi, oi in pairs:
                    if values[bi]:
                        continue
                    out = values[oi]
                    if out is BOTTOM:
                        continue
                    if seen is None:
                        seen = out
                    elif out != seen:
                        return False
                return True

            return fn

        def build_all_decided(index):
            pairs = tuple((index[b], index[o]) for b, o in bo_names)

            def fn(values, pairs=pairs):
                for bi, oi in pairs:
                    if not values[bi] and values[oi] is BOTTOM:
                        return False
                return True

            return fn

        return Spec(
            [
                StateInvariant(
                    _compiled_predicate("validity", build_validity),
                    name="validity",
                ),
                StateInvariant(
                    _compiled_predicate("agreement", build_agreement),
                    name="agreement",
                ),
                LeadsTo(
                    TRUE,
                    _compiled_predicate(
                        "all honest processes decided", build_all_decided
                    ),
                    name="every honest process eventually outputs",
                ),
            ],
            name=f"SPEC_byz(k={k})",
        )

    def build_invariant_ib(index):
        bg_at, dg_at = index["bg"], index["dg"]
        b_at = tuple(index[n] for n in b_names)
        do_at = tuple((index[d], index[o]) for d, o in zip(d_names, out_names))

        def fn(values, bg_at=bg_at, dg_at=dg_at, b_at=b_at, do_at=do_at):
            if values[bg_at]:
                return False
            for i in b_at:
                if values[i]:
                    return False
            honest = (BOTTOM, values[dg_at])
            for di, oi in do_at:
                if values[di] not in honest:
                    return False
                if values[oi] not in honest:
                    return False
            return True

        return fn

    def invariant() -> Predicate:
        def build_fn(index):
            ib_fn = build_invariant_ib(index)
            out_at = tuple(index[n] for n in out_names)
            d_at = tuple(index[n] for n in d_names)

            def fn(values, ib_fn=ib_fn, out_at=out_at, d_at=d_at):
                if not ib_fn(values):
                    return False
                for i in out_at:
                    if values[i] is not BOTTOM:
                        break
                else:
                    return True
                for i in d_at:
                    if values[i] is BOTTOM:
                        return False
                return True

            return fn

        return _compiled_predicate(f"S_byz(k={k})", build_fn)

    def span() -> Predicate:
        def build_fn(index):
            bg_at, dg_at = index["bg"], index["dg"]
            b_at = tuple(index[n] for n in b_names)
            d_at = tuple(index[n] for n in d_names)
            out_at = tuple(index[n] for n in out_names)
            bo_at = tuple(zip(b_at, out_at))
            bdo_at = tuple(zip(b_at, d_at, out_at))

            def fn(values, bg_at=bg_at, dg_at=dg_at, b_at=b_at, d_at=d_at,
                   bo_at=bo_at, bdo_at=bdo_at):
                count = 1 if values[bg_at] else 0
                for i in b_at:
                    if values[i]:
                        count += 1
                if count > 1:
                    return False
                witness = None
                for bi, oi in bo_at:
                    if values[bi]:
                        continue
                    out = values[oi]
                    if out is BOTTOM:
                        continue
                    if witness is None:
                        copies = [values[i] for i in d_at]
                        if BOTTOM in copies:
                            return False
                        witness = majority_of(copies)
                    if out != witness:
                        return False
                if not values[bg_at]:
                    honest = (BOTTOM, values[dg_at])
                    for bi, di, oi in bdo_at:
                        if values[bi]:
                            continue
                        if values[di] not in honest:
                            return False
                        if values[oi] not in honest:
                            return False
                return True

            return fn

        return _compiled_predicate(f"T_byz(k={k})", build_fn)

    def witness(j: int) -> Predicate:
        def holds(s, j=j):
            copies = [s[n] for n in d_names]
            if BOTTOM in copies:
                return False
            return s[f"d{j}"] == majority_of(copies)

        return Predicate(holds, name=f"W{j}: all copied ∧ d{j}=majority")

    def detection(j: int) -> Predicate:
        def holds(s, j=j):
            copies = [s[n] for n in d_names]
            if not s["bg"]:
                return s[f"d{j}"] == s["dg"]
            if BOTTOM in copies:
                return False
            return s[f"d{j}"] == majority_of(copies)

        return Predicate(holds, name=f"X{j}: d{j}=corrdecn")

    symmetry = ReplicaSymmetry.of_families(
        "d{i}", "out{i}", "b{i}", indices=ngs,
        name=f"S_{k} over non-generals",
        action_templates=(
            "IB1.{i}", "IB2.{i}", "CB1.{i}",
            "BYZ.{i}.lie_d", "BYZ.{i}.lie_out",
        ),
    )

    plain_ib = [a for j in ngs for a in ib_actions(j, guarded=False)]
    ib = Program(variables, plain_ib, name=f"IB(k={k})", symmetry=symmetry)
    behaviour = byz_behaviour()
    ib_with_byz = Program(variables, plain_ib + behaviour,
                          name=f"IB‖BYZ(k={k})", symmetry=symmetry)
    guarded_ib = [a for j in ngs for a in ib_actions(j, guarded=True)]
    failsafe = Program(variables, guarded_ib + behaviour,
                       name=f"IB1‖DB;IB2‖BYZ(k={k})", symmetry=symmetry)
    masking = Program(
        variables,
        guarded_ib + [cb_action(j) for j in ngs] + behaviour,
        name=f"IB1‖DB;IB2‖CB‖BYZ(k={k})", symmetry=symmetry,
    )

    return ByzantineModel(
        ib=ib,
        ib_with_byz=ib_with_byz,
        failsafe=failsafe,
        masking=masking,
        spec=spec(),
        invariant_ib=_compiled_predicate(f"S_ib(k={k})", build_invariant_ib),
        invariant=invariant(),
        span=span(),
        faults=fault_latches(),
        witnesses={j: witness(j) for j in ngs},
        detections={j: detection(j) for j in ngs},
    )
