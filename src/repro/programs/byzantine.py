"""Section 6.2: Byzantine agreement by detector + corrector.

The problem: a general ``g`` holds a binary value ``d.g``; every
non-general process ``j`` must eventually output a decision such that

1. (validity) if ``g`` is not Byzantine, every non-Byzantine output
   equals ``d.g``; and
2. (agreement) even if ``g`` is Byzantine, all non-Byzantine outputs are
   identical.

With four processes (``g`` plus three non-generals) at most one process
may be Byzantine (n = 3f + 1 with f = 1).  The paper derives the masking
program constructively:

- **IB** (fault-intolerant): each ``j`` copies ``d.g`` into ``d.j``
  (action ``IB1.j``), then outputs it (action ``IB2.j``).
- **BYZ.j**: following the paper, ``BYZ.j`` consists of (a) the action
  that latches ``b.j`` (entering Byzantine mode — at most one process
  may do so) and (b) actions that let a Byzantine process change its
  decision and output arbitrarily.  The *latch* is the fault; the
  arbitrary-behaviour actions appear **in the program composition**
  (``BYZ.g ‖ (‖ j : … ‖ BYZ.j)``), i.e. they execute under weak
  fairness like any program action.  A Byzantine write is an arbitrary
  *value* — ``⊥`` means "not yet written" and cannot be restored, just
  as a sent message cannot be unsent.
- **DB.j** (detector): detection predicate ``d.j = corrdecn`` (the
  correct decision — ``d.g`` when ``g`` is honest, else the majority of
  the non-general decisions); witness predicate "every non-general has
  copied a value and ``d.j`` equals their majority".  The fail-safe
  program restricts ``IB2.j`` to the witness (``DB.j ; IB2.j``).
- **CB.j** (corrector): same correction predicate; action ``CB1.j``
  overwrites a minority ``d.j`` with the majority once every
  non-general holds a value.
- The masking program is ``BYZ.g ‖ (‖ j : IB1.j ‖ DB.j;IB2.j ‖ CB.j ‖
  BYZ.j)`` — exactly the classical one-round Byzantine agreement for
  n = 4.

State variables: ``dg``/``bg`` for the general; per non-general ``j``:
``d{j}`` (copied decision, ``⊥`` initially), ``out{j}`` (the output,
``⊥`` until ``IB2.j`` fires), ``b{j}`` (Byzantine flag).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Sequence, Tuple

from ..core import (
    BOTTOM,
    Action,
    FaultClass,
    LeadsTo,
    Predicate,
    Program,
    Spec,
    StateInvariant,
    TRUE,
    Variable,
    assign,
)

__all__ = ["ByzantineModel", "build", "majority", "corrdecn"]

NON_GENERALS: Tuple[int, ...] = (1, 2, 3)
VALUES: Tuple[int, ...] = (0, 1)


def majority(values: Sequence[Hashable]) -> Hashable:
    """The strict-majority value of an odd-length sequence."""
    counts: Dict[Hashable, int] = {}
    for value in values:
        counts[value] = counts.get(value, 0) + 1
    best, best_count = max(counts.items(), key=lambda kv: kv[1])
    if best_count * 2 <= len(values):
        raise ValueError(f"no strict majority in {values!r}")
    return best


# per-process names, computed once: the tolerance predicates below run on
# every state of the full product space, where rebuilding f"d{j}"-style
# keys per call dominated their cost
_B_NAMES: Tuple[str, ...] = tuple(f"b{j}" for j in NON_GENERALS)
_D_NAMES: Tuple[str, ...] = tuple(f"d{j}" for j in NON_GENERALS)
_OUT_NAMES: Tuple[str, ...] = tuple(f"out{j}" for j in NON_GENERALS)


def _majority_of_state(state) -> Hashable:
    # specialization of majority() for the three non-general copies
    a, b, c = state["d1"], state["d2"], state["d3"]
    if a == b or a == c:
        return a
    if b == c:
        return b
    raise ValueError(f"no strict majority in {[a, b, c]!r}")


def _all_copied(state) -> bool:
    return all(state[n] is not BOTTOM for n in _D_NAMES)


def corrdecn(state) -> Hashable:
    """The paper's *correct decision*: ``d.g`` when the general is
    honest, else the majority of the non-general copies (defined once
    every non-general holds a value)."""
    if not state["bg"]:
        return state["dg"]
    return _majority_of_state(state)


@dataclass(frozen=True)
class ByzantineModel:
    """All artifacts of the Section 6.2 construction (n = 4, f = 1)."""

    ib: Program              #: fault-intolerant agreement (no BYZ components)
    ib_with_byz: Program     #: IB ‖ BYZ — the intolerant program in the fault environment
    failsafe: Program        #: BYZ.g ‖ (‖j: IB1.j ‖ DB.j;IB2.j ‖ BYZ.j)
    masking: Program         #: BYZ.g ‖ (‖j: IB1.j ‖ DB.j;IB2.j ‖ CB.j ‖ BYZ.j)
    spec: Spec               #: validity ∧ agreement ∧ eventual output
    invariant_ib: Predicate  #: S for IB — nobody Byzantine, copies consistent
    invariant: Predicate     #: S for the guarded programs (outputs ⇒ all copied)
    span: Predicate          #: T — at most one Byzantine, outputs consistent
    faults: FaultClass       #: the b.j := true latches
    witnesses: Dict[int, Predicate]   #: DB.j witness per non-general
    detections: Dict[int, Predicate]  #: d.j = corrdecn per non-general


def _variables() -> List[Variable]:
    variables = [Variable("dg", VALUES), Variable("bg", [False, True])]
    for j in NON_GENERALS:
        variables.append(Variable(f"d{j}", [BOTTOM, *VALUES]))
        variables.append(Variable(f"out{j}", [BOTTOM, *VALUES]))
        variables.append(Variable(f"b{j}", [False, True]))
    return variables


def _honest(j: int) -> Predicate:
    return Predicate(lambda s, j=j: not s[f"b{j}"], name=f"¬b{j}")


def _witness(j: int) -> Predicate:
    """DB.j / CB.j witness: every non-general has copied a value and
    ``d.j`` equals their majority."""
    return Predicate(
        lambda s, j=j: _all_copied(s) and s[f"d{j}"] == _majority_of_state(s),
        name=f"W{j}: all copied ∧ d{j}=majority",
    )


def _detection(j: int) -> Predicate:
    """DB.j / CB.j detection predicate: ``d.j = corrdecn`` (false while
    the correct decision is still undefined)."""

    def holds(state, j=j):
        if state["bg"] and not _all_copied(state):
            return False
        return state[f"d{j}"] == corrdecn(state)

    return Predicate(holds, name=f"X{j}: d{j}=corrdecn")


def _ib_actions(j: int, guarded: bool) -> List[Action]:
    """``IB1.j`` and ``IB2.j``; with ``guarded=True`` the output action
    carries DB.j's witness (the fail-safe restriction ``DB.j ; IB2.j``)."""
    copy = Action(
        f"IB1.{j}",
        _honest(j)
        & Predicate(lambda s, j=j: s[f"d{j}"] is BOTTOM, name=f"d{j}=⊥"),
        assign(**{f"d{j}": lambda s: s["dg"]}),
    )
    output_guard = (
        _honest(j)
        & Predicate(lambda s, j=j: s[f"d{j}"] is not BOTTOM, name=f"d{j}≠⊥")
        & Predicate(lambda s, j=j: s[f"out{j}"] is BOTTOM, name=f"out{j}=⊥")
    )
    if guarded:
        output_guard = output_guard & _witness(j)
    output = Action(
        f"IB2.{j}",
        output_guard,
        assign(**{f"out{j}": lambda s, j=j: s[f"d{j}"]}),
    )
    return [copy, output]


def _cb_action(j: int) -> Action:
    return Action(
        f"CB1.{j}",
        _honest(j)
        & Predicate(_all_copied, name="∀k: dk≠⊥")
        & Predicate(
            lambda s, j=j: s[f"d{j}"] != _majority_of_state(s),
            name=f"d{j}≠majority",
        ),
        assign(**{f"d{j}": lambda s: _majority_of_state(s)}),
    )


def _byz_behaviour_actions() -> List[Action]:
    """The arbitrary-behaviour halves of BYZ.g and BYZ.j — program
    actions, enabled while the respective Byzantine flag is up.  Writes
    are arbitrary *values*: a Byzantine process may lie but cannot
    un-send (``⊥`` is never written)."""
    actions: List[Action] = [
        Action(
            "BYZ.g.lie",
            Predicate(lambda s: s["bg"], name="bg"),
            lambda s: tuple(
                s.assign(dg=v) for v in VALUES
            ),
        )
    ]
    for j in NON_GENERALS:
        actions.append(
            Action(
                f"BYZ.{j}.lie_d",
                Predicate(lambda s, j=j: s[f"b{j}"], name=f"b{j}"),
                lambda s, j=j: tuple(
                    s.assign(**{f"d{j}": v}) for v in VALUES
                ),
            )
        )
        actions.append(
            Action(
                f"BYZ.{j}.lie_out",
                Predicate(lambda s, j=j: s[f"b{j}"], name=f"b{j}"),
                lambda s, j=j: tuple(
                    s.assign(**{f"out{j}": v}) for v in VALUES
                ),
            )
        )
    return actions


def _fault_latches() -> FaultClass:
    """The fault-class proper: one latch per process, guarded so that at
    most one process ever turns Byzantine."""
    nobody_byzantine = Predicate(
        lambda s: not s["bg"] and not any(s[f"b{j}"] for j in NON_GENERALS),
        name="nobody Byzantine",
    )
    actions = [Action("BYZ.g.enter", nobody_byzantine, assign(bg=True))]
    for j in NON_GENERALS:
        actions.append(
            Action(f"BYZ.{j}.enter", nobody_byzantine, assign(**{f"b{j}": True}))
        )
    return FaultClass(actions, name="BYZ (≤1 process)")


def _spec() -> Spec:
    def validity(state) -> bool:
        if state["bg"]:
            return True
        return all(
            state[f"b{j}"]
            or state[f"out{j}"] is BOTTOM
            or state[f"out{j}"] == state["dg"]
            for j in NON_GENERALS
        )

    def agreement(state) -> bool:
        outputs = [
            state[f"out{j}"]
            for j in NON_GENERALS
            if not state[f"b{j}"] and state[f"out{j}"] is not BOTTOM
        ]
        return len(set(outputs)) <= 1

    def all_decided(state) -> bool:
        return all(
            state[f"b{j}"] or state[f"out{j}"] is not BOTTOM
            for j in NON_GENERALS
        )

    return Spec(
        [
            StateInvariant(Predicate(validity, name="validity"), name="validity"),
            StateInvariant(Predicate(agreement, name="agreement"), name="agreement"),
            LeadsTo(
                TRUE,
                Predicate(all_decided, name="all honest processes decided"),
                name="every honest process eventually outputs",
            ),
        ],
        name="SPEC_byz",
    )


def _invariant_ib() -> Predicate:
    def holds(state) -> bool:
        if state["bg"] or any(state[n] for n in _B_NAMES):
            return False
        honest = (BOTTOM, state["dg"])
        for d_name, out_name in zip(_D_NAMES, _OUT_NAMES):
            if state[d_name] not in honest:
                return False
            if state[out_name] not in honest:
                return False
        return True

    return Predicate(holds, name="S_ib")


def _invariant() -> Predicate:
    base = _invariant_ib()

    base_fn = base.fn

    def holds(state) -> bool:
        if not base_fn(state):
            return False
        if all(state[n] is BOTTOM for n in _OUT_NAMES):
            return True
        return _all_copied(state)

    return Predicate(holds, name="S_byz")


def _span() -> Predicate:
    """T_byz: at most one Byzantine process; every honest output was
    emitted under the witness — all copies present and the output equals
    their (thereafter stable) majority; under an honest general, honest
    copies and outputs carry only ``d.g``."""

    # The span is evaluated on every state of the full product space to
    # seed each exploration, so it is compiled against the state schema:
    # variable positions are resolved once per schema and each evaluation
    # reads the values-tuple directly instead of going through
    # ``state[name]`` a dozen times.
    plans: Dict[object, Tuple] = {}

    def _plan(schema) -> Tuple:
        index = schema.index
        plan = (
            index["bg"],
            index["dg"],
            tuple(index[n] for n in _B_NAMES),
            tuple(index[n] for n in _D_NAMES),
            tuple(index[n] for n in _OUT_NAMES),
        )
        plans[schema] = plan
        return plan

    def holds(state) -> bool:
        schema = state.schema
        plan = plans.get(schema)
        if plan is None:
            plan = _plan(schema)
        bg_at, dg_at, b_at, d_at, out_at = plan
        values = state.values_tuple

        count = 1 if values[bg_at] else 0
        for i in b_at:
            if values[i]:
                count += 1
        if count > 1:
            return False
        witness = None  # (all copied?, their majority), computed at most once
        for bi, oi in zip(b_at, out_at):
            if values[bi]:
                continue
            out = values[oi]
            if out is BOTTOM:
                continue
            if witness is None:
                copies = [values[i] for i in d_at]
                if any(c is BOTTOM for c in copies):
                    return False
                a, b, c = copies
                if a == b or a == c:
                    witness = a
                elif b == c:
                    witness = b
                else:
                    raise ValueError(f"no strict majority in {copies!r}")
            if out != witness:
                return False
        if not values[bg_at]:
            honest = (BOTTOM, values[dg_at])
            for bi, di, oi in zip(b_at, d_at, out_at):
                if values[bi]:
                    continue
                if values[di] not in honest:
                    return False
                if values[oi] not in honest:
                    return False
        return True

    return Predicate(holds, name="T_byz")


def build() -> ByzantineModel:
    """Construct the Byzantine-agreement family for n = 4, f = 1."""
    variables = _variables()

    ib_actions = [a for j in NON_GENERALS for a in _ib_actions(j, guarded=False)]
    ib = Program(variables, ib_actions, name="IB")

    byz_behaviour = _byz_behaviour_actions()
    ib_with_byz = Program(variables, ib_actions + byz_behaviour, name="IB‖BYZ")
    failsafe_actions = (
        [a for j in NON_GENERALS for a in _ib_actions(j, guarded=True)]
        + byz_behaviour
    )
    failsafe = Program(variables, failsafe_actions, name="IB1‖DB;IB2‖BYZ")

    masking_actions = (
        [a for j in NON_GENERALS for a in _ib_actions(j, guarded=True)]
        + [_cb_action(j) for j in NON_GENERALS]
        + byz_behaviour
    )
    masking = Program(variables, masking_actions, name="IB1‖DB;IB2‖CB‖BYZ")

    return ByzantineModel(
        ib=ib,
        ib_with_byz=ib_with_byz,
        failsafe=failsafe,
        masking=masking,
        spec=_spec(),
        invariant_ib=_invariant_ib(),
        invariant=_invariant(),
        span=_span(),
        faults=_fault_latches(),
        witnesses={j: _witness(j) for j in NON_GENERALS},
        detections={j: _detection(j) for j in NON_GENERALS},
    )
