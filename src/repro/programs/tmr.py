"""Section 6.1: triple modular redundancy by detector + corrector.

The input-output problem: three inputs ``x, y, z`` and one output
``out``.  In the absence of faults all inputs equal the uncorrupted
value; a fault may corrupt *one* input.  ``SPEC_io`` requires the output
to be assigned the value of an uncorrupted input (safety: ``out`` is
never set to a corrupted value; liveness: ``out`` is eventually set).

The paper derives the TMR system constructively:

- **IR** (fault-intolerant): ``out = ⊥ --> out := x``.
- **DR** (detector): detection predicate ``x = uncor``, witness
  predicate ``x = y ∨ x = z``.  The fail-safe program is the sequential
  composition ``DR ; IR`` — ``IR`` restricted to run only under the
  witness.
- **CR** (corrector): correction/witness predicate ``out = uncor``; two
  actions copy ``y`` (resp. ``z``) into the output when they are
  majority-confirmed.
- **TMR = DR;IR ‖ CR** is masking tolerant — and is exactly the
  classical triple-modular-redundancy voter, obtained by composition.

Modelling choices: the uncorrupted value is the ``build`` parameter
``uncor`` (the paper's ghost constant); the fault may corrupt any one
input, and "at most one corruption" is enforced by guarding each fault
action on all inputs being currently uncorrupted.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable

from ..core import (
    BOTTOM,
    Action,
    FaultClass,
    LeadsTo,
    Predicate,
    Program,
    Spec,
    TRUE,
    TransitionInvariant,
    Variable,
    assign,
)

__all__ = ["TmrModel", "build"]


@dataclass(frozen=True)
class TmrModel:
    """All artifacts of the Section 6.1 construction."""

    uncor: Hashable
    ir: Program                #: fault-intolerant IR
    dr_ir: Program             #: fail-safe DR ; IR
    tmr: Program               #: masking DR ; IR ‖ CR
    cr: Program                #: the corrector component alone
    detector_eval: Program     #: the action-free program that evaluates DR's witness
    spec: Spec                 #: SPEC_io
    witness_dr: Predicate      #: x = y ∨ x = z
    detection_dr: Predicate    #: x = uncor
    witness_cr: Predicate      #: out = uncor
    invariant: Predicate       #: S — no input corrupted
    span: Predicate            #: T — at most one input corrupted
    span_inputs: Predicate     #: T over the inputs only (for the stateless detector)
    faults: FaultClass         #: corrupt one input


def build(uncor: Hashable = 1, corrupted: Hashable = 0) -> TmrModel:
    """Construct the TMR family with ``uncor`` as the good input value
    and ``corrupted`` as the value a fault writes."""
    if uncor == corrupted:
        raise ValueError("corrupted value must differ from the uncorrupted one")
    domain = [uncor, corrupted]
    x = Variable("x", domain)
    y = Variable("y", domain)
    z = Variable("z", domain)
    out = Variable("out", [BOTTOM, *domain])

    unset = Predicate(lambda s: s["out"] is BOTTOM, name="out=⊥")
    witness_dr = Predicate(
        lambda s: s["x"] == s["y"] or s["x"] == s["z"], name="x=y ∨ x=z"
    )
    detection_dr = Predicate(lambda s, u=uncor: s["x"] == u, name="x=uncor")
    witness_cr = Predicate(lambda s, u=uncor: s["out"] == u, name="out=uncor")

    ir = Program(
        variables=[x, y, z, out],
        actions=[Action("IR1", unset, assign(out=lambda s: s["x"]),
                        reads={"out", "x"}, writes={"out"})],
        name="IR",
    )

    # DR ; IR — the detector restricts IR to its witness predicate.
    dr_ir = ir.restrict(witness_dr, name="DR;IR")

    cr = Program(
        variables=[x, y, z, out],
        actions=[
            Action(
                "CR1",
                unset & Predicate(
                    lambda s: s["y"] == s["z"] or s["y"] == s["x"],
                    name="y=z ∨ y=x",
                ),
                assign(out=lambda s: s["y"]),
                reads={"out", "x", "y", "z"}, writes={"out"},
            ),
            Action(
                "CR2",
                unset & Predicate(
                    lambda s: s["z"] == s["x"] or s["z"] == s["y"],
                    name="z=x ∨ z=y",
                ),
                assign(out=lambda s: s["z"]),
                reads={"out", "x", "y", "z"}, writes={"out"},
            ),
        ],
        name="CR",
    )

    tmr = dr_ir.parallel(cr, name="DR;IR ‖ CR")

    # the paper's "program that merely evaluates the state predicate":
    # an action-free program over the inputs, whose every computation is
    # the single-state one — a stateless detector.
    detector_eval = Program(variables=[x, y, z], actions=[], name="DR")

    never_wrong = TransitionInvariant(
        lambda s, t, u=uncor: s["out"] == t["out"] or t["out"] == u,
        name="out never set to a corrupted value",
    )
    eventually_set = LeadsTo(
        TRUE,
        Predicate(lambda s, u=uncor: s["out"] == u, name="out=uncor"),
        name="out eventually assigned an uncorrupted input",
    )
    spec = Spec([never_wrong, eventually_set], name="SPEC_io")

    all_good = Predicate(
        lambda s, u=uncor: s["x"] == u and s["y"] == u and s["z"] == u,
        name="no input corrupted",
    )
    invariant = (
        all_good
        & Predicate(
            lambda s, u=uncor: s["out"] in (BOTTOM, u), name="out∈{⊥,uncor}"
        )
    ).rename("S_io")
    span_inputs = Predicate(
        lambda s, u=uncor: sum(1 for name in ("x", "y", "z") if s[name] != u) <= 1,
        name="≤1 input corrupted",
    )
    span = (
        span_inputs
        & Predicate(
            lambda s, u=uncor: s["out"] in (BOTTOM, u), name="out∈{⊥,uncor}"
        )
    ).rename("T_io (≤1 corrupted)")

    faults = FaultClass(
        [
            Action(
                f"corrupt_{name}",
                all_good,
                assign(**{name: corrupted}),
                reads={"x", "y", "z"}, writes={name},
            )
            for name in ("x", "y", "z")
        ],
        name="one-input-corruption",
    )

    return TmrModel(
        uncor=uncor,
        ir=ir,
        dr_ir=dr_ir,
        tmr=tmr,
        cr=cr,
        detector_eval=detector_eval,
        spec=spec,
        witness_dr=witness_dr,
        detection_dr=detection_dr,
        witness_cr=witness_cr,
        invariant=invariant,
        span=span,
        span_inputs=span_inputs,
        faults=faults,
    )
