"""Section 6.1: triple modular redundancy by detector + corrector.

The input-output problem: three inputs ``x, y, z`` and one output
``out``.  In the absence of faults all inputs equal the uncorrupted
value; a fault may corrupt *one* input.  ``SPEC_io`` requires the output
to be assigned the value of an uncorrupted input (safety: ``out`` is
never set to a corrupted value; liveness: ``out`` is eventually set).

The paper derives the TMR system constructively:

- **IR** (fault-intolerant): ``out = ⊥ --> out := x``.
- **DR** (detector): detection predicate ``x = uncor``, witness
  predicate ``x = y ∨ x = z``.  The fail-safe program is the sequential
  composition ``DR ; IR`` — ``IR`` restricted to run only under the
  witness.
- **CR** (corrector): correction/witness predicate ``out = uncor``; two
  actions copy ``y`` (resp. ``z``) into the output when they are
  majority-confirmed.
- **TMR = DR;IR ‖ CR** is masking tolerant — and is exactly the
  classical triple-modular-redundancy voter, obtained by composition.

Modelling choices: the uncorrupted value is the ``build`` parameter
``uncor`` (the paper's ghost constant); the fault may corrupt any one
input, and "at most one corruption" is enforced by guarding each fault
action on all inputs being currently uncorrupted.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable

from ..core import (
    BOTTOM,
    Action,
    FaultClass,
    LeadsTo,
    Predicate,
    Program,
    ReplicaSymmetry,
    Spec,
    TRUE,
    TransitionInvariant,
    Variable,
    assign,
)

__all__ = ["TmrModel", "NmrModel", "build", "build_nmr"]


@dataclass(frozen=True)
class TmrModel:
    """All artifacts of the Section 6.1 construction."""

    uncor: Hashable
    ir: Program                #: fault-intolerant IR
    dr_ir: Program             #: fail-safe DR ; IR
    tmr: Program               #: masking DR ; IR ‖ CR
    cr: Program                #: the corrector component alone
    detector_eval: Program     #: the action-free program that evaluates DR's witness
    spec: Spec                 #: SPEC_io
    witness_dr: Predicate      #: x = y ∨ x = z
    detection_dr: Predicate    #: x = uncor
    witness_cr: Predicate      #: out = uncor
    invariant: Predicate       #: S — no input corrupted
    span: Predicate            #: T — at most one input corrupted
    span_inputs: Predicate     #: T over the inputs only (for the stateless detector)
    faults: FaultClass         #: corrupt one input


def build(uncor: Hashable = 1, corrupted: Hashable = 0) -> TmrModel:
    """Construct the TMR family with ``uncor`` as the good input value
    and ``corrupted`` as the value a fault writes."""
    if uncor == corrupted:
        raise ValueError("corrupted value must differ from the uncorrupted one")
    domain = [uncor, corrupted]
    x = Variable("x", domain)
    y = Variable("y", domain)
    z = Variable("z", domain)
    out = Variable("out", [BOTTOM, *domain])

    unset = Predicate(lambda s: s["out"] is BOTTOM, name="out=⊥")
    witness_dr = Predicate(
        lambda s: s["x"] == s["y"] or s["x"] == s["z"], name="x=y ∨ x=z"
    )
    detection_dr = Predicate(lambda s, u=uncor: s["x"] == u, name="x=uncor")
    witness_cr = Predicate(lambda s, u=uncor: s["out"] == u, name="out=uncor")

    ir = Program(
        variables=[x, y, z, out],
        actions=[Action("IR1", unset, assign(out=lambda s: s["x"]),
                        reads={"out", "x"}, writes={"out"})],
        name="IR",
    )

    # DR ; IR — the detector restricts IR to its witness predicate.
    dr_ir = ir.restrict(witness_dr, name="DR;IR")

    cr = Program(
        variables=[x, y, z, out],
        actions=[
            Action(
                "CR1",
                unset & Predicate(
                    lambda s: s["y"] == s["z"] or s["y"] == s["x"],
                    name="y=z ∨ y=x",
                ),
                assign(out=lambda s: s["y"]),
                reads={"out", "x", "y", "z"}, writes={"out"},
            ),
            Action(
                "CR2",
                unset & Predicate(
                    lambda s: s["z"] == s["x"] or s["z"] == s["y"],
                    name="z=x ∨ z=y",
                ),
                assign(out=lambda s: s["z"]),
                reads={"out", "x", "y", "z"}, writes={"out"},
            ),
        ],
        name="CR",
    )

    tmr = dr_ir.parallel(cr, name="DR;IR ‖ CR")
    # The composed voter is symmetric under every permutation of the
    # three inputs: swapping x and y maps IR1's guarded command to CR1's
    # and fixes CR2 (and so on for the other transpositions), so the
    # *action set* is closed under S_3 even though no single action is.
    # The components are not — IR reads only x, DR;IR's witness is
    # x-centric — which is why only the composition declares the group.
    tmr = tmr.with_symmetry(
        ReplicaSymmetry(
            (("x",), ("y",), ("z",)), name="S_3 over {x,y,z}",
            action_orbits=[("IR1", "CR1", "CR2")],
        )
    )

    # the paper's "program that merely evaluates the state predicate":
    # an action-free program over the inputs, whose every computation is
    # the single-state one — a stateless detector.
    detector_eval = Program(variables=[x, y, z], actions=[], name="DR")

    never_wrong = TransitionInvariant(
        lambda s, t, u=uncor: s["out"] == t["out"] or t["out"] == u,
        name="out never set to a corrupted value",
    )
    eventually_set = LeadsTo(
        TRUE,
        Predicate(lambda s, u=uncor: s["out"] == u, name="out=uncor"),
        name="out eventually assigned an uncorrupted input",
    )
    spec = Spec([never_wrong, eventually_set], name="SPEC_io")

    all_good = Predicate(
        lambda s, u=uncor: s["x"] == u and s["y"] == u and s["z"] == u,
        name="no input corrupted",
    )
    invariant = (
        all_good
        & Predicate(
            lambda s, u=uncor: s["out"] in (BOTTOM, u), name="out∈{⊥,uncor}"
        )
    ).rename("S_io")
    span_inputs = Predicate(
        lambda s, u=uncor: sum(1 for name in ("x", "y", "z") if s[name] != u) <= 1,
        name="≤1 input corrupted",
    )
    span = (
        span_inputs
        & Predicate(
            lambda s, u=uncor: s["out"] in (BOTTOM, u), name="out∈{⊥,uncor}"
        )
    ).rename("T_io (≤1 corrupted)")

    faults = FaultClass(
        [
            Action(
                f"corrupt_{name}",
                all_good,
                assign(**{name: corrupted}),
                reads={"x", "y", "z"}, writes={name},
            )
            for name in ("x", "y", "z")
        ],
        name="one-input-corruption",
    )

    return TmrModel(
        uncor=uncor,
        ir=ir,
        dr_ir=dr_ir,
        tmr=tmr,
        cr=cr,
        detector_eval=detector_eval,
        spec=spec,
        witness_dr=witness_dr,
        detection_dr=detection_dr,
        witness_cr=witness_cr,
        invariant=invariant,
        span=span,
        span_inputs=span_inputs,
        faults=faults,
    )


@dataclass(frozen=True)
class NmrModel:
    """Artifacts of the N-modular-redundancy generalization."""

    uncor: Hashable
    replicas: int
    max_faults: int            #: f = (n-1)//2
    nmr: Program               #: the n-way voter (S_n-symmetric)
    spec: Spec
    invariant: Predicate       #: no input corrupted, out ∈ {⊥, uncor}
    span: Predicate            #: ≤ f inputs corrupted, out ∈ {⊥, uncor}
    faults: FaultClass         #: corrupt an input while < f are corrupted


def build_nmr(
    replicas: int = 5, uncor: Hashable = 1, corrupted: Hashable = 0
) -> NmrModel:
    """The n-way majority voter: TMR's construction scaled to ``n``
    replicas tolerating ``f = (n-1)//2`` corruptions.

    One vote action per replica copies its value to the output when at
    least ``f+1`` replicas agree with it — with ≤ f corruptions the
    uncorrupted value always has such a quorum and a corrupted one never
    does, so the voter is masking tolerant by the same argument as TMR.
    The replicas are fully interchangeable (every action/fault/predicate
    is a function of the multiset of input values), so the program
    declares the full symmetric group: the quotient identifies input
    vectors with equal corruption *counts*, collapsing the
    ``sum(C(n,j), j ≤ f)`` reachable input vectors to ``f+1`` orbits.
    """
    if replicas < 3 or replicas % 2 == 0:
        raise ValueError("NMR needs an odd number of replicas ≥ 3")
    if uncor == corrupted:
        raise ValueError("corrupted value must differ from the uncorrupted one")
    n = replicas
    quorum = (n - 1) // 2 + 1       # f + 1, a strict majority
    max_faults = n - quorum          # = f
    names = tuple(f"x{i}" for i in range(n))
    domain = [uncor, corrupted]
    variables = [Variable(name, domain) for name in names]
    out = Variable("out", [BOTTOM, *domain])

    unset = Predicate(lambda s: s["out"] is BOTTOM, name="out=⊥")
    actions = [
        Action(
            f"VOTE{i}",
            unset & Predicate(
                lambda s, i=i, ns=names, q=quorum:
                    sum(1 for name in ns if s[name] == s[f"x{i}"]) >= q,
                name=f"x{i} has a quorum",
            ),
            assign(out=lambda s, i=i: s[f"x{i}"]),
            reads={"out", *names}, writes={"out"},
        )
        for i in range(n)
    ]
    nmr = Program(
        [*variables, out],
        actions,
        name=f"NMR(n={n})",
        symmetry=ReplicaSymmetry(
            tuple((name,) for name in names), name=f"S_{n} over inputs",
            action_orbits=[tuple(f"VOTE{i}" for i in range(n))],
        ),
    )

    spec = Spec(
        [
            TransitionInvariant(
                lambda s, t, u=uncor: s["out"] == t["out"] or t["out"] == u,
                name="out never set to a corrupted value",
            ),
            LeadsTo(
                TRUE,
                Predicate(lambda s, u=uncor: s["out"] == u, name="out=uncor"),
                name="out eventually assigned an uncorrupted input",
            ),
        ],
        name=f"SPEC_io(n={n})",
    )

    out_ok = Predicate(
        lambda s, u=uncor: s["out"] in (BOTTOM, u), name="out∈{⊥,uncor}"
    )
    invariant = (
        Predicate(
            lambda s, u=uncor, ns=names: all(s[name] == u for name in ns),
            name="no input corrupted",
        )
        & out_ok
    ).rename(f"S_io(n={n})")
    span = (
        Predicate(
            lambda s, u=uncor, ns=names, f=max_faults:
                sum(1 for name in ns if s[name] != u) <= f,
            name=f"≤{max_faults} inputs corrupted",
        )
        & out_ok
    ).rename(f"T_io(n={n})")

    faults = FaultClass(
        [
            Action(
                f"corrupt_{name}",
                Predicate(
                    lambda s, u=uncor, ns=names, f=max_faults:
                        sum(1 for other in ns if s[other] != u) < f,
                    name=f"<{max_faults} corrupted",
                ),
                assign(**{name: corrupted}),
                reads=set(names), writes={name},
            )
            for name in names
        ],
        name=f"≤{max_faults}-input-corruption",
    )

    return NmrModel(
        uncor=uncor,
        replicas=n,
        max_faults=max_faults,
        nmr=nmr,
        spec=spec,
        invariant=invariant,
        span=span,
        faults=faults,
    )
