"""Worked example programs from the paper and its application catalogue.

Each module builds one program family with its specification, invariant
and fault-span predicates, and fault classes, returning a frozen "model"
dataclass so that tests, benchmarks, and examples share a single source
of truth for every construction in the paper.

:func:`program_modules` enumerates the scenario modules in this package
so the lint catalogue (:mod:`repro.analysis.catalogue`) can *prove* its
self-lint covers every bundled scenario — a module added here without a
lint entry (or an explicit exemption) fails ``repro lint --all`` in CI
instead of silently skipping the pre-flight.
"""

from __future__ import annotations

import pkgutil
from typing import Tuple

__all__ = ["program_modules"]


def program_modules() -> Tuple[str, ...]:
    """The scenario module names bundled in this package, sorted."""
    return tuple(sorted(
        module.name
        for module in pkgutil.iter_modules(__path__)
        if not module.ispkg
    ))
