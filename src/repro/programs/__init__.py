"""Worked example programs from the paper and its application catalogue.

Each module builds one program family with its specification, invariant
and fault-span predicates, and fault classes, returning a frozen "model"
dataclass so that tests, benchmarks, and examples share a single source
of truth for every construction in the paper.
"""
