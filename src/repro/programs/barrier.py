"""Barrier computation with a flag-repair corrector.

The first entry in the paper's application list (Section 1).  ``n``
processes repeatedly synchronize at a barrier:

- each process *arrives* (sets its program counter to ``arrived`` and
  raises its arrival flag);
- when every flag is up, the barrier *releases*: the round number flips
  and everyone goes back to ``working``.

The specification: (safety) the round advances only when every process
has actually arrived — no process is released while another is still
working; (liveness) rounds keep advancing.

The fault *loses an arrival flag* (the classic lost-notification
omission: the process has arrived, but its announcement is gone).  The
intolerant barrier then blocks forever — fail-safe, exactly like the
paper's ``pf``.  The tolerant barrier adds a **detector–corrector
pair** per process: the detection predicate is the local inconsistency
"arrived but flag down", and the corrector re-announces.  Re-announcing
is safe because the flag is only ever raised for a genuinely arrived
process, so the composed system is **masking** tolerant.

The witness invariant that makes the safety argument go through is
``a_i ⇒ pc_i = arrived`` — the flags never overclaim — which is closed
under the program *and* the fault (losing a flag cannot create an
overclaim).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..core import (
    Action,
    FaultClass,
    LeadsTo,
    Predicate,
    Program,
    Spec,
    TransitionInvariant,
    Variable,
    assign,
)

__all__ = ["BarrierModel", "build"]

WORKING = "working"
ARRIVED = "arrived"


@dataclass(frozen=True)
class BarrierModel:
    """All artifacts of the barrier application."""

    size: int
    intolerant: Program    #: barrier without the re-announce corrector
    tolerant: Program      #: with it
    spec: Spec
    invariant: Predicate   #: flags truthful, and flags mirror arrival
    span: Predicate        #: flags truthful (a flag may be lost)
    faults: FaultClass     #: arrival-flag loss


def build(size: int = 3) -> BarrierModel:
    """Construct the barrier family for ``size`` processes."""
    if size < 2:
        raise ValueError("need at least two processes")
    variables: List[Variable] = [Variable("round", [0, 1])]
    for i in range(size):
        variables.append(Variable(f"pc{i}", [WORKING, ARRIVED]))
        variables.append(Variable(f"a{i}", [False, True]))

    def all_flags(state) -> bool:
        return all(state[f"a{i}"] for i in range(size))

    def all_arrived(state) -> bool:
        return all(state[f"pc{i}"] == ARRIVED for i in range(size))

    actions: List[Action] = []
    for i in range(size):
        actions.append(
            Action(
                f"arrive{i}",
                Predicate(lambda s, i=i: s[f"pc{i}"] == WORKING,
                          name=f"pc{i}=working"),
                assign(**{f"pc{i}": ARRIVED, f"a{i}": True}),
                reads={f"pc{i}"}, writes={f"pc{i}", f"a{i}"},
            )
        )
    release_updates = {"round": lambda s: 1 - s["round"]}
    for i in range(size):
        release_updates[f"pc{i}"] = WORKING
        release_updates[f"a{i}"] = False
    actions.append(
        Action(
            "release",
            Predicate(all_flags, name="all flags up"),
            assign(**release_updates),
            reads={"round"} | {f"a{i}" for i in range(size)},
            writes={"round"}
            | {f"pc{i}" for i in range(size)}
            | {f"a{i}" for i in range(size)},
        )
    )
    intolerant = Program(variables, actions, name=f"barrier(n={size})")

    correctors = [
        Action(
            f"re_announce{i}",
            Predicate(
                lambda s, i=i: s[f"pc{i}"] == ARRIVED and not s[f"a{i}"],
                name=f"arrived{i} ∧ ¬a{i}",
            ),
            assign(**{f"a{i}": True}),
            reads={f"pc{i}", f"a{i}"}, writes={f"a{i}"},
        )
        for i in range(size)
    ]
    tolerant = Program(
        variables, actions + correctors, name=f"barrier+corrector(n={size})"
    )

    never_early_release = TransitionInvariant(
        lambda s, t, arrived=all_arrived: (
            s["round"] == t["round"] or arrived(s)
        ),
        name="release only when everyone arrived",
    )
    spec = Spec(
        [never_early_release]
        + [
            LeadsTo(
                Predicate(lambda s, r=r: s["round"] == r, name=f"round={r}"),
                Predicate(lambda s, r=r: s["round"] != r, name=f"round≠{r}"),
                name=f"round {r} eventually completes",
            )
            for r in (0, 1)
        ],
        name="SPEC_barrier",
    )

    truthful = Predicate(
        lambda s, n=size: all(
            (not s[f"a{i}"]) or s[f"pc{i}"] == ARRIVED for i in range(n)
        ),
        name="flags truthful",
    )
    mirrored = Predicate(
        lambda s, n=size: all(
            s[f"a{i}"] == (s[f"pc{i}"] == ARRIVED) for i in range(n)
        ),
        name="flags mirror arrival",
    )
    invariant = (truthful & mirrored).rename("S_barrier")
    span = truthful.rename("T_barrier")

    faults = FaultClass(
        [
            Action(
                f"lose_flag{i}",
                Predicate(lambda s, i=i: s[f"a{i}"], name=f"a{i}"),
                assign(**{f"a{i}": False}),
                reads={f"a{i}"}, writes={f"a{i}"},
            )
            for i in range(size)
        ],
        name="arrival-flag loss",
    )

    return BarrierModel(
        size=size,
        intolerant=intolerant,
        tolerant=tolerant,
        spec=spec,
        invariant=invariant,
        span=span,
        faults=faults,
    )
