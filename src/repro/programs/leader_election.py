"""Leader election with a re-election corrector.

Another application from the paper's catalogue.  ``n`` processes with
distinct identifiers are arranged in a line; each holds a candidate
leader ``ldr{i}``.  The election rule is max-propagation: a process
adopts the largest identifier among its own id and its neighbours'
candidates.  The legitimate states have every candidate equal to the
maximum identifier.

A transient fault corrupts candidate variables to arbitrary (existing)
identifiers.  The program as a whole is a **corrector of its own
invariant** — max-propagation is monotone toward the true maximum and
converges from *any* state, so the system is nonmasking tolerant with
fault-span ``true`` (self-stabilizing leader election).

The detector flavour is also present: the predicate "my candidate is at
least as large as my neighbours'" is each action's guard complement —
an action fires exactly when local inconsistency is *detected*.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from ..core import (
    Action,
    FaultClass,
    LeadsTo,
    Predicate,
    Program,
    Spec,
    TRUE,
    Variable,
    assign,
    perturb_variable,
)

__all__ = ["LeaderElectionModel", "build"]


@dataclass(frozen=True)
class LeaderElectionModel:
    """All artifacts of the leader-election application."""

    ids: Tuple[int, ...]
    program: Program
    spec: Spec
    invariant: Predicate     #: every candidate equals max(ids)
    faults: FaultClass       #: transient candidate corruption


def build(ids: Sequence[int] = (3, 1, 2)) -> LeaderElectionModel:
    """Construct the leader-election family for processes with the given
    distinct identifiers (line topology, in the given order)."""
    ids = tuple(ids)
    if len(set(ids)) != len(ids):
        raise ValueError("identifiers must be distinct")
    if len(ids) < 2:
        raise ValueError("need at least two processes")
    size = len(ids)
    leader = max(ids)
    domain = sorted(ids)

    variables = [Variable(f"ldr{i}", domain) for i in range(size)]

    def local_max(state, i: int) -> int:
        candidates = [ids[i], state[f"ldr{i}"]]
        if i > 0:
            candidates.append(state[f"ldr{i - 1}"])
        if i < size - 1:
            candidates.append(state[f"ldr{i + 1}"])
        return max(candidates)

    actions: List[Action] = []
    for i in range(size):
        neighbourhood = {
            f"ldr{j}" for j in (i - 1, i, i + 1) if 0 <= j < size
        }
        actions.append(
            Action(
                f"elect{i}",
                Predicate(
                    lambda s, i=i: s[f"ldr{i}"] < local_max(s, i),
                    name=f"ldr{i} below local max",
                ),
                assign(**{f"ldr{i}": lambda s, i=i: local_max(s, i)}),
                reads=neighbourhood, writes={f"ldr{i}"},
            )
        )
    program = Program(variables, actions, name=f"leader_election({ids})")

    elected = Predicate(
        lambda s, n=size, m=leader: all(s[f"ldr{i}"] == m for i in range(n)),
        name="everyone elects the maximum id",
    )
    spec = Spec(
        [LeadsTo(TRUE, elected, name="a unique leader is eventually elected")],
        name="SPEC_elect",
    )

    faults = FaultClass(
        [
            action
            for i in range(size)
            for action in perturb_variable(program.variable(f"ldr{i}"))
        ],
        name="transient candidate corruption",
    )

    return LeaderElectionModel(
        ids=ids,
        program=program,
        spec=spec,
        invariant=elected.rename("S_elect"),
        faults=faults,
    )
