"""The paper's running example: memory access (Sections 3.3, 4.3, 5.1).

A program obtains the value stored at a fixed address in memory.  The
fault-class is a *page fault* that removes the address (and its value)
from memory.  The paper builds three tolerant versions of the intolerant
program ``p``:

- ``pf`` (Figure 1) — **fail-safe**: a detector action sets the witness
  ``Z1`` once the address is observed in memory, and the access is
  restricted to execute only under ``Z1``.  Under a page fault the
  program may block, but it never assigns wrong data.
- ``pn`` (Figure 2) — **nonmasking**: a corrector action re-adds the
  missing entry (from the backing store).  Under a page fault the program
  may transiently assign wrong data, but eventually assigns the correct
  value.
- ``pm`` (Figure 3) — **masking**: corrector + detector.  Under a page
  fault the program neither assigns wrong data nor blocks forever.

Modelling choices (documented per DESIGN.md):

- ``MEM`` restricted to the single address is a variable ``mem`` whose
  value is the stored value or ``⊥`` (absent).  The backing store's
  correct value is the module parameter ``value`` (default 1), so
  ``mem ∈ {⊥, value}`` — the page fault removes the entry and the
  corrector restores the *correct* value, exactly the paper's
  ``MEM := MEM ∪ {⟨addr,-⟩}``.
- ``data ∈ {⊥} ∪ data_domain`` with ``data_domain`` ⊋ {value}, so a read
  of an absent entry can return an *arbitrary* (possibly wrong) value,
  matching the paper's semantics of reading a missing address.
- ``SPEC_mem`` is transition-level safety — *data is never set to an
  incorrect value* (a step may only change ``data`` to ``value``) — plus
  liveness — *data is eventually set to the correct value*.
- The page fault is guarded by ``¬Z1`` in the programs that have the
  witness variable: the paper introduces it as a fault whereby the entry
  is "initially removed", and the fault-span ``T = U1 = (Z1 ⇒ X1)`` is
  only closed under the fault when the fault cannot strike after the
  witness is set.  For ``p`` and ``pn`` (no witness variable) the fault
  may strike at any time.

The predicates follow the paper's figures: ``X1`` (detection predicate:
the address is currently in memory), ``Z1`` (witness), ``U1 = Z1 ⇒ X1``
(the fault-span), ``S = U1 ∧ X1`` (the invariant).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Sequence, Tuple

from ..core import (
    BOTTOM,
    Action,
    FaultClass,
    LeadsTo,
    Predicate,
    Program,
    Spec,
    TRUE,
    TransitionInvariant,
    Variable,
    assign,
)

__all__ = ["MemoryAccessModel", "build"]


@dataclass(frozen=True)
class MemoryAccessModel:
    """All artifacts of the memory-access example, bundled.

    Attributes mirror the paper's names: programs ``p``/``pf``/``pn``/
    ``pm``; predicates ``X1``/``Z1``/``U1``; invariants and spans per
    program; the fault classes; and ``spec`` (``SPEC_mem``).
    """

    value: Hashable
    p: Program
    pf: Program
    pn: Program
    pm: Program
    spec: Spec
    X1: Predicate
    Z1: Predicate
    U1: Predicate
    S_p: Predicate
    S_pf: Predicate
    S_pn: Predicate
    S_pm: Predicate
    T_pf: Predicate
    T_pn: Predicate
    T_pm: Predicate
    fault_anytime: FaultClass
    fault_before_witness: FaultClass


def _read_statement(value_if_absent_domain: Sequence[Hashable]):
    """The paper's ``data := (val | ⟨addr,val⟩ ∈ MEM)``: deterministic
    when the entry is present, an arbitrary domain value when absent."""

    def statement(state):
        if state["mem"] is not BOTTOM:
            return state.assign(data=state["mem"])
        return state.assign_each("data", value_if_absent_domain)

    return statement


def build(
    value: Hashable = 1,
    data_domain: Sequence[Hashable] = (0, 1),
) -> MemoryAccessModel:
    """Construct the memory-access program family.

    Parameters
    ----------
    value:
        The correct value stored at the address (must be in
        ``data_domain``).
    data_domain:
        The values a read may return; must contain at least one wrong
        value for the fault to be observable.
    """
    if value not in data_domain:
        raise ValueError(f"value {value!r} must be inside data_domain")

    mem = Variable("mem", [BOTTOM, value])
    data = Variable("data", [BOTTOM, *data_domain])
    z1 = Variable("Z1", [False, True])

    x1 = Predicate(lambda s: s["mem"] is not BOTTOM, name="X1")
    z1_pred = Predicate(lambda s: s["Z1"], name="Z1")
    u1 = Predicate(
        lambda s: (not s["Z1"]) or s["mem"] is not BOTTOM, name="U1"
    )
    read = _read_statement(data_domain)

    # -- the intolerant program p (Section 3.3) ---------------------------------
    # the read actions neither consult nor keep ``data`` (it is
    # overwritten wholesale), so declaring the frame lets the action
    # collapse successor computation across all ``data`` values
    p = Program(
        variables=[mem, data],
        actions=[
            Action("p1", TRUE, read, reads={"mem"}, writes={"data"})
        ],
        name="p",
    )

    # -- fail-safe pf (Figure 1) -------------------------------------------------
    pf = Program(
        variables=[mem, data, z1],
        actions=[
            Action(
                "pf1",
                x1 & Predicate(lambda s: not s["Z1"], name="¬Z1"),
                assign(Z1=True),
                reads={"mem", "Z1"}, writes={"Z1"},
            ),
            Action(
                "pf2", z1_pred, read,
                reads={"mem", "Z1"}, writes={"data"},
            ),
        ],
        name="pf",
    )

    # -- nonmasking pn (Figure 2) -------------------------------------------------
    pn = Program(
        variables=[mem, data],
        actions=[
            Action("pn1", ~x1, assign(mem=value),
                   reads={"mem"}, writes={"mem"}),
            Action("pn2", TRUE, read, reads={"mem"}, writes={"data"}),
        ],
        name="pn",
    )

    # -- masking pm (Figure 3) ---------------------------------------------------
    pm = Program(
        variables=[mem, data, z1],
        actions=[
            Action("pm1", ~x1, assign(mem=value),
                   reads={"mem"}, writes={"mem"}),
            Action(
                "pm2",
                x1 & Predicate(lambda s: not s["Z1"], name="¬Z1"),
                assign(Z1=True),
                reads={"mem", "Z1"}, writes={"Z1"},
            ),
            Action(
                "pm3", z1_pred, read,
                reads={"mem", "Z1"}, writes={"data"},
            ),
        ],
        name="pm",
    )

    # -- SPEC_mem ------------------------------------------------------------------
    never_wrong = TransitionInvariant(
        lambda s, t, v=value: s["data"] == t["data"] or t["data"] == v,
        name="data never set incorrectly",
    )
    eventually_correct = LeadsTo(
        TRUE,
        Predicate(lambda s, v=value: s["data"] == v, name="data=val"),
        name="data eventually set to val",
    )
    spec = Spec([never_wrong, eventually_correct], name="SPEC_mem")

    # -- faults ---------------------------------------------------------------------
    fault_anytime = FaultClass(
        [
            Action(
                "page_fault",
                x1,
                assign(mem=BOTTOM),
                reads={"mem"}, writes={"mem"},
            )
        ],
        name="page-fault",
    )
    fault_before_witness = FaultClass(
        [
            Action(
                "page_fault",
                x1 & Predicate(lambda s: not s["Z1"], name="¬Z1"),
                assign(mem=BOTTOM),
                reads={"mem", "Z1"}, writes={"mem"},
            )
        ],
        name="page-fault(¬Z1)",
    )

    return MemoryAccessModel(
        value=value,
        p=p,
        pf=pf,
        pn=pn,
        pm=pm,
        spec=spec,
        X1=x1,
        Z1=z1_pred,
        U1=u1,
        S_p=x1.rename("S_p"),
        S_pf=(u1 & x1).rename("S_pf"),
        S_pn=x1.rename("S_pn"),
        S_pm=(u1 & x1).rename("S_pm"),
        T_pf=u1.rename("T_pf"),
        T_pn=TRUE.rename("T_pn"),
        T_pm=u1.rename("T_pm"),
        fault_anytime=fault_anytime,
        fault_before_witness=fault_before_witness,
    )
