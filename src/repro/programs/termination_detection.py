"""Termination detection — a pure detector application.

Termination detection is the canonical example of a *detector* whose
detection predicate is a global, stable property: "every process is
idle".  The paper's introduction lists it among the applications of the
component-based design method; here we build a small scan-based
detector and verify it against the ``Z detects X`` specification.

The underlying computation: ``n`` processes, each ``active`` or idle.
An active process may *activate* another process (spawn work) or
*deactivate* itself.  Since only active processes activate others,
termination ("all idle") is stable — exactly the closed detection
predicate of the Chandy–Misra style detects relation the paper's remark
mentions.

The detector: a scanner sweeps the processes with a cursor ``idx``.  Any
activation raises a global ``dirty`` bit; the scanner restarts (and
clears ``dirty``) whenever it sees an active process or the dirty bit,
advances past idle processes otherwise, and claims termination (witness
``done``) only after a complete clean sweep.  The ``dirty`` bit is what
makes the claim sound: without it, a process behind the cursor could be
re-activated by one ahead of it and the scanner would wrongly report
termination — the test suite demonstrates this classic bug on the
``unsound`` variant.

Faults: a *spurious activation* perturbs an idle process to active
without raising ``dirty`` (e.g. a duplicated message).  The sound
detector is **not** tolerant to it — its Safeness can be violated —
which the model checker exhibits; this mirrors the paper's point that
tolerance is always relative to a fault-class.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..core import (
    Action,
    FaultClass,
    Predicate,
    Program,
    Spec,
    Variable,
    assign,
    detects_spec,
)

__all__ = ["TerminationModel", "build"]


@dataclass(frozen=True)
class TerminationModel:
    """All artifacts of the termination-detection application."""

    size: int
    detector: Program        #: computation ‖ sound scanner
    unsound: Program         #: computation ‖ scanner without the dirty bit
    terminated: Predicate    #: X — every process idle
    done: Predicate          #: Z — the scanner's claim
    from_: Predicate         #: U — scanner bookkeeping is consistent
    spec: Spec               #: 'done detects terminated'
    faults: FaultClass       #: spurious activation


def build(size: int = 3) -> TerminationModel:
    """Construct the termination-detection family for ``size``
    processes."""
    if size < 2:
        raise ValueError("need at least two processes")
    variables = [Variable(f"active{i}", [False, True]) for i in range(size)]
    variables += [
        Variable("idx", list(range(size + 1))),
        Variable("dirty", [False, True]),
        Variable("done", [False, True]),
    ]

    computation: List[Action] = []
    for i in range(size):
        computation.append(
            Action(
                f"deactivate{i}",
                Predicate(lambda s, i=i: s[f"active{i}"], name=f"active{i}"),
                assign(**{f"active{i}": False}),
                reads={f"active{i}"}, writes={f"active{i}"},
            )
        )
        for j in range(size):
            if j == i:
                continue
            computation.append(
                Action(
                    f"activate{i}_{j}",
                    Predicate(
                        lambda s, i=i, j=j: s[f"active{i}"]
                        and not s[f"active{j}"],
                        name=f"active{i} ∧ ¬active{j}",
                    ),
                    assign(**{f"active{j}": True, "dirty": True}),
                    reads={f"active{i}", f"active{j}"},
                    writes={f"active{j}", "dirty"},
                )
            )

    def scanner(sound: bool) -> List[Action]:
        at_cursor_active = Predicate(
            lambda s, n=size: s["idx"] < n and s[f"active{s['idx']}"],
            name="active at cursor",
        )
        dirty = Predicate(lambda s: s["dirty"], name="dirty")
        restart_trigger = (
            (at_cursor_active | dirty) if sound else at_cursor_active
        )
        suffix = "" if sound else "_unsound"
        # the cursor actions read active{idx} — which active variable
        # depends on idx, so the read frame covers all of them
        cursor_reads = frozenset(
            {"idx", "dirty"} | {f"active{i}" for i in range(size)}
        )
        actions = [
            Action(
                f"scan_advance{suffix}",
                Predicate(
                    lambda s, n=size, sound=sound: (
                        s["idx"] < n
                        and not s[f"active{s['idx']}"]
                        and not (sound and s["dirty"])
                    ),
                    name="idle at cursor",
                ),
                assign(idx=lambda s: s["idx"] + 1),
                reads=cursor_reads, writes={"idx"},
            ),
            Action(
                f"scan_restart{suffix}",
                restart_trigger
                & Predicate(
                    lambda s: s["idx"] > 0 or s["dirty"], name="progress to undo"
                ),
                assign(idx=0, dirty=False),
                reads=cursor_reads, writes={"idx", "dirty"},
            ),
            Action(
                f"scan_report{suffix}",
                Predicate(
                    lambda s, n=size, sound=sound: (
                        s["idx"] == n
                        and not s["done"]
                        and not (sound and s["dirty"])
                    ),
                    name="clean sweep complete",
                ),
                assign(done=True),
                reads={"idx", "dirty", "done"}, writes={"done"},
            ),
        ]
        return actions

    detector = Program(
        variables, computation + scanner(sound=True),
        name=f"termination_detector(n={size})",
    )
    unsound = Program(
        variables, computation + scanner(sound=False),
        name=f"termination_detector_unsound(n={size})",
    )

    terminated = Predicate(
        lambda s, n=size: not any(s[f"active{i}"] for i in range(n)),
        name="terminated",
    )
    done = Predicate(lambda s: s["done"], name="done")

    def consistent(state) -> bool:
        # everything the cursor has passed was idle, unless an
        # activation has been flagged since the sweep began
        if state["dirty"]:
            prefix_clean = True
        else:
            prefix_clean = all(
                not state[f"active{i}"] for i in range(state["idx"])
            )
        claim_ok = (not state["done"]) or terminated(state)
        return prefix_clean and claim_ok

    from_ = Predicate(consistent, name="U_td")

    return TerminationModel(
        size=size,
        detector=detector,
        unsound=unsound,
        terminated=terminated,
        done=done,
        from_=from_,
        spec=detects_spec(done, terminated),
        faults=FaultClass(
            [
                Action(
                    f"spurious{i}",
                    Predicate(
                        lambda s, i=i: not s[f"active{i}"], name=f"¬active{i}"
                    ),
                    assign(**{f"active{i}": True}),
                    reads={f"active{i}"}, writes={f"active{i}"},
                )
                for i in range(size)
            ],
            name="spurious activation",
        ),
    )
