"""Token-based mutual exclusion with a token-regeneration corrector.

One of the applications the paper's introduction credits to the
detector/corrector design method.  ``n`` processes circulate a token;
a process holding the token enters its critical section once, leaves,
and passes the token on — so at most one process is ever inside (the
safety half of mutual exclusion), and every process keeps re-acquiring
the token (the liveness half).

The fault *loses* the token in transit (it can only strike while the
holder is outside its critical section — a token being used is not "in
transit").  The corrector detects global token absence and regenerates
the token at process 0.  Because the regeneration guard is exactly "no
token exists", the corrector can never create a second token, so safety
survives the fault too: the composed system is **masking** tolerant to
token loss, while the intolerant ring is merely **fail-safe** tolerant
(it blocks forever once the token is lost but never violates
exclusion).

Variables per process: ``tok{i}`` (token held), ``cs{i}`` (inside the
critical section), ``done{i}`` (has used the critical section during
the current token hold — reset when the token is passed on).  The
``done`` flag makes each hold a bounded receive → CS → pass cycle, so
weak fairness alone guarantees circulation (without it a process could
re-enter its critical section forever and starve the pass action).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..core import (
    Action,
    FaultClass,
    LeadsTo,
    Predicate,
    Program,
    Spec,
    StateInvariant,
    TRUE,
    Variable,
    assign,
)

__all__ = ["MutexModel", "build"]


@dataclass(frozen=True)
class MutexModel:
    """All artifacts of the mutual-exclusion application."""

    size: int
    intolerant: Program    #: token ring without regeneration
    tolerant: Program      #: with the token-regeneration corrector
    corrector: Action      #: the regeneration action itself
    spec: Spec
    invariant: Predicate   #: exactly one token; cs/done only with it
    span: Predicate        #: at most one token; cs only with it
    no_token: Predicate    #: the corrector's trigger
    faults: FaultClass     #: token loss in transit
    # -- the multitolerant variant (paper §7's multitolerance programme) --
    multitolerant: Program      #: + one-token entry detector + dedup corrector
    spec_strong: Spec           #: spec + "everyone eventually enters the CS"
    duplication: FaultClass     #: a second token materializes
    span_duplication: Predicate #: ≤2 tokens, ≤1 CS, cs implies token


def _token_count(state, size: int) -> int:
    return sum(1 for i in range(size) if state[f"tok{i}"])


def build(size: int = 3) -> MutexModel:
    """Construct the mutual-exclusion family for ``size`` processes."""
    if size < 2:
        raise ValueError("need at least two processes")
    variables = [
        v
        for i in range(size)
        for v in (
            Variable(f"tok{i}", [False, True]),
            Variable(f"cs{i}", [False, True]),
            Variable(f"done{i}", [False, True]),
        )
    ]

    actions: List[Action] = []
    for i in range(size):
        nxt = (i + 1) % size
        holds = Predicate(lambda s, i=i: s[f"tok{i}"], name=f"tok{i}")
        inside = Predicate(lambda s, i=i: s[f"cs{i}"], name=f"cs{i}")
        used = Predicate(lambda s, i=i: s[f"done{i}"], name=f"done{i}")
        actions.append(
            Action(
                f"enter{i}", holds & ~inside & ~used, assign(**{f"cs{i}": True}),
                reads={f"tok{i}", f"cs{i}", f"done{i}"}, writes={f"cs{i}"},
            )
        )
        actions.append(
            Action(
                f"exit{i}",
                holds & inside,
                assign(**{f"cs{i}": False, f"done{i}": True}),
                reads={f"tok{i}", f"cs{i}"},
                writes={f"cs{i}", f"done{i}"},
            )
        )
        actions.append(
            Action(
                f"pass{i}",
                holds & ~inside & used,
                assign(
                    **{f"tok{i}": False, f"done{i}": False, f"tok{nxt}": True}
                ),
                reads={f"tok{i}", f"cs{i}", f"done{i}"},
                writes={f"tok{i}", f"done{i}", f"tok{nxt}"},
            )
        )
    intolerant = Program(variables, actions, name=f"mutex(n={size})")

    no_token = Predicate(
        lambda s, n=size: _token_count(s, n) == 0, name="no token"
    )
    all_tokens = frozenset(f"tok{i}" for i in range(size))
    regenerate = Action("regenerate", no_token, assign(tok0=True),
                        reads=all_tokens, writes={"tok0"})
    tolerant = Program(
        variables, actions + [regenerate], name=f"mutex+corrector(n={size})"
    )

    exclusion = Predicate(
        lambda s, n=size: sum(1 for i in range(n) if s[f"cs{i}"]) <= 1,
        name="≤1 in critical section",
    )
    spec = Spec(
        [StateInvariant(exclusion, name="mutual exclusion")]
        + [
            LeadsTo(
                TRUE,
                Predicate(lambda s, i=i: s[f"tok{i}"], name=f"tok{i}"),
                name=f"process {i} eventually acquires the token",
            )
            for i in range(size)
        ],
        name="SPEC_mutex",
    )

    one_token = Predicate(
        lambda s, n=size: _token_count(s, n) == 1, name="exactly one token"
    )
    holder_consistent = Predicate(
        lambda s, n=size: all(
            (not s[f"cs{i}"] or s[f"tok{i}"])
            and (not s[f"done{i}"] or s[f"tok{i}"])
            for i in range(n)
        ),
        name="cs/done imply the token",
    )
    invariant = (one_token & holder_consistent).rename("S_mutex")
    at_most_one = Predicate(
        lambda s, n=size: _token_count(s, n) <= 1, name="≤1 token"
    )
    cs_needs_token = Predicate(
        lambda s, n=size: all(
            not s[f"cs{i}"] or s[f"tok{i}"] for i in range(n)
        ),
        name="CS implies token",
    )
    span = (at_most_one & cs_needs_token).rename("T_mutex")

    faults = FaultClass(
        [
            Action(
                f"lose{i}",
                Predicate(
                    lambda s, i=i: s[f"tok{i}"] and not s[f"cs{i}"],
                    name=f"tok{i} ∧ ¬cs{i}",
                ),
                assign(**{f"tok{i}": False, f"done{i}": False}),
                reads={f"tok{i}", f"cs{i}"},
                writes={f"tok{i}", f"done{i}"},
            )
            for i in range(size)
        ],
        name="token loss",
    )

    # -- the multitolerant variant ------------------------------------------
    # A second fault-class: a spurious token materializes (duplication).
    # Tolerating it needs (a) a *detector* guarding critical-section
    # entry — enter only while exactly one token exists — and (b) a
    # *dedup corrector* that removes surplus tokens (sparing a holder
    # inside its critical section).  The entry detector is what makes
    # exclusion survive the duplication; without it two holders can sit
    # in their critical sections simultaneously.
    duplication = FaultClass(
        [
            Action(
                f"duplicate{i}",
                one_token
                & Predicate(lambda s, i=i: not s[f"tok{i}"], name=f"¬tok{i}"),
                assign(**{f"tok{i}": True, f"done{i}": False}),
                reads=all_tokens, writes={f"tok{i}", f"done{i}"},
            )
            for i in range(size)
        ],
        name="token duplication",
    )

    def dedup_statement(state):
        holders = [i for i in range(size) if state[f"tok{i}"]]
        in_cs = [i for i in holders if state[f"cs{i}"]]
        keep = in_cs[0] if in_cs else min(holders)
        updates = {}
        for holder in holders:
            if holder != keep:
                updates[f"tok{holder}"] = False
                updates[f"done{holder}"] = False
        return state.assign(**updates)

    many_tokens = Predicate(
        lambda s, n=size: _token_count(s, n) >= 2, name="≥2 tokens"
    )
    some_holder_out = Predicate(
        lambda s, n=size: any(
            s[f"tok{i}"] and not s[f"cs{i}"] for i in range(n)
        ),
        name="a holder is outside its CS",
    )
    # done{keep} survives dedup untouched, so the done-variables must
    # sit in *reads* (a masked variable must be overwritten regardless
    # of its current value, which done{keep} is not)
    dedup = Action(
        "dedup", many_tokens & some_holder_out, dedup_statement,
        reads=all_tokens
        | frozenset(f"cs{i}" for i in range(size))
        | frozenset(f"done{i}" for i in range(size)),
        writes=all_tokens | frozenset(f"done{i}" for i in range(size)),
    )

    multitolerant_actions = []
    for action in actions:
        if action.name.startswith("enter"):
            multitolerant_actions.append(action.restrict(one_token))
        else:
            multitolerant_actions.append(action)
    multitolerant = Program(
        variables,
        multitolerant_actions + [regenerate.renamed("regenerate"), dedup],
        name=f"mutex+multitolerance(n={size})",
    )

    spec_strong = spec.conjoin(
        Spec(
            [
                LeadsTo(
                    TRUE,
                    Predicate(lambda s, i=i: s[f"cs{i}"], name=f"cs{i}"),
                    name=f"process {i} eventually enters its critical section",
                )
                for i in range(size)
            ],
            name="CS liveness",
        ),
        name="SPEC_mutex+",
    )

    at_most_two = Predicate(
        lambda s, n=size: _token_count(s, n) <= 2, name="≤2 tokens"
    )
    span_duplication = (
        at_most_two & cs_needs_token & exclusion
    ).rename("T_dup")

    return MutexModel(
        size=size,
        intolerant=intolerant,
        tolerant=tolerant,
        corrector=regenerate,
        spec=spec,
        invariant=invariant,
        span=span,
        no_token=no_token,
        faults=faults,
        multitolerant=multitolerant,
        spec_strong=spec_strong,
        duplication=duplication,
        span_duplication=span_duplication,
    )
