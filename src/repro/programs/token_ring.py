"""Dijkstra's K-state token ring — the paper's PVS case study [9].

Section 7 reports that the theory was used to mechanically prove
Dijkstra's self-stabilizing token ring correct in a compositional way.
Self-stabilization is exactly *nonmasking tolerance to transient state
corruption with fault-span true*: from any state whatsoever, the ring
converges to its invariant (exactly one token) and circulates the token
forever after.

The protocol (Dijkstra 1974): ``n`` processes in a ring, each holding a
counter ``x_i ∈ {0..K-1}`` with ``K ≥ n``:

- process 0 *has the token* iff ``x_0 = x_{n-1}``; its action is
  ``x_0 := (x_{n-1} + 1) mod K``;
- process ``i > 0`` *has the token* iff ``x_i ≠ x_{i-1}``; its action is
  ``x_i := x_{i-1}``.

The invariant is "exactly one process has the token"; the specification
is that invariant as a state property plus, for every process, "it
eventually holds the token" (token circulation).  The whole program is a
**corrector of its own invariant** with witness = correction predicate
(the Arora–Gouda closure-and-convergence special case the paper's
corrector remark mentions).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..core import (
    Action,
    FaultClass,
    LeadsTo,
    Plan,
    Predicate,
    Program,
    Spec,
    StateInvariant,
    TRUE,
    ValueRotation,
    Variable,
    assign,
    perturb_variable,
)

__all__ = ["TokenRingModel", "build", "has_token"]


def has_token(index: int, size: int) -> Predicate:
    """The token-holding predicate of process ``index`` in a ring of
    ``size`` processes."""
    if index == 0:
        def _builder0(schema_index, n=size):
            a, b = schema_index["x0"], schema_index[f"x{n - 1}"]
            return lambda values: values[a] == values[b]

        return Predicate(
            lambda s, n=size: s["x0"] == s[f"x{n - 1}"], name="token@0",
            values_builder=_builder0,
        )

    def _builder(schema_index, i=index):
        a, b = schema_index[f"x{i}"], schema_index[f"x{i - 1}"]
        return lambda values: values[a] != values[b]

    return Predicate(
        lambda s, i=index: s[f"x{i}"] != s[f"x{i - 1}"], name=f"token@{index}",
        values_builder=_builder,
    )


@dataclass(frozen=True)
class TokenRingModel:
    """All artifacts of the token-ring case study."""

    size: int
    k: int
    ring: Program
    spec: Spec
    invariant: Predicate          #: exactly one token
    tokens: Dict[int, Predicate]  #: per-process token predicate
    faults: FaultClass            #: transient corruption of any counter


def build(size: int = 4, k: int = None) -> TokenRingModel:
    """Construct the K-state token ring.

    ``k`` defaults to ``size``, Dijkstra's original bound.  The
    literature's refined bound — K ≥ n - 1 suffices — is what this
    builder enforces, and the ablation benchmark demonstrates both
    directions with the model checker: K = n - 1 stabilizes, K = n - 2
    admits a fair cycle that never reaches a one-token state.
    """
    if size < 2:
        raise ValueError("ring needs at least two processes")
    k = k if k is not None else size
    if k < size - 1 or k < 2:
        raise ValueError(
            "K must be at least n-1 for stabilization (ablation: smaller K "
            "yields a fair counterexample cycle)"
        )

    variables = [Variable(f"x{i}", list(range(k))) for i in range(size)]
    tokens = {i: has_token(i, size) for i in range(size)}

    actions: List[Action] = [
        Action(
            "move0",
            tokens[0],
            assign(x0=lambda s, n=size, kk=k: (s[f"x{n - 1}"] + 1) % kk),
            reads={"x0", f"x{size - 1}"}, writes={"x0"},
            plan=Plan(
                ("eq_var", "x0", f"x{size - 1}"),
                [("inc_mod", "x0", f"x{size - 1}", k)],
            ),
        )
    ]
    for i in range(1, size):
        actions.append(
            Action(
                f"move{i}",
                tokens[i],
                assign(**{f"x{i}": lambda s, i=i: s[f"x{i - 1}"]}),
                reads={f"x{i}", f"x{i - 1}"}, writes={f"x{i}"},
                plan=Plan(
                    ("ne_var", f"x{i}", f"x{i - 1}"),
                    [("copy", f"x{i}", f"x{i - 1}")],
                ),
            )
        )
    # The ring is NOT process-rotation symmetric — process 0 runs the
    # distinguished increment action (rotating processes maps move0's
    # edges to edges no action produces; lint rule DC106 flags exactly
    # that if you try).  The protocol's true symmetry is on *values*:
    # translating every counter by the same amount mod K commutes with
    # every action (x0 := x_{n-1}+1 and x_i := x_{i-1} are translation-
    # equivariant) and with every token predicate (all are (in)equality
    # comparisons between counters).  The quotient divides the space by
    # exactly K.
    symmetry = ValueRotation(tuple(f"x{i}" for i in range(size)), modulus=k)
    ring = Program(variables, actions, name=f"token_ring(n={size},K={k})",
                   symmetry=symmetry)

    def _one_token_builder(index, n=size):
        positions = tuple(index[f"x{i}"] for i in range(n))

        def holds(values, positions=positions, n=n):
            count = 1 if values[positions[0]] == values[positions[-1]] else 0
            for i in range(1, n):
                if values[positions[i]] != values[positions[i - 1]]:
                    count += 1
            return count == 1

        return holds

    one_token = Predicate(
        lambda s, ts=tokens: sum(1 for t in ts.values() if t(s)) == 1,
        name="exactly one token",
        values_builder=_one_token_builder,
    )
    spec = Spec(
        [StateInvariant(one_token, name="mutual exclusion of the token")]
        + [
            LeadsTo(TRUE, tokens[i], name=f"process {i} eventually holds the token")
            for i in range(size)
        ],
        name="SPEC_ring",
    )

    faults = FaultClass(
        [
            action
            for i in range(size)
            for action in perturb_variable(ring.variable(f"x{i}"))
        ],
        name="transient corruption",
    )

    return TokenRingModel(
        size=size,
        k=k,
        ring=ring,
        spec=spec,
        invariant=one_token.rename("S_ring"),
        tokens=tokens,
        faults=faults,
    )
