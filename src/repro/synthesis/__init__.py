"""Synthesis of fault-tolerance by adding detectors and correctors.

This package answers the paper's Question 2 constructively, following
the companion design method (Arora & Kulkarni, "Component based design
of multitolerance", IEEE TSE 1998): given a fault-intolerant program, a
specification, and a fault-class, *calculate* the components required
for each tolerance class and compose them in:

- :func:`add_failsafe` restricts every action to a detection predicate
  strong enough that no (program or fault) continuation can violate the
  safety specification — adding detectors;
- :func:`add_nonmasking` adds corrector actions that converge the
  program from its fault-span back to its invariant — adding correctors;
- :func:`add_masking` composes the two: detectors keep the perturbed
  program safe while correctors restore the invariant (the masking =
  fail-safe + nonmasking decomposition of Theorem 5.2).

Each function returns a result object carrying the synthesized program
*and* the predicates that certify it, so the caller can re-verify every
claim with :mod:`repro.core.tolerance`.
"""

from .weakest import fault_unsafe_region, safe_action_predicate
from .failsafe import FailsafeSynthesis, add_failsafe
from .nonmasking import NonmaskingSynthesis, add_nonmasking, reset_corrector
from .masking import MaskingSynthesis, add_masking

__all__ = [
    "fault_unsafe_region",
    "safe_action_predicate",
    "FailsafeSynthesis",
    "add_failsafe",
    "NonmaskingSynthesis",
    "add_nonmasking",
    "reset_corrector",
    "MaskingSynthesis",
    "add_masking",
]
