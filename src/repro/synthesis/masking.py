"""Masking synthesis: detectors + correctors together.

Masking tolerance decomposes into fail-safe plus nonmasking
(Theorem 5.2), and the companion method synthesizes it accordingly:

1. run the fail-safe synthesis — restrict every program action to its
   detection predicate so the perturbed program can never violate
   safety;
2. add correctors that converge the restricted program from its
   fault-span back to its invariant — but, unlike the plain nonmasking
   case, each corrector action is itself passed through the same
   detection filter, so recovery never violates safety either (the
   paper's "masking tolerant corrector");
3. re-verify: safety over all edges from the span, convergence to the
   invariant, and the liveness components of the specification.

:func:`add_masking` implements the pipeline and returns the composed
program with its certifying predicates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..core.action import Action
from ..core.exploration import TransitionSystem
from ..core.faults import FaultClass
from ..core.invariants import _safety_checks
from ..core.predicate import Predicate
from ..core.program import Program
from ..core.regions import Region, StateIndex, universe_index
from ..core.results import CheckResult
from ..core.specification import Spec
from ..core.tolerance import is_masking_tolerant
from .failsafe import FailsafeSynthesis, add_failsafe
from .nonmasking import reset_corrector
from .weakest import _safe_action_bits

__all__ = ["MaskingSynthesis", "add_masking"]


@dataclass(frozen=True)
class MaskingSynthesis:
    """Output of :func:`add_masking`."""

    program: Program
    failsafe_stage: FailsafeSynthesis
    correctors: Sequence[Action]
    invariant: Predicate
    span: Predicate

    def verify(self, faults: FaultClass, spec: Spec) -> CheckResult:
        """Re-check the synthesized program's masking tolerance."""
        return is_masking_tolerant(
            self.program, faults, spec, self.invariant, self.span
        )


def add_masking(
    program: Program,
    faults: FaultClass,
    spec: Spec,
    correctors: Optional[Sequence[Action]] = None,
    name: Optional[str] = None,
) -> MaskingSynthesis:
    """Synthesize a masking F-tolerant version of ``program``.

    ``correctors`` may supply problem-specific recovery actions;
    otherwise a generic reset corrector over the fail-safe stage's span
    is used.  Every corrector is restricted to its own safe-execution
    predicate, making recovery itself safe.
    """
    stage = add_failsafe(program, faults, spec)
    index = universe_index(program) or StateIndex(program.states())
    state_checks, transition_checks = _safety_checks(spec.safety_part())
    # ms as a bit array on the shared index (memoized per predicate
    # object, so this sweep is shared with any earlier interrogation)
    unsafe_data = index.region_bits(stage.unsafe).to_bytes(
        (index.n + 7) >> 3, "little"
    )

    if correctors is None:
        correctors = [
            reset_corrector(
                stage.program, stage.invariant, stage.span, name="reset"
            )
        ]
    safe_correctors: List[Action] = []
    for corrector in correctors:
        safe_bits = _safe_action_bits(
            index, corrector, unsafe_data, state_checks, transition_checks
        )
        predicate = Region(index, safe_bits).to_predicate(
            f"sf({corrector.name})"
        )
        restricted = corrector.restrict(predicate)
        index.derive_restricted_edges(
            restricted, corrector,
            safe_bits.to_bytes((index.n + 7) >> 3, "little"),
        )
        safe_correctors.append(restricted)

    composed = Program(
        variables=stage.program.variables,
        actions=list(stage.program.actions) + safe_correctors,
        name=name or f"masking({program.name})",
    )

    # The span may grow: corrector edges can pass through states the
    # fail-safe program alone never visited.  Recompute it.
    invariant_states = list(index.satisfying(stage.invariant))
    ts = TransitionSystem(
        composed, invariant_states, fault_actions=list(faults.actions)
    )
    span = Predicate.from_states(ts.states, name="T'")
    return MaskingSynthesis(
        program=composed,
        failsafe_stage=stage,
        correctors=tuple(safe_correctors),
        invariant=stage.invariant,
        span=span,
    )
