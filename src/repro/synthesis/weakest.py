"""Weakest-precondition machinery for synthesis.

Two region computations drive the synthesis algorithms:

- :func:`fault_unsafe_region` — the set ``ms`` of states from which the
  *fault actions alone* can violate the safety specification.  No
  program restriction can help once the state is in ``ms`` (the program
  cannot prevent fault steps), so a fail-safe program must never enter
  it.  Computed as a backward worklist over precomputed
  fault-predecessor lists: seed with the bad states and the sources of
  bad fault transitions, then propagate along fault edges — each fault
  edge is examined exactly once (the set-based version rescanned the
  whole universe per pass, O(|S|²·|F|)).
- :func:`safe_action_predicate` — the weakest predicate under which
  executing a given action neither violates safety directly nor enters
  ``ms``.  This is the *detection predicate* the synthesized detector
  checks before permitting the action (Theorem 3.3 guarantees its
  existence; here we additionally close it under fault reachability).

Both are single scans over a :class:`~repro.core.regions.StateIndex`'s
per-action adjacency; the synthesis pipelines pass the program's shared
universe index so successor relations and safety sweeps are computed
once per space, not once per call.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Iterable, List, Sequence, Set, Tuple

from ..core.action import Action
from ..core.faults import FaultClass
from ..core.invariants import _safety_checks, _successors_allowed
from ..core.predicate import Predicate
from ..core.regions import StateIndex, iter_bits
from ..core.specification import Spec
from ..core.state import State

__all__ = ["fault_unsafe_region", "safe_action_predicate"]


def fault_unsafe_region(
    faults: FaultClass,
    spec: Spec,
    states: Iterable[State],
) -> Set[State]:
    """The states from which fault actions alone can violate safety.

    Seed: states that are themselves bad, plus sources of bad fault
    transitions.  Fixpoint: any state with a fault edge into the region
    joins it (backward closure over indexed fault-predecessor lists).
    """
    state_checks, transition_checks = _safety_checks(spec.safety_part())
    index = StateIndex(states)
    unsafe_bits = _fault_unsafe_bits(
        index, faults.actions, state_checks, transition_checks
    )
    index_states = index.states
    return {index_states[i] for i in iter_bits(unsafe_bits, index.n)}


def _fault_unsafe_bits(
    index: StateIndex,
    fault_actions: Sequence[Action],
    state_checks: Sequence[Callable[[State], bool]],
    transition_checks: Sequence[Callable[[State, State], bool]],
) -> int:
    """Bits of the paper's ``ms`` region over ``index``.

    One pass over the fault adjacency builds the predecessor lists and
    the seed (bad states, sources of bad or index-escaping-into-badness
    fault transitions); a worklist then closes the seed backward.
    """
    n = index.n
    states = index.states
    in_region = bytearray((n + 7) >> 3)
    worklist: deque = deque()

    def mark(i: int) -> None:
        k, b = i >> 3, 1 << (i & 7)
        if not in_region[k] & b:
            in_region[k] |= b
            worklist.append(i)

    if state_checks:
        for i, state in enumerate(states):
            if not all(check(state) for check in state_checks):
                mark(i)

    preds: List[List[int]] = [[] for _ in range(n)]
    for action in fault_actions:
        rows, extern = index.action_edges(action)
        for u, row in enumerate(rows):
            for v in row:
                preds[v].append(u)
            if transition_checks and row:
                source = states[u]
                for v in row:
                    if not all(
                        check(source, states[v])
                        for check in transition_checks
                    ):
                        mark(u)
                        break
        for u, outside in extern.items():
            # successors beyond the given universe still count as
            # violations when they are bad states or bad transitions
            # (matching the set-based semantics exactly); a *good*
            # out-of-universe successor can never be in the region
            source = states[u]
            if not _successors_allowed(
                source, outside, state_checks, transition_checks
            ):
                mark(u)

    while worklist:
        v = worklist.popleft()
        for u in preds[v]:
            k, b = u >> 3, 1 << (u & 7)
            if not in_region[k] & b:
                in_region[k] |= b
                worklist.append(u)
    return int.from_bytes(in_region, "little")


def safe_action_predicate(
    action: Action,
    spec: Spec,
    unsafe: Set[State],
    states: Iterable[State],
    name: str = "",
) -> Predicate:
    """The weakest detection predicate for ``action`` that also avoids
    the fault-unsafe region.

    A state qualifies iff it is outside ``unsafe`` and every successor
    the action can produce is an allowed state, reached by an allowed
    transition, outside ``unsafe``.
    """
    state_checks, transition_checks = _safety_checks(spec.safety_part())
    index = StateIndex(states)
    unsafe_data = index.region_of(unsafe).data()
    good_bits = _safe_action_bits(
        index, action, unsafe_data, state_checks, transition_checks,
        extern_unsafe=unsafe,
    )
    index_states = index.states
    return Predicate.from_states(
        (index_states[i] for i in iter_bits(good_bits, index.n)),
        name=name or f"safe({action.name})",
    )


def _safe_action_bits(
    index: StateIndex,
    action: Action,
    unsafe_data: bytes,
    state_checks: Sequence[Callable[[State], bool]],
    transition_checks: Sequence[Callable[[State, State], bool]],
    extern_unsafe=None,
) -> int:
    """Bits of the safe-execution predicate of ``action``: sources
    outside ``unsafe`` all of whose successors are allowed and outside
    ``unsafe``.  Single pass over the action's indexed adjacency."""
    n = index.n
    states = index.states
    rows, extern = index.action_edges(action)
    good = bytearray((n + 7) >> 3)
    for u in range(n):
        if unsafe_data[u >> 3] & (1 << (u & 7)):
            continue
        source = states[u]
        ok = True
        for v in rows[u]:
            if unsafe_data[v >> 3] & (1 << (v & 7)):
                ok = False
                break
            target = states[v]
            if not all(check(target) for check in state_checks):
                ok = False
                break
            if not all(
                check(source, target) for check in transition_checks
            ):
                ok = False
                break
        if ok and u in extern:
            ok = _successors_allowed(
                source, extern[u], state_checks, transition_checks,
                forbidden=extern_unsafe,
            )
        if ok:
            good[u >> 3] |= 1 << (u & 7)
    return int.from_bytes(good, "little")
