"""Weakest-precondition machinery for synthesis.

Two region computations drive the synthesis algorithms:

- :func:`fault_unsafe_region` — the set ``ms`` of states from which the
  *fault actions alone* can violate the safety specification.  No
  program restriction can help once the state is in ``ms`` (the program
  cannot prevent fault steps), so a fail-safe program must never enter
  it.  Computed as a backward fixpoint over fault edges.
- :func:`safe_action_predicate` — the weakest predicate under which
  executing a given action neither violates safety directly nor enters
  ``ms``.  This is the *detection predicate* the synthesized detector
  checks before permitting the action (Theorem 3.3 guarantees its
  existence; here we additionally close it under fault reachability).
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Sequence, Set, Tuple

from ..core.action import Action
from ..core.faults import FaultClass
from ..core.invariants import _safety_checks
from ..core.predicate import Predicate
from ..core.specification import Spec
from ..core.state import State

__all__ = ["fault_unsafe_region", "safe_action_predicate"]


def fault_unsafe_region(
    faults: FaultClass,
    spec: Spec,
    states: Iterable[State],
) -> Set[State]:
    """The states from which fault actions alone can violate safety.

    Seed: states that are themselves bad, plus sources of bad fault
    transitions.  Fixpoint: any state with a fault edge into the region
    joins it.
    """
    state_checks, transition_checks = _safety_checks(spec.safety_part())
    universe: List[State] = list(states)

    region: Set[State] = {
        s for s in universe if not all(check(s) for check in state_checks)
    }
    changed = True
    while changed:
        changed = False
        for state in universe:
            if state in region:
                continue
            for fault_action in faults.actions:
                doomed = False
                for successor in fault_action.successors(state):
                    if successor in region:
                        doomed = True
                        break
                    if not all(check(successor) for check in state_checks):
                        doomed = True
                        break
                    if not all(
                        check(state, successor) for check in transition_checks
                    ):
                        doomed = True
                        break
                if doomed:
                    region.add(state)
                    changed = True
                    break
    return region


def safe_action_predicate(
    action: Action,
    spec: Spec,
    unsafe: Set[State],
    states: Iterable[State],
    name: str = "",
) -> Predicate:
    """The weakest detection predicate for ``action`` that also avoids
    the fault-unsafe region.

    A state qualifies iff it is outside ``unsafe`` and every successor
    the action can produce is an allowed state, reached by an allowed
    transition, outside ``unsafe``.
    """
    state_checks, transition_checks = _safety_checks(spec.safety_part())
    good: List[State] = []
    for state in states:
        if state in unsafe:
            continue
        safe = True
        for successor in action.successors(state):
            if successor in unsafe:
                safe = False
                break
            if not all(check(successor) for check in state_checks):
                safe = False
                break
            if not all(check(state, successor) for check in transition_checks):
                safe = False
                break
        if safe:
            good.append(state)
    return Predicate.from_states(
        good, name=name or f"safe({action.name})"
    )
