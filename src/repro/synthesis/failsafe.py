"""Fail-safe synthesis: add detectors to a fault-intolerant program.

Given a program ``p``, a specification, and a fault-class ``F``,
:func:`add_failsafe` produces a program ``p'`` in which every action of
``p`` is restricted (``sf ∧ ac``, the paper's ∧-composition) to a
detection predicate ``sf`` computed so that

- executing the action never violates the safety specification, and
- execution never enters the region from which faults alone can violate
  it (:func:`~repro.synthesis.weakest.fault_unsafe_region`).

The result is fail-safe F-tolerant by construction: from any state the
restricted program can reach, no program or fault step violates safety.
The certifying invariant is the largest predicate closed in ``p'`` from
which safety holds outside the fault-unsafe region, and the certifying
fault-span is the reachable set of ``p' [] F`` from it.

The detectors added here are exactly the ones Theorem 3.4 says must
exist in any fail-safe tolerant refinement: each restricted action
``sf ∧ g --> st`` *is* a detector with witness ``sf ∧ g`` and detection
predicate ``sf``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..core.exploration import TransitionSystem
from ..core.faults import FaultClass
from ..core.invariants import largest_invariant_for_safety
from ..core.predicate import Predicate
from ..core.program import Program
from ..core.results import CheckResult
from ..core.specification import Spec
from ..core.tolerance import is_failsafe_tolerant
from .weakest import fault_unsafe_region, safe_action_predicate

__all__ = ["FailsafeSynthesis", "add_failsafe"]


@dataclass(frozen=True)
class FailsafeSynthesis:
    """Output of :func:`add_failsafe`."""

    program: Program                       #: the synthesized p'
    detection_predicates: Dict[str, Predicate]  #: per original action
    unsafe: Predicate                      #: ms — fault-unsafe region
    invariant: Predicate                   #: certifying invariant S'
    span: Predicate                        #: certifying fault-span T'

    def verify(self, faults: FaultClass, spec: Spec) -> CheckResult:
        """Re-check the synthesized program's fail-safe tolerance."""
        return is_failsafe_tolerant(
            self.program, faults, spec, self.invariant, self.span
        )


def add_failsafe(
    program: Program,
    faults: FaultClass,
    spec: Spec,
    name: Optional[str] = None,
) -> FailsafeSynthesis:
    """Synthesize a fail-safe F-tolerant version of ``program``.

    Raises ``ValueError`` if the synthesized invariant is empty (no
    state from which the program both is safe and stays safe — the
    specification is unimplementable for this program and fault-class).
    """
    states = list(program.states())
    unsafe_states = fault_unsafe_region(faults, spec, states)
    unsafe = Predicate.from_states(unsafe_states, name="ms")

    detection: Dict[str, Predicate] = {}
    restricted = []
    for action in program.actions:
        predicate = safe_action_predicate(
            action, spec, unsafe_states, states, name=f"sf({action.name})"
        )
        detection[action.name] = predicate
        restricted.append(action.restrict(predicate))

    synthesized = program.with_actions(
        restricted, name=name or f"failsafe({program.name})"
    )

    invariant = _failsafe_invariant(synthesized, spec, unsafe_states, states)
    invariant_states = [s for s in states if invariant(s)]
    if not invariant_states:
        raise ValueError(
            f"fail-safe synthesis for {program.name!r} yields an empty "
            f"invariant: the specification cannot be maintained under "
            f"{faults.name}"
        )
    span_ts = TransitionSystem(
        synthesized, invariant_states, fault_actions=list(faults.actions)
    )
    span = Predicate.from_states(span_ts.states, name="T'")
    return FailsafeSynthesis(
        program=synthesized,
        detection_predicates=detection,
        unsafe=unsafe,
        invariant=invariant,
        span=span,
    )


def _failsafe_invariant(
    synthesized: Program, spec: Spec, unsafe_states, states
) -> Predicate:
    """The largest invariant certifying the synthesis: safe states
    outside the fault-unsafe region, closed under the restricted
    program, from which the liveness part of the specification also
    holds (tolerance still requires full SPEC in the absence of
    faults)."""
    base = largest_invariant_for_safety(synthesized, spec)
    good_set = {s for s in states if base(s) and s not in unsafe_states}
    changed = True
    while changed:
        changed = False
        for state in list(good_set):
            for action in synthesized.actions:
                if any(
                    nxt not in good_set for nxt in action.successors(state)
                ):
                    good_set.discard(state)
                    changed = True
                    break

    if good_set:
        from ..core.fairness import liveness_violating_states
        from ..core.specification import LeadsTo

        ts = TransitionSystem(synthesized, good_set)
        for component in spec.liveness_part().components:
            if isinstance(component, LeadsTo):
                good_set -= liveness_violating_states(
                    ts, component.source, component.target
                )
    return Predicate.from_states(good_set, name="S'")
