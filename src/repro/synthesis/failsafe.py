"""Fail-safe synthesis: add detectors to a fault-intolerant program.

Given a program ``p``, a specification, and a fault-class ``F``,
:func:`add_failsafe` produces a program ``p'`` in which every action of
``p`` is restricted (``sf ∧ ac``, the paper's ∧-composition) to a
detection predicate ``sf`` computed so that

- executing the action never violates the safety specification, and
- execution never enters the region from which faults alone can violate
  it (:func:`~repro.synthesis.weakest.fault_unsafe_region`).

The result is fail-safe F-tolerant by construction: from any state the
restricted program can reach, no program or fault step violates safety.
The certifying invariant is the largest predicate closed in ``p'`` from
which safety holds outside the fault-unsafe region, and the certifying
fault-span is the reachable set of ``p' [] F`` from it.

The detectors added here are exactly the ones Theorem 3.4 says must
exist in any fail-safe tolerant refinement: each restricted action
``sf ∧ g --> st`` *is* a detector with witness ``sf ∧ g`` and detection
predicate ``sf``.

The whole pipeline runs over the program's shared full-space
:class:`~repro.core.regions.StateIndex`: the ``ms`` region and the
per-action safe predicates are single indexed passes, the certifying
invariant is one backward bitset fixpoint (the two greatest fixpoints
of the set-based formulation — largest safe invariant, then closure
outside ``ms`` — coincide with the single fixpoint seeded by their
conjunction), and the restricted actions' adjacency is derived from the
base actions' rows instead of re-evaluating any statement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..core.exploration import TransitionSystem
from ..core.faults import FaultClass
from ..core.invariants import _passing_bits, _safety_checks
from ..core.predicate import Predicate
from ..core.program import Program
from ..core.regions import (
    Region,
    StateIndex,
    iter_bits,
    largest_closed_subset_bits,
    universe_index,
)
from ..core.results import CheckResult
from ..core.specification import Spec
from ..core.tolerance import is_failsafe_tolerant
from .weakest import _fault_unsafe_bits, _safe_action_bits

__all__ = ["FailsafeSynthesis", "add_failsafe"]


@dataclass(frozen=True)
class FailsafeSynthesis:
    """Output of :func:`add_failsafe`."""

    program: Program                       #: the synthesized p'
    detection_predicates: Dict[str, Predicate]  #: per original action
    unsafe: Predicate                      #: ms — fault-unsafe region
    invariant: Predicate                   #: certifying invariant S'
    span: Predicate                        #: certifying fault-span T'

    def verify(self, faults: FaultClass, spec: Spec) -> CheckResult:
        """Re-check the synthesized program's fail-safe tolerance."""
        return is_failsafe_tolerant(
            self.program, faults, spec, self.invariant, self.span
        )


# add_failsafe is a pure function of its (immutable) arguments, and the
# masking pipeline re-runs it on the same triple the caller typically
# just synthesized — memoize per argument identity.  Cleared with the
# state caches so benchmark repetitions stay honest.
_FAILSAFE_MEMO: Dict[tuple, FailsafeSynthesis] = {}
_FAILSAFE_MEMO_MAXSIZE = 32

Program.register_cache_clearer(_FAILSAFE_MEMO.clear)


def add_failsafe(
    program: Program,
    faults: FaultClass,
    spec: Spec,
    name: Optional[str] = None,
) -> FailsafeSynthesis:
    """Synthesize a fail-safe F-tolerant version of ``program``.

    Raises ``ValueError`` if the synthesized invariant is empty (no
    state from which the program both is safe and stays safe — the
    specification is unimplementable for this program and fault-class).
    """
    key = (program, faults, spec, name)
    cached = _FAILSAFE_MEMO.get(key)
    if cached is not None:
        return cached
    result = _add_failsafe(program, faults, spec, name)
    _FAILSAFE_MEMO[key] = result
    if len(_FAILSAFE_MEMO) > _FAILSAFE_MEMO_MAXSIZE:
        _FAILSAFE_MEMO.pop(next(iter(_FAILSAFE_MEMO)))
    return result


def _add_failsafe(
    program: Program,
    faults: FaultClass,
    spec: Spec,
    name: Optional[str],
) -> FailsafeSynthesis:
    index = universe_index(program) or StateIndex(program.states())
    state_checks, transition_checks = _safety_checks(spec.safety_part())

    unsafe_bits = _fault_unsafe_bits(
        index, faults.actions, state_checks, transition_checks
    )
    unsafe_data = unsafe_bits.to_bytes((index.n + 7) >> 3, "little")
    unsafe = Region(index, unsafe_bits).to_predicate("ms")

    detection: Dict[str, Predicate] = {}
    restricted = []
    for action in program.actions:
        safe_bits = _safe_action_bits(
            index, action, unsafe_data, state_checks, transition_checks
        )
        predicate = Region(index, safe_bits).to_predicate(
            f"sf({action.name})"
        )
        detection[action.name] = predicate
        restricted_action = action.restrict(predicate)
        index.derive_restricted_edges(
            restricted_action, action,
            safe_bits.to_bytes((index.n + 7) >> 3, "little"),
        )
        restricted.append(restricted_action)

    synthesized = program.with_actions(
        restricted, name=name or f"failsafe({program.name})"
    )

    invariant = _failsafe_invariant(
        index, synthesized, spec, unsafe_bits, state_checks,
        transition_checks,
    )
    invariant_states = list(index.satisfying(invariant))
    if not invariant_states:
        raise ValueError(
            f"fail-safe synthesis for {program.name!r} yields an empty "
            f"invariant: the specification cannot be maintained under "
            f"{faults.name}"
        )
    span_ts = TransitionSystem(
        synthesized, invariant_states, fault_actions=list(faults.actions)
    )
    span = Predicate.from_states(span_ts.states, name="T'")
    return FailsafeSynthesis(
        program=synthesized,
        detection_predicates=detection,
        unsafe=unsafe,
        invariant=invariant,
        span=span,
    )


def _failsafe_invariant(
    index: StateIndex,
    synthesized: Program,
    spec: Spec,
    unsafe_bits: int,
    state_checks,
    transition_checks,
) -> Predicate:
    """The largest invariant certifying the synthesis: safe states
    outside the fault-unsafe region, closed under the restricted
    program, from which the liveness part of the specification also
    holds (tolerance still requires full SPEC in the absence of
    faults).

    The set-based construction took the largest safe invariant and then
    re-closed its intersection with ``¬ms``; both greatest fixpoints
    compose into a single one (gfp of a monotone operator restricted to
    a smaller seed), so one backward pass seeded with
    ``safe ∧ ¬ms`` suffices.
    """
    good_bits = _passing_bits(index, state_checks) & ~unsafe_bits
    closed_bits = largest_closed_subset_bits(
        index, synthesized.actions, good_bits, transition_checks
    )
    good_set = {
        index.states[i] for i in iter_bits(closed_bits, index.n)
    }

    if good_set:
        from ..core.fairness import liveness_violating_states
        from ..core.specification import LeadsTo

        liveness = [
            c for c in spec.liveness_part().components
            if isinstance(c, LeadsTo)
        ]
        if liveness:
            ts = TransitionSystem(synthesized, good_set)
            for component in liveness:
                good_set -= liveness_violating_states(
                    ts, component.source, component.target
                )
    return Predicate.from_states(good_set, name="S'")
