"""Nonmasking synthesis: add correctors to a fault-intolerant program.

Given a program whose fault-span ``T`` strictly contains its invariant
``S``, :func:`add_nonmasking` adds corrector actions that make every
computation from ``T`` converge to ``S`` (the paper's reset-procedure /
constraint-resatisfaction correctors).

Two corrector shapes are supported:

- **user-supplied** corrector actions (e.g. the token-regeneration or
  re-election actions of the application programs), which the function
  composes in and then *verifies*: the correctors must not execute
  inside the invariant (interference freedom) and the composition must
  converge;
- the generic :func:`reset_corrector`, a single atomic action that maps
  each span state outside the invariant to a nearest invariant state
  (minimum Hamming distance over the variables, deterministic
  tie-break).  It models a centralized reset procedure — one of the
  paper's canonical corrector examples.

The result certifies nonmasking tolerance with the supplied invariant
and span.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..core.action import Action
from ..core.faults import FaultClass
from ..core.predicate import Predicate
from ..core.program import Program
from ..core.results import CheckResult
from ..core.specification import Spec
from ..core.state import State
from ..core.tolerance import is_nonmasking_tolerant

__all__ = ["NonmaskingSynthesis", "add_nonmasking", "reset_corrector"]


@dataclass(frozen=True)
class NonmaskingSynthesis:
    """Output of :func:`add_nonmasking`."""

    program: Program            #: the composed p' = p ‖ correctors
    correctors: Sequence[Action]
    invariant: Predicate
    span: Predicate

    def verify(self, faults: FaultClass, spec: Spec) -> CheckResult:
        """Re-check the synthesized program's nonmasking tolerance."""
        return is_nonmasking_tolerant(
            self.program, faults, spec, self.invariant, self.span
        )


def reset_corrector(
    program: Program,
    invariant: Predicate,
    span: Predicate,
    name: str = "reset",
) -> Action:
    """A centralized reset corrector: from any span state outside the
    invariant, atomically move to the nearest invariant state.

    "Nearest" minimizes the number of changed variables; ties break by
    the deterministic enumeration order of the state space, so the
    corrector is a function, not a relation.
    """
    states = list(program.states())
    invariant_fn, span_fn = invariant.fn, span.fn
    targets = [s for s in states if invariant_fn(s)]
    if not targets:
        raise ValueError(f"invariant {invariant.name} is empty; cannot reset into it")

    # All states of one program share a schema, so Hamming distance is a
    # positional comparison of values-tuples.  Scanning targets in
    # enumeration order with a strict improvement test realizes the
    # documented tie-break (first enumerated nearest state wins), and two
    # prunes keep the scan short: a candidate is abandoned as soon as it
    # matches the current best, and distance 1 is optimal outright
    # (a state outside the invariant is never at distance 0).
    target_values = [t.values_tuple for t in targets]

    repair = {}
    for state in states:
        if invariant_fn(state) or not span_fn(state):
            continue
        source = state.values_tuple
        best = 0
        best_distance = len(source) + 1
        for position, candidate in enumerate(target_values):
            d = 0
            for x, y in zip(source, candidate):
                if x != y:
                    d += 1
                    if d >= best_distance:
                        break
            else:
                best_distance = d
                best = position
                if d == 1:
                    break
        repair[state] = targets[best]

    guard = (span & ~invariant).rename(f"{span.name} ∧ ¬{invariant.name}")
    return Action(
        name,
        guard,
        lambda s, table=repair: table.get(s, s),
    )


def add_nonmasking(
    program: Program,
    faults: FaultClass,
    invariant: Predicate,
    span: Predicate,
    correctors: Optional[Sequence[Action]] = None,
    name: Optional[str] = None,
) -> NonmaskingSynthesis:
    """Compose corrector actions into ``program``.

    With ``correctors=None`` a generic :func:`reset_corrector` is
    synthesized.  Supplied correctors are used as-is; either way the
    composed program and certifying predicates are returned (call
    :meth:`NonmaskingSynthesis.verify` to model-check the claim).

    Raises :class:`~repro.analysis.InterferenceError` (a ``ValueError``
    subclass) if a corrector can execute inside the invariant and change
    the state (interference with the fault-free behaviour).  All
    interfering correctors are collected before raising, so one run
    reports every offender — the error's ``diagnostics`` attribute
    carries one structured ``DC203`` diagnostic per corrector."""
    from ..analysis.diagnostics import InterferenceError
    from ..analysis.interference import interference_diagnostics_for_states

    if correctors is None:
        correctors = [reset_corrector(program, invariant, span)]
    correctors = list(correctors)

    states = list(program.states())
    diagnostics = interference_diagnostics_for_states(
        correctors, invariant, states, use_memo=True
    )
    if diagnostics:
        raise InterferenceError(diagnostics)

    composed = Program(
        variables=program.variables,
        actions=list(program.actions) + correctors,
        name=name or f"nonmasking({program.name})",
    )
    return NonmaskingSynthesis(
        program=composed,
        correctors=tuple(correctors),
        invariant=invariant,
        span=span,
    )
