"""Nonmasking synthesis: add correctors to a fault-intolerant program.

Given a program whose fault-span ``T`` strictly contains its invariant
``S``, :func:`add_nonmasking` adds corrector actions that make every
computation from ``T`` converge to ``S`` (the paper's reset-procedure /
constraint-resatisfaction correctors).

Two corrector shapes are supported:

- **user-supplied** corrector actions (e.g. the token-regeneration or
  re-election actions of the application programs), which the function
  composes in and then *verifies*: the correctors must not execute
  inside the invariant (interference freedom) and the composition must
  converge;
- the generic :func:`reset_corrector`, a single atomic action that maps
  each span state outside the invariant to a nearest invariant state
  (minimum Hamming distance over the variables, deterministic
  tie-break).  It models a centralized reset procedure — one of the
  paper's canonical corrector examples.

The result certifies nonmasking tolerance with the supplied invariant
and span.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..core.action import Action
from ..core.faults import FaultClass
from ..core.predicate import Predicate
from ..core.program import Program
from ..core.results import CheckResult
from ..core.specification import Spec
from ..core.state import State
from ..core.tolerance import is_nonmasking_tolerant

__all__ = ["NonmaskingSynthesis", "add_nonmasking", "reset_corrector"]


@dataclass(frozen=True)
class NonmaskingSynthesis:
    """Output of :func:`add_nonmasking`."""

    program: Program            #: the composed p' = p ‖ correctors
    correctors: Sequence[Action]
    invariant: Predicate
    span: Predicate

    def verify(self, faults: FaultClass, spec: Spec) -> CheckResult:
        """Re-check the synthesized program's nonmasking tolerance."""
        return is_nonmasking_tolerant(
            self.program, faults, spec, self.invariant, self.span
        )


def reset_corrector(
    program: Program,
    invariant: Predicate,
    span: Predicate,
    name: str = "reset",
) -> Action:
    """A centralized reset corrector: from any span state outside the
    invariant, atomically move to the nearest invariant state.

    "Nearest" minimizes the number of changed variables; ties break by
    the deterministic enumeration order of the state space, so the
    corrector is a function, not a relation.
    """
    states = list(program.states())
    targets = [s for s in states if invariant(s)]
    if not targets:
        raise ValueError(f"invariant {invariant.name} is empty; cannot reset into it")

    variable_names = list(program.variable_names)

    def distance(a: State, b: State) -> int:
        return sum(1 for n in variable_names if a[n] != b[n])

    repair = {}
    for state in states:
        if invariant(state) or not span(state):
            continue
        repair[state] = min(targets, key=lambda t, s=state: (distance(s, t),
                                                             repr(t)))

    guard = (span & ~invariant).rename(f"{span.name} ∧ ¬{invariant.name}")
    return Action(
        name,
        guard,
        lambda s, table=repair: table.get(s, s),
    )


def add_nonmasking(
    program: Program,
    faults: FaultClass,
    invariant: Predicate,
    span: Predicate,
    correctors: Optional[Sequence[Action]] = None,
    name: Optional[str] = None,
) -> NonmaskingSynthesis:
    """Compose corrector actions into ``program``.

    With ``correctors=None`` a generic :func:`reset_corrector` is
    synthesized.  Supplied correctors are used as-is; either way the
    composed program and certifying predicates are returned (call
    :meth:`NonmaskingSynthesis.verify` to model-check the claim).

    Raises ``ValueError`` if a corrector can execute inside the
    invariant and change the state (interference with the fault-free
    behaviour)."""
    if correctors is None:
        correctors = [reset_corrector(program, invariant, span)]
    correctors = list(correctors)

    states = list(program.states())
    for corrector in correctors:
        for state in states:
            if not invariant(state):
                continue
            for successor in corrector.successors(state):
                if successor != state:
                    raise ValueError(
                        f"corrector {corrector.name!r} interferes: it moves "
                        f"invariant state {state!r} to {successor!r}"
                    )

    composed = Program(
        variables=program.variables,
        actions=list(program.actions) + correctors,
        name=name or f"nonmasking({program.name})",
    )
    return NonmaskingSynthesis(
        program=composed,
        correctors=tuple(correctors),
        invariant=invariant,
        span=span,
    )
