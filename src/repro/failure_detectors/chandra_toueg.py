"""A heartbeat failure detector, model-checked as a detector.

One monitored process and one watchdog, in the interleaving model:

- ``heartbeat``: the monitored process (while not crashed) raises the
  ``alive`` bit;
- ``consume``: the watchdog sees the bit, clears it, resets its miss
  counter, and retracts any suspicion;
- ``count``: the watchdog, not seeing the bit, counts a miss;
- ``suspect``: at ``limit`` consecutive misses the watchdog suspects
  the process.

The fault-class is the crash (latching ``crashed``; heartbeats stop).

Mechanically verified claims (see the tests):

1. **It is a detector** of the timeout predicate: ``suspect detects
   (missed ≥ limit)`` holds — the failure detector is literally an
   instantiation of the paper's detector component.
2. **Completeness**: ``crashed leads-to suspected`` in the presence of
   the crash fault — Progress with respect to the "process is down"
   detection predicate.
3. **Strong accuracy fails**: ``suspect detects crashed`` violates
   Safeness — the model checker produces the classic asynchrony
   counterexample in which the watchdog counts misses while the slow
   process is merely between heartbeats.  A perfect failure detector is
   unimplementable in this model, exactly Chandra–Toueg's motivation
   for the ◇-hierarchy.
4. **Eventual accuracy**: a false suspicion is eventually retracted
   (``suspect ∧ ¬crashed leads-to ¬suspect ∨ crashed``) — the ◇-style
   guarantee the heartbeat detector does offer.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core import (
    Action,
    FaultClass,
    Predicate,
    Program,
    TRUE,
    Variable,
    assign,
    crash_variable,
)

__all__ = ["FailureDetectorModel", "build"]


@dataclass(frozen=True)
class FailureDetectorModel:
    """All artifacts of the heartbeat failure-detector model."""

    limit: int
    program: Program
    crashed: Predicate      #: the Chandra–Toueg detection predicate
    suspected: Predicate    #: the witness
    timed_out: Predicate    #: missed ≥ limit — the implementable predicate
    from_: Predicate        #: bookkeeping consistency to verify from
    faults: FaultClass      #: the crash


def build(limit: int = 2) -> FailureDetectorModel:
    """Construct the heartbeat failure-detector model."""
    if limit < 1:
        raise ValueError("limit must be positive")
    variables = [
        Variable("crashed", [False, True]),
        Variable("alive", [False, True]),
        Variable("missed", list(range(limit + 1))),
        Variable("suspect", [False, True]),
    ]

    crashed = Predicate(lambda s: s["crashed"], name="crashed")
    alive_bit = Predicate(lambda s: s["alive"], name="alive")
    suspected = Predicate(lambda s: s["suspect"], name="suspect")
    timed_out = Predicate(
        lambda s, lim=limit: s["missed"] >= lim, name=f"missed≥{limit}"
    )

    program = Program(
        variables,
        [
            Action("heartbeat", ~crashed & ~alive_bit, assign(alive=True),
                   reads={"crashed", "alive"}, writes={"alive"}),
            Action(
                "consume",
                alive_bit,
                assign(alive=False, missed=0, suspect=False),
                reads={"alive"}, writes={"alive", "missed", "suspect"},
            ),
            Action(
                "count",
                ~alive_bit & ~timed_out,
                assign(missed=lambda s: s["missed"] + 1),
                reads={"alive", "missed"}, writes={"missed"},
            ),
            Action("suspect", timed_out & ~suspected, assign(suspect=True),
                   reads={"missed", "suspect"}, writes={"suspect"}),
        ],
        name=f"heartbeat_fd(limit={limit})",
    )

    return FailureDetectorModel(
        limit=limit,
        program=program,
        crashed=crashed,
        suspected=suspected,
        timed_out=timed_out,
        from_=suspected.implies(timed_out).rename("U(suspect⇒timeout)"),
        faults=crash_variable("crashed", name="crash"),
    )
