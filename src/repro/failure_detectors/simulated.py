"""Heartbeat failure detection on the discrete-event simulator.

The runtime counterpart of :mod:`.chandra_toueg`:

- :class:`HeartbeatProcess` sends ``"hb"`` to its monitor every
  ``period`` time units (until crashed);
- :class:`MonitorProcess` suspects the sender whenever no heartbeat has
  arrived for ``timeout`` time units, and retracts the suspicion when a
  late heartbeat arrives.

:func:`run_crash_experiment` crashes the heartbeater mid-run and
measures the *detection latency* (suspicion time minus crash time) and
the count of *false suspicions* before the crash — the two quantities
the timeout parameter trades off, reported by the benchmark sweep.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, List, Optional

from ..sim import ChannelConfig, CrashInjector, Network, SimProcess

__all__ = ["HeartbeatProcess", "MonitorProcess", "run_crash_experiment",
           "CrashExperimentResult"]


class HeartbeatProcess(SimProcess):
    """Send a heartbeat to ``monitor`` every ``period`` units."""

    def __init__(self, pid: Hashable, monitor: Hashable, period: float = 1.0):
        super().__init__(pid)
        self.monitor = monitor
        self.period = period

    def on_start(self) -> None:
        self.set_timer("beat", 0.0)

    def on_timer(self, name: str) -> None:
        if name == "beat":
            self.send(self.monitor, "hb")
            self.set_timer("beat", self.period)


class MonitorProcess(SimProcess):
    """Suspect ``watched`` after ``timeout`` units of heartbeat silence.

    Records every suspicion/retraction with its timestamp.
    """

    def __init__(self, pid: Hashable, watched: Hashable, timeout: float = 3.0):
        super().__init__(pid)
        self.watched = watched
        self.timeout = timeout
        self.suspect = False
        self.last_heartbeat: Optional[float] = None
        self.suspicions: List[float] = []
        self.retractions: List[float] = []

    def on_start(self) -> None:
        self.set_timer("check", self.timeout)

    def on_message(self, sender: Hashable, message) -> None:
        if sender == self.watched and message == "hb":
            self.last_heartbeat = self.now
            if self.suspect:
                self.suspect = False
                self.retractions.append(self.now)

    def on_timer(self, name: str) -> None:
        if name != "check":
            return
        silent_since = self.last_heartbeat if self.last_heartbeat is not None else 0.0
        if not self.suspect and self.now - silent_since >= self.timeout:
            self.suspect = True
            self.suspicions.append(self.now)
        self.set_timer("check", self.timeout / 2)


@dataclass(frozen=True)
class CrashExperimentResult:
    """Measurements from one :func:`run_crash_experiment` run."""

    timeout: float
    crash_time: float
    detection_time: Optional[float]   #: first suspicion after the crash
    detection_latency: Optional[float]
    false_suspicions: int             #: suspicions strictly before the crash

    def as_row(self) -> str:
        latency = (
            f"{self.detection_latency:7.2f}" if self.detection_latency is not None
            else "   n/a"
        )
        return (
            f"timeout={self.timeout:5.1f}  latency={latency}  "
            f"false_suspicions={self.false_suspicions}"
        )


def run_crash_experiment(
    timeout: float,
    period: float = 1.0,
    crash_time: float = 50.0,
    horizon: float = 100.0,
    loss_probability: float = 0.0,
    jitter: float = 0.0,
    seed: int = 0,
) -> CrashExperimentResult:
    """Crash the heartbeater at ``crash_time``; measure detection."""
    network = Network(
        seed=seed,
        default_channel=ChannelConfig(
            delay=0.1, jitter=jitter, loss_probability=loss_probability
        ),
    )
    network.add_process(HeartbeatProcess("p", monitor="fd", period=period))
    monitor = network.add_process(
        MonitorProcess("fd", watched="p", timeout=timeout)
    )
    CrashInjector(time=crash_time, pid="p").arm(network)
    network.run(until=horizon)

    detection_time = next(
        (t for t in monitor.suspicions if t >= crash_time), None
    )
    return CrashExperimentResult(
        timeout=timeout,
        crash_time=crash_time,
        detection_time=detection_time,
        detection_latency=(
            detection_time - crash_time if detection_time is not None else None
        ),
        false_suspicions=sum(1 for t in monitor.suspicions if t < crash_time),
    )
