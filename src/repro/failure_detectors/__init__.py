"""Failure detectors as instantiations of detectors (paper Section 7).

The paper notes that Chandra–Toueg failure detectors are detectors
whose detection predicate has the special form "process j is down", and
that detectors are more abstract: they concern states reached in the
execution of program and faults, not only states immediately after the
fault.

- :mod:`repro.failure_detectors.chandra_toueg` makes that observation
  mechanical: a heartbeat failure detector is model-checked to show it
  *is* a detector of its timeout predicate, that it satisfies
  completeness (crashed leads-to suspected), and that strong accuracy —
  Safeness of ``suspect detects crashed`` — is *refuted* with a
  counterexample trace (the asynchrony argument), while eventual
  accuracy (false suspicions are retracted) holds.
- :mod:`repro.failure_detectors.simulated` provides the runtime
  counterpart on :mod:`repro.sim`: heartbeat/monitor processes whose
  detection latency and false-suspicion rate the benchmarks sweep
  against timeout, loss, and jitter.
"""

from .chandra_toueg import FailureDetectorModel, build
from .simulated import HeartbeatProcess, MonitorProcess, run_crash_experiment

__all__ = [
    "FailureDetectorModel",
    "build",
    "HeartbeatProcess",
    "MonitorProcess",
    "run_crash_experiment",
]
