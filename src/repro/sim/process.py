"""Simulated processes.

A :class:`SimProcess` is a reactive object driven entirely by the
network: it receives messages and timer expirations, and may send
messages and set timers in response.  Processes never touch the kernel
directly — the :class:`~repro.sim.network.Network` mediates everything,
which is what lets fault injectors crash, restart, and corrupt
processes uniformly.

Subclasses override the ``on_*`` hooks.  Process-local state lives in
ordinary attributes; :meth:`snapshot` exposes it to global-predicate
monitors (and to state-corruption injectors) as a dictionary.
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, Optional

__all__ = ["SimProcess"]


class SimProcess:
    """Base class for simulated processes."""

    def __init__(self, pid: Hashable):
        self.pid = pid
        self.network = None          # set by Network.add_process
        self.crashed = False

    # -- hooks for subclasses ------------------------------------------------
    def on_start(self) -> None:
        """Called once when the simulation starts."""

    def on_message(self, sender: Hashable, message: Any) -> None:
        """Called on each delivered message."""

    def on_timer(self, name: str) -> None:
        """Called when a timer set via :meth:`set_timer` expires."""

    def on_restart(self) -> None:
        """Called when a restart injector revives a crashed process.
        Default: nothing — state is retained (warm restart).  Override
        to re-initialize (cold restart)."""

    # -- services -----------------------------------------------------------
    def send(self, destination: Hashable, message: Any) -> None:
        """Send a message through the network (no-op while crashed)."""
        if self.crashed:
            return
        self.network.transmit(self.pid, destination, message)

    def set_timer(self, name: str, delay: float) -> None:
        """Arrange an :meth:`on_timer` callback after ``delay`` (no-op
        while crashed)."""
        if self.crashed:
            return
        self.network.set_timer(self.pid, name, delay)

    @property
    def now(self) -> float:
        return self.network.simulator.now

    # -- introspection -------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """The process's observable state (for monitors and injectors):
        all public, non-callable attributes except wiring."""
        return {
            key: value
            for key, value in vars(self).items()
            if not key.startswith("_")
            and key not in ("network",)
            and not callable(value)
        }

    def __repr__(self) -> str:
        status = "crashed" if self.crashed else "up"
        return f"{type(self).__name__}(pid={self.pid!r}, {status})"
