"""The network: wiring, delivery, timers, and the event trace.

The :class:`Network` owns the simulator, the processes, and the channel
configurations.  Every observable event — send, deliver, drop, timer,
crash, restart, corruption — is appended to ``trace`` as a
:class:`TraceEvent`, giving benchmarks and tests a single queryable
record of a run (SIEFAST's "validation" role).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, List, Optional, Tuple

from .channel import ChannelConfig
from .kernel import Simulator
from .process import SimProcess

__all__ = ["TraceEvent", "Network"]


@dataclass(frozen=True)
class TraceEvent:
    """One observable event in a simulation run."""

    time: float
    kind: str           #: send | deliver | drop | timer | crash | restart | corrupt
    process: Hashable   #: the process concerned (receiver for deliveries)
    detail: Any = None

    def __repr__(self) -> str:
        return f"[{self.time:8.3f}] {self.kind:8s} @{self.process}: {self.detail!r}"


class Network:
    """Processes + channels + fault injectors, over one simulator."""

    def __init__(self, seed: int = 0,
                 default_channel: Optional[ChannelConfig] = None):
        self.simulator = Simulator()
        self.rng = random.Random(seed)
        self.processes: Dict[Hashable, SimProcess] = {}
        self.default_channel = default_channel or ChannelConfig()
        self._channels: Dict[Tuple[Hashable, Hashable], ChannelConfig] = {}
        #: in-transit message transformers (intruders); applied at send
        self._tamperers: Dict[Tuple[Hashable, Hashable], Any] = {}
        self.trace: List[TraceEvent] = []
        self._started = False

    # -- construction ---------------------------------------------------------
    def add_process(self, process: SimProcess) -> SimProcess:
        if process.pid in self.processes:
            raise ValueError(f"duplicate pid {process.pid!r}")
        process.network = self
        self.processes[process.pid] = process
        if self._started:
            process.on_start()
        return process

    def set_channel(
        self, source: Hashable, destination: Hashable, config: ChannelConfig
    ) -> None:
        """Override the channel configuration for one directed pair."""
        self._channels[(source, destination)] = config

    def channel(self, source: Hashable, destination: Hashable) -> ChannelConfig:
        return self._channels.get((source, destination), self.default_channel)

    def set_tamperer(self, source: Hashable, destination: Hashable,
                     transform) -> None:
        """Install (or with ``transform=None`` remove) an in-transit
        message transformer on one directed channel — SIEFAST's intruder
        modelling.  The transform receives the message and returns the
        (possibly altered) message."""
        if transform is None:
            self._tamperers.pop((source, destination), None)
        else:
            self._tamperers[(source, destination)] = transform

    # -- process services -----------------------------------------------------
    def transmit(self, source: Hashable, destination: Hashable, message: Any) -> None:
        if destination not in self.processes:
            raise KeyError(f"unknown destination {destination!r}")
        self._record("send", source, (destination, message))
        tamperer = self._tamperers.get((source, destination))
        if tamperer is not None:
            tampered = tamperer(message)
            if tampered != message:
                self._record("tamper", source, (destination, message, tampered))
            message = tampered
        delays = self.channel(source, destination).delivery_delays(self.rng)
        if not delays:
            self._record("drop", source, (destination, message))
            return
        for delay in delays:
            self.simulator.schedule(
                delay, lambda s=source, d=destination, m=message: self._deliver(s, d, m)
            )

    def set_timer(self, pid: Hashable, name: str, delay: float) -> None:
        self.simulator.schedule(delay, lambda p=pid, n=name: self._fire_timer(p, n))

    # -- running ---------------------------------------------------------------
    def start(self) -> None:
        """Invoke every process's ``on_start`` hook (idempotent)."""
        if self._started:
            return
        self._started = True
        for process in list(self.processes.values()):
            process.on_start()

    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None) -> float:
        """Start (if needed) and drive the simulation."""
        self.start()
        return self.simulator.run(until=until, max_events=max_events)

    # -- fault operations (used by the injectors) -------------------------------
    def crash(self, pid: Hashable) -> None:
        process = self.processes[pid]
        if not process.crashed:
            process.crashed = True
            self._record("crash", pid)

    def restart(self, pid: Hashable) -> None:
        process = self.processes[pid]
        if process.crashed:
            process.crashed = False
            self._record("restart", pid)
            process.on_restart()

    def corrupt(self, pid: Hashable, updates: Dict[str, Any]) -> None:
        process = self.processes[pid]
        for key, value in updates.items():
            if not hasattr(process, key):
                raise AttributeError(
                    f"process {pid!r} has no state variable {key!r}"
                )
            setattr(process, key, value)
        self._record("corrupt", pid, updates)

    # -- observation -------------------------------------------------------------
    def global_snapshot(self) -> Dict[Hashable, Dict[str, Any]]:
        """Per-process state snapshots (for global-predicate monitors)."""
        return {pid: p.snapshot() for pid, p in self.processes.items()}

    def events(self, kind: Optional[str] = None) -> List[TraceEvent]:
        if kind is None:
            return list(self.trace)
        return [e for e in self.trace if e.kind == kind]

    # -- internals -------------------------------------------------------------
    def _deliver(self, source: Hashable, destination: Hashable, message: Any) -> None:
        process = self.processes[destination]
        if process.crashed:
            self._record("drop", destination, (source, message))
            return
        self._record("deliver", destination, (source, message))
        process.on_message(source, message)

    def _fire_timer(self, pid: Hashable, name: str) -> None:
        process = self.processes[pid]
        if process.crashed:
            return
        self._record("timer", pid, name)
        process.on_timer(name)

    def _record(self, kind: str, process: Hashable, detail: Any = None) -> None:
        self.trace.append(
            TraceEvent(time=self.simulator.now, kind=kind, process=process,
                       detail=detail)
        )
