"""Channel models: delay, loss, duplication, reordering.

A :class:`ChannelConfig` turns each send into zero or more deliveries
with computed delays.  All randomness flows through the caller's
``random.Random`` instance, keeping runs reproducible.

Reordering falls out of jittered delays (two messages sent in order may
be delivered out of order when ``jitter > 0``), matching how real
networks reorder.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List

__all__ = ["ChannelConfig"]


@dataclass(frozen=True)
class ChannelConfig:
    """Delivery behaviour of a directed channel.

    Attributes
    ----------
    delay:
        Base propagation delay.
    jitter:
        Uniform extra delay in ``[0, jitter]``; nonzero jitter permits
        reordering.
    loss_probability:
        Each message is independently dropped with this probability.
    duplication_probability:
        Each delivered message is delivered a second time with this
        probability.
    """

    delay: float = 1.0
    jitter: float = 0.0
    loss_probability: float = 0.0
    duplication_probability: float = 0.0

    def __post_init__(self):
        if self.delay < 0 or self.jitter < 0:
            raise ValueError("delay and jitter must be nonnegative")
        for p in (self.loss_probability, self.duplication_probability):
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"probability {p} outside [0, 1]")

    def delivery_delays(self, rng: random.Random) -> List[float]:
        """The delays at which copies of one message arrive (empty if
        the message is lost)."""
        if rng.random() < self.loss_probability:
            return []
        delays = [self.delay + (rng.random() * self.jitter if self.jitter else 0.0)]
        if rng.random() < self.duplication_probability:
            delays.append(
                self.delay + (rng.random() * self.jitter if self.jitter else 0.0)
            )
        return delays
