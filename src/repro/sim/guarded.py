"""Executing guarded-command programs under schedulers.

This is the "hybrid" bridge the paper's SIEFAST sketch calls for: the
same :class:`repro.core.Program` that the model checker certifies can
be *run* here, step by step, under a pluggable scheduler with fault
injection — producing the quantitative measurements (stabilization
times, recovery latencies) that complement the qualitative tolerance
certificates.

Schedulers:

- :class:`RandomScheduler` — uniform choice among enabled transitions
  (weakly fair with probability 1);
- :class:`RoundRobinScheduler` — cycles through actions, executing each
  enabled one in turn (deterministically fair);
- :class:`AdversarialScheduler` — picks the transition that maximizes
  the shortest-path distance to a target predicate (a demonic scheduler
  for worst-case-leaning convergence measurements).

Measurements:

- :func:`convergence_steps` — steps until a target predicate holds,
  under a given scheduler;
- :func:`worst_case_convergence_steps` — the *exact* demonic bound, by
  value iteration over the transition graph (raises if a demonic
  schedule can avoid the target forever — i.e. if convergence is not
  scheduler-independent).
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, List, Optional, Tuple

from ..core.exploration import TransitionSystem
from ..core.faults import FaultClass
from ..core.predicate import Predicate
from ..core.program import Program
from ..core.state import State

__all__ = [
    "RandomScheduler",
    "RoundRobinScheduler",
    "AdversarialScheduler",
    "simulate",
    "convergence_steps",
    "worst_case_convergence_steps",
]

Transition = Tuple[str, State]


class RandomScheduler:
    """Uniformly random choice among enabled transitions."""

    def __init__(self, seed: int = 0):
        self.rng = random.Random(seed)

    def choose(self, state: State, options: List[Transition]) -> Transition:
        return self.rng.choice(options)


class RoundRobinScheduler:
    """Cycle through action names; execute the next enabled one.

    Deterministic and fair: every continuously enabled action is
    executed within one full cycle.
    """

    def __init__(self):
        self._cursor = 0

    def choose(self, state: State, options: List[Transition]) -> Transition:
        names = sorted({name for name, _ in options})
        chosen_name = names[self._cursor % len(names)]
        self._cursor += 1
        for option in options:
            if option[0] == chosen_name:
                return option
        return options[0]  # pragma: no cover — chosen_name comes from options


class AdversarialScheduler:
    """Choose the transition maximizing distance-to-target.

    Distances are shortest-path steps to the target predicate in the
    reachable graph (precomputed on first use); unreachable-from states
    count as infinitely far.  This demonic scheduler drives worst-case-
    leaning convergence measurements.
    """

    def __init__(self, program: Program, target: Predicate, start: State):
        ts = TransitionSystem(program, [start])
        self._distance = _distances_to(ts, target)

    def choose(self, state: State, options: List[Transition]) -> Transition:
        return max(
            options,
            key=lambda option: self._distance.get(option[1], float("inf")),
        )


def _distances_to(ts: TransitionSystem, target: Predicate) -> Dict[State, float]:
    """Backward BFS: steps from each state to the nearest target state."""
    from collections import deque

    predecessors: Dict[State, List[State]] = {s: [] for s in ts.states}
    for state in ts.states:
        for _, nxt in ts.program_edges_from(state):
            if nxt in predecessors:
                predecessors[nxt].append(state)
    distance: Dict[State, float] = {}
    frontier = deque()
    for state in ts.states:
        if target(state):
            distance[state] = 0.0
            frontier.append(state)
    while frontier:
        state = frontier.popleft()
        for previous in predecessors[state]:
            if previous not in distance:
                distance[previous] = distance[state] + 1.0
                frontier.append(previous)
    return distance


def simulate(
    program: Program,
    start: State,
    scheduler,
    steps: int = 1000,
    faults: Optional[FaultClass] = None,
    fault_times: Iterable[int] = (),
    fault_rng: Optional[random.Random] = None,
) -> List[State]:
    """Run ``program`` from ``start`` for up to ``steps`` steps.

    ``fault_times`` lists the step indices at which a random enabled
    fault action fires instead of a program action (fault injection in
    the trace-driven SIEFAST style).  Returns the visited states; stops
    early at deadlock.
    """
    fault_rng = fault_rng or random.Random(0)
    fault_schedule = set(fault_times)
    trace = [start]
    state = start
    for step in range(steps):
        if step in fault_schedule and faults is not None:
            fault_options: List[Transition] = []
            for action in faults.actions:
                for nxt in action.successors(state):
                    fault_options.append((action.name, nxt))
            if fault_options:
                _, state = fault_rng.choice(fault_options)
                trace.append(state)
                continue
        options: List[Transition] = []
        for action in program.actions:
            for nxt in action.successors(state):
                options.append((action.name, nxt))
        if not options:
            break
        _, state = scheduler.choose(state, options)
        trace.append(state)
    return trace


def convergence_steps(
    program: Program,
    start: State,
    target: Predicate,
    scheduler,
    max_steps: int = 10_000,
) -> Optional[int]:
    """Steps until ``target`` first holds under ``scheduler`` (None if
    it does not within ``max_steps``)."""
    state = start
    if target(state):
        return 0
    for step in range(1, max_steps + 1):
        options: List[Transition] = []
        for action in program.actions:
            for nxt in action.successors(state):
                options.append((action.name, nxt))
        if not options:
            return None
        _, state = scheduler.choose(state, options)
        if target(state):
            return step
    return None


def worst_case_convergence_steps(
    program: Program,
    starts: Iterable[State],
    target: Predicate,
) -> int:
    """The exact demonic convergence bound from the given start states.

    ``steps(s) = 0`` if the target holds at ``s``, else ``1 + max`` over
    all outgoing transitions.  Well-defined iff no demonic schedule can
    avoid the target forever; a cycle in the non-target region raises
    ``ValueError`` (convergence is then fairness-dependent, and only
    scheduler-specific measurements are meaningful).
    """
    memo: Dict[State, int] = {}
    on_path: set = set()

    def steps(state: State) -> int:
        if state in memo:
            return memo[state]
        if target(state):
            memo[state] = 0
            return 0
        if state in on_path:
            raise ValueError(
                "a demonic schedule can avoid the target forever "
                f"(cycle through {state!r})"
            )
        on_path.add(state)
        worst = 0
        for action in program.actions:
            for nxt in action.successors(state):
                worst = max(worst, 1 + steps(nxt))
        on_path.discard(state)
        memo[state] = worst
        return worst

    import sys

    old_limit = sys.getrecursionlimit()
    sys.setrecursionlimit(max(old_limit, 100_000))
    try:
        return max((steps(s) for s in starts), default=0)
    finally:
        sys.setrecursionlimit(old_limit)
