"""A SIEFAST-style simulation environment (paper Section 7).

The paper's concluding section describes SIEFAST, "an environment that
enables stepwise design, implementation and validation of
component-based fault-tolerant distributed programs", supporting
distributed and *hybrid* simulation plus fault (and intruder)
modelling.  This package reproduces those capabilities at laptop scale:

- :mod:`repro.sim.kernel` — a deterministic discrete-event simulator;
- :mod:`repro.sim.process` / :mod:`repro.sim.network` — message-passing
  processes wired through configurable channels;
- :mod:`repro.sim.channel` — delay, loss, duplication and reordering
  models;
- :mod:`repro.sim.faults` — fault injectors: crash, restart, transient
  state corruption, message-loss bursts;
- :mod:`repro.sim.monitors` — online global-predicate monitors for
  convergence/latency measurement (the runtime analogue of detectors);
- :mod:`repro.sim.guarded` — run any :class:`repro.core.Program` under
  random / round-robin / adversarial schedulers with fault injection,
  measuring stabilization times.  This is the "hybrid" bridge: the same
  guarded-command component can be model-checked by
  :mod:`repro.core` and executed here.
"""

from .kernel import Simulator
from .process import SimProcess
from .channel import ChannelConfig
from .network import Network
from .faults import (
    CrashInjector,
    MessageLossBurst,
    RestartInjector,
    StateCorruptionInjector,
    TamperingIntruder,
)
from .monitors import PredicateMonitor
from .guarded import (
    AdversarialScheduler,
    RandomScheduler,
    RoundRobinScheduler,
    simulate,
    convergence_steps,
    worst_case_convergence_steps,
)

__all__ = [
    "Simulator",
    "SimProcess",
    "ChannelConfig",
    "Network",
    "CrashInjector",
    "RestartInjector",
    "StateCorruptionInjector",
    "MessageLossBurst",
    "TamperingIntruder",
    "PredicateMonitor",
    "RandomScheduler",
    "RoundRobinScheduler",
    "AdversarialScheduler",
    "simulate",
    "convergence_steps",
    "worst_case_convergence_steps",
]
