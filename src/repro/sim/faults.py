"""Fault injectors for simulation runs.

Each injector arms itself on a :class:`~repro.sim.network.Network` and
perturbs it at scheduled instants — the runtime counterpart of the
fault-class actions of :mod:`repro.core.faults`:

- :class:`CrashInjector` / :class:`RestartInjector` — crash faults
  (processes stop sending/receiving) and recovery;
- :class:`StateCorruptionInjector` — transient state corruption, the
  fault-class of the self-stabilization examples;
- :class:`MessageLossBurst` — temporarily raises a channel's loss rate
  to 100% (omission faults), restoring it afterwards.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Hashable, Tuple

from .channel import ChannelConfig
from .network import Network

__all__ = [
    "CrashInjector",
    "RestartInjector",
    "StateCorruptionInjector",
    "MessageLossBurst",
    "TamperingIntruder",
]


def _delay_until(network: Network, time: float) -> float:
    """Delay from now to the absolute instant ``time``, clamped to zero:
    an injector armed after its instant has passed fires immediately
    instead of scheduling into the past."""
    return max(0.0, time - network.simulator.now)


@dataclass(frozen=True)
class CrashInjector:
    """Crash ``pid`` at ``time``."""

    time: float
    pid: Hashable

    def arm(self, network: Network) -> None:
        network.simulator.schedule(
            _delay_until(network, self.time),
            lambda: network.crash(self.pid),
        )


@dataclass(frozen=True)
class RestartInjector:
    """Restart ``pid`` at ``time`` (no-op if it is not crashed)."""

    time: float
    pid: Hashable

    def arm(self, network: Network) -> None:
        network.simulator.schedule(
            _delay_until(network, self.time),
            lambda: network.restart(self.pid),
        )


@dataclass(frozen=True)
class StateCorruptionInjector:
    """Overwrite state variables of ``pid`` at ``time``."""

    time: float
    pid: Hashable
    updates: Tuple[Tuple[str, Any], ...]

    @staticmethod
    def of(time: float, pid: Hashable, **updates: Any) -> "StateCorruptionInjector":
        return StateCorruptionInjector(
            time=time, pid=pid, updates=tuple(sorted(updates.items()))
        )

    def arm(self, network: Network) -> None:
        network.simulator.schedule(
            _delay_until(network, self.time),
            lambda: network.corrupt(self.pid, dict(self.updates)),
        )


@dataclass(frozen=True)
class TamperingIntruder:
    """An intruder on the ``source -> destination`` channel during
    ``[start, start + duration)``: every message in transit is rewritten
    by ``transform`` (SIEFAST's intruder modelling, Section 7).

    A detector against this intruder is an authentication check; see
    ``tests/test_sim_intruder.py`` for a worked scenario.
    """

    start: float
    duration: float
    source: Hashable
    destination: Hashable
    transform: Any  # Callable[[message], message]

    def arm(self, network: Network) -> None:
        network.simulator.schedule(
            _delay_until(network, self.start),
            lambda: network.set_tamperer(
                self.source, self.destination, self.transform
            ),
        )
        network.simulator.schedule(
            _delay_until(network, self.start + self.duration),
            lambda: network.set_tamperer(self.source, self.destination, None),
        )


@dataclass(frozen=True)
class MessageLossBurst:
    """Drop everything on the ``source -> destination`` channel during
    ``[start, start + duration)``."""

    start: float
    duration: float
    source: Hashable
    destination: Hashable

    def arm(self, network: Network) -> None:
        original = network.channel(self.source, self.destination)
        lossy = ChannelConfig(
            delay=original.delay,
            jitter=original.jitter,
            loss_probability=1.0,
            duplication_probability=original.duplication_probability,
        )
        network.simulator.schedule(
            _delay_until(network, self.start),
            lambda: network.set_channel(self.source, self.destination, lossy),
        )
        network.simulator.schedule(
            _delay_until(network, self.start + self.duration),
            lambda: network.set_channel(self.source, self.destination, original),
        )
