"""A message-passing token ring — the *distributed simulation* of the
verified protocol.

SIEFAST's pitch (paper Section 7) is running the processes of a
distributed program in parallel, with some components implemented and
others simulated.  This module is that story for the token ring /
mutual-exclusion application whose guarded-command model is verified in
:mod:`repro.programs.mutual_exclusion`:

- :class:`RingProcess` — holds the token, performs one critical-section
  visit (modelled as a timed work period), then sends ``"token"`` to
  its successor over a (possibly lossy) channel;
- process 0 additionally runs the **regeneration corrector** as a
  *watchdog detector*: if no token has passed through it for
  ``regeneration_timeout`` time units, it declares the token lost and
  regenerates it.  This is the timeout implementation of the model's
  atomic "no token anywhere" guard — the classical refinement of a
  global detector into a local timer, with the classical hazard: an
  aggressive timeout can regenerate while the token still exists,
  transiently breaking the one-token invariant (measured, not hidden —
  see :func:`run_ring_experiment` and the benchmark sweep).

The experiment crashes nothing; the fault is channel loss, exactly the
"token lost in transit" fault-class of the verified model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, List, Optional

from .channel import ChannelConfig
from .network import Network
from .process import SimProcess

__all__ = ["RingProcess", "RingExperimentResult", "run_ring_experiment"]


class RingProcess(SimProcess):
    """One member of the message-passing token ring."""

    def __init__(
        self,
        pid: int,
        size: int,
        hold_time: float = 1.0,
        regeneration_timeout: Optional[float] = None,
    ):
        super().__init__(pid)
        self.size = size
        self.hold_time = hold_time
        self.regeneration_timeout = regeneration_timeout
        self.has_token = False
        self.visits = 0                 #: completed critical-section visits
        self.regenerations = 0          #: corrector activations (pid 0 only)
        self.last_seen = 0.0            #: watchdog bookkeeping (pid 0 only)

    # -- protocol ---------------------------------------------------------
    def on_start(self) -> None:
        if self.pid == 0:
            self.acquire()
            if self.regeneration_timeout is not None:
                self.set_timer("watchdog", self.regeneration_timeout)

    def on_message(self, sender: Hashable, message) -> None:
        if message == "token":
            self.acquire()

    def acquire(self) -> None:
        self.has_token = True
        if self.pid == 0:
            self.last_seen = self.now
        self.set_timer("leave_cs", self.hold_time)

    def on_timer(self, name: str) -> None:
        if name == "leave_cs" and self.has_token:
            self.visits += 1
            self.has_token = False
            self.send((self.pid + 1) % self.size, "token")
        elif name == "watchdog":
            silence = self.now - self.last_seen
            if not self.has_token and silence >= self.regeneration_timeout:
                self.regenerations += 1
                self.acquire()
            self.set_timer("watchdog", self.regeneration_timeout)


@dataclass(frozen=True)
class RingExperimentResult:
    """Measurements from one :func:`run_ring_experiment` run."""

    size: int
    timeout: Optional[float]
    horizon: float
    total_visits: int
    regenerations: int
    max_tokens_observed: int   #: >1 means the corrector transiently duplicated
    starved: bool              #: some process never entered its CS

    def as_row(self) -> str:
        timeout = f"{self.timeout:5.1f}" if self.timeout is not None else " none"
        return (
            f"timeout={timeout}  visits={self.total_visits:4d}  "
            f"regenerations={self.regenerations:2d}  "
            f"max_tokens={self.max_tokens_observed}  "
            f"starved={'yes' if self.starved else 'no'}"
        )


def run_ring_experiment(
    size: int = 4,
    timeout: Optional[float] = 12.0,
    loss_probability: float = 0.05,
    horizon: float = 400.0,
    seed: int = 0,
) -> RingExperimentResult:
    """Run the message-passing ring under channel loss.

    ``timeout=None`` disables the corrector (the intolerant ring: one
    lost token starves everyone forever).  Token multiplicity is sampled
    through a global-predicate monitor; note in-flight tokens are
    invisible to it, so ``max_tokens_observed`` undercounts only
    transient duplication, never inflates it.
    """
    network = Network(
        seed=seed,
        default_channel=ChannelConfig(delay=0.3, jitter=0.1,
                                      loss_probability=loss_probability),
    )
    processes: List[RingProcess] = [
        network.add_process(
            RingProcess(pid, size, regeneration_timeout=timeout)
        )
        for pid in range(size)
    ]

    from .monitors import PredicateMonitor

    token_counts: List[int] = []

    def count_tokens(snapshot) -> bool:
        holders = sum(1 for s in snapshot.values() if s["has_token"])
        token_counts.append(holders)
        return holders <= 1

    monitor = PredicateMonitor(network, count_tokens, period=0.5,
                               name="≤1 token")
    network.run(until=horizon)

    return RingExperimentResult(
        size=size,
        timeout=timeout,
        horizon=horizon,
        total_visits=sum(p.visits for p in processes),
        regenerations=processes[0].regenerations,
        max_tokens_observed=max(token_counts) if token_counts else 0,
        starved=any(p.visits == 0 for p in processes),
    )
