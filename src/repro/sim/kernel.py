"""A deterministic discrete-event simulation kernel.

Events are ``(time, sequence, callback)`` triples in a heap; ties in
time break by insertion order, so two runs with the same seed and the
same schedule of calls are bit-identical — a property the test suite
asserts, since reproducibility is what makes simulation results
citable.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, List, Optional, Tuple

__all__ = ["Simulator"]


class Simulator:
    """The event loop: schedule callbacks at future instants, run them
    in timestamp order."""

    def __init__(self):
        self._queue: List[Tuple[float, int, Callable[[], None]]] = []
        self._sequence = itertools.count()
        self._now = 0.0
        self._running = False
        self.events_processed = 0

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    def schedule(self, delay: float, callback: Callable[[], None]) -> None:
        """Run ``callback`` at ``now + delay`` (delay must be ≥ 0)."""
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        heapq.heappush(
            self._queue, (self._now + delay, next(self._sequence), callback)
        )

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> float:
        """Process events until the queue drains, ``until`` is reached,
        or ``max_events`` have run.  Returns the simulation time."""
        processed = 0
        while self._queue:
            time, _, callback = self._queue[0]
            if until is not None and time > until:
                self._now = until
                return self._now
            heapq.heappop(self._queue)
            self._now = time
            callback()
            self.events_processed += 1
            processed += 1
            if max_events is not None and processed >= max_events:
                break
        if until is not None and not self._queue:
            self._now = max(self._now, until)
        return self._now

    def pending(self) -> int:
        """Number of events still queued."""
        return len(self._queue)
