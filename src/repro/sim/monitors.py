"""Online global-predicate monitors.

A :class:`PredicateMonitor` samples the network's global snapshot
periodically and records when a predicate holds — the runtime analogue
of a detector (its detection predicate is the monitored predicate, its
witness is the recorded observation).  Helpers extract the measurements
the benchmarks report: detection latency (first time the predicate is
observed true) and convergence time (start of the final interval during
which it was continuously observed true).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Hashable, List, Optional, Tuple

from .network import Network

__all__ = ["PredicateMonitor"]

GlobalPredicate = Callable[[Dict[Hashable, Dict[str, Any]]], bool]


class PredicateMonitor:
    """Sample a global predicate every ``period`` time units.

    The monitor must be armed *before* the network runs; it reschedules
    itself until ``horizon`` (if given) or indefinitely while the run
    lasts.

    ``on_transition`` (optional) is called with ``(time, value)`` at the
    first sample and thereafter whenever the sampled value differs from
    the previous sample — letting observers log predicate flips without
    re-walking ``samples`` afterwards.
    """

    def __init__(
        self,
        network: Network,
        predicate: GlobalPredicate,
        period: float = 1.0,
        horizon: Optional[float] = None,
        name: str = "monitor",
        on_transition: Optional[Callable[[float, bool], None]] = None,
    ):
        self.network = network
        self.predicate = predicate
        self.period = period
        self.horizon = horizon
        self.name = name
        self.on_transition = on_transition
        self.samples: List[Tuple[float, bool]] = []
        self._detached = False
        self._arm()

    def _arm(self) -> None:
        self.network.simulator.schedule(0.0, self._sample)

    def detach(self) -> None:
        """Stop the monitor before its horizon: no further samples are
        taken or recorded, and the sample loop stops rescheduling.

        The simulator has no event cancellation, so the already-queued
        sample callback still fires once — the detached flag turns it
        into a no-op, which is what keeps a detached monitor from
        resurrecting itself (the loop used to reschedule itself on
        every firing, so a stale callback restarted sampling forever).
        Detaching is idempotent and safe both before the network runs
        and mid-run.
        """
        self._detached = True

    def _sample(self) -> None:
        if self._detached:
            return
        now = self.network.simulator.now
        if self.horizon is not None and now > self.horizon:
            return
        value = bool(self.predicate(self.network.global_snapshot()))
        flipped = not self.samples or self.samples[-1][1] != value
        self.samples.append((now, value))
        if flipped and self.on_transition is not None:
            self.on_transition(now, value)
        self.network.simulator.schedule(self.period, self._sample)

    # -- measurements -----------------------------------------------------------
    def first_true(self) -> Optional[float]:
        """Detection latency: the first sampling instant at which the
        predicate held, or None."""
        for time, value in self.samples:
            if value:
                return time
        return None

    def convergence_time(self) -> Optional[float]:
        """Start of the final continuously-true interval — the observed
        convergence instant — or None if the run did not end true."""
        if not self.samples or not self.samples[-1][1]:
            return None
        start = self.samples[-1][0]
        for time, value in reversed(self.samples):
            if not value:
                break
            start = time
        return start

    def fraction_true(self) -> float:
        """Fraction of samples at which the predicate held (availability
        of the monitored property)."""
        if not self.samples:
            return 0.0
        return sum(1 for _, v in self.samples if v) / len(self.samples)
