"""Hierarchical and distributed construction of detectors and
correctors.

The paper's introduction points to companion methods ([4]) that show
"how to construct them hierarchically and distributively".  This module
implements the two classical constructions for *conjunctive* global
predicates ``X = X₁ ∧ … ∧ Xₙ``, which cannot be checked atomically in a
distributed system:

- :func:`sequential_detector` — a scan: one cursor sweeps the conjuncts
  in order, advancing past conjuncts that hold and restarting when the
  conjunct under the cursor fails; the witness is raised after a full
  clean sweep.  Sound when each conjunct, once true, stays true while
  earlier conjuncts hold (e.g. stable conjuncts) — the classical
  hierarchical detector of [4].
- :func:`parallel_detector` — one witness bit per conjunct, raised and
  lowered locally (a *distributed* detector), plus a root witness
  raised when every local witness is up.  Sound under the same
  stability caveat; each local detector can run at a different process.

- :func:`wave_corrector` — the corrector analogue: given per-conjunct
  corrector actions, sequence them behind a cursor so correction
  proceeds as a wave from conjunct 1 to n (each stage only runs once
  the earlier stages' predicates hold), yielding a corrector for the
  conjunction when each stage preserves the earlier conjuncts — the
  hierarchical corrector stack of [5] (masking via nonmasking).

Each factory returns the composed :class:`~repro.components.library.ComponentInstance`
so the claim "the composition refines the detector/corrector spec" is a
single ``verify()`` call — which the test suite exercises both
positively and, for compositions violating the stability caveat,
negatively.
"""

from __future__ import annotations

from typing import List, Sequence

from ..core import (
    Action,
    Predicate,
    Program,
    TRUE,
    Variable,
    assign,
)
from .library import ComponentInstance

__all__ = ["sequential_detector", "parallel_detector", "wave_corrector"]


def _conjunction(conjuncts: Sequence[Predicate]) -> Predicate:
    combined = conjuncts[0]
    for conjunct in conjuncts[1:]:
        combined = combined & conjunct
    return combined


def sequential_detector(
    observed: Sequence[Variable],
    conjuncts: Sequence[Predicate],
    cursor_name: str = "idx",
    flag_name: str = "zall",
) -> ComponentInstance:
    """A hierarchical detector for ``X₁ ∧ … ∧ Xₙ`` with a scanning
    cursor.

    The component adds a cursor over ``0..n`` and a witness flag.  It
    advances past a holding conjunct, restarts on a failing one, lowers
    the witness when the conjunction fails, and raises it after a
    complete sweep.
    """
    count = len(conjuncts)
    if count == 0:
        raise ValueError("need at least one conjunct")
    cursor = Variable(cursor_name, list(range(count + 1)))
    flag = Variable(flag_name, [False, True])
    everything = _conjunction(conjuncts).rename("∧X")
    witness = Predicate(lambda s, f=flag_name: s[f], name=flag_name)

    def at_cursor_holds(state) -> bool:
        index = state[cursor_name]
        return index < count and conjuncts[index](state)

    def at_cursor_fails(state) -> bool:
        index = state[cursor_name]
        return index < count and not conjuncts[index](state)

    actions: List[Action] = [
        Action(
            f"{cursor_name}_advance",
            Predicate(at_cursor_holds, name="conjunct at cursor holds"),
            assign(**{cursor_name: lambda s: s[cursor_name] + 1}),
        ),
        Action(
            f"{cursor_name}_restart",
            Predicate(at_cursor_fails, name="conjunct at cursor fails"),
            assign(**{cursor_name: 0, flag_name: False}),
        ),
        Action(
            f"{flag_name}_raise",
            Predicate(
                lambda s, n=count: s[cursor_name] == n and not s[flag_name],
                name="sweep complete",
            ),
            assign(**{flag_name: True}),
        ),
        Action(
            f"{flag_name}_lower",
            witness & ~everything,
            assign(**{flag_name: False, cursor_name: 0}),
        ),
    ]
    program = Program(
        list(observed) + [cursor, flag],
        actions,
        name=f"sequential_detector({count} conjuncts)",
    )
    consistent = Predicate(
        lambda s, n=count, cs=conjuncts: (
            all(cs[i](s) for i in range(min(s[cursor_name], n)))
            and (not s[flag_name] or all(c(s) for c in cs))
        ),
        name="U_seq (prefix verified)",
    )
    return ComponentInstance(
        kind="detector",
        program=program,
        witness=witness,
        claim=everything,
        from_=consistent,
    )


def parallel_detector(
    observed: Sequence[Variable],
    conjuncts: Sequence[Predicate],
    flag_prefix: str = "z",
    root_name: str = "zroot",
) -> ComponentInstance:
    """A distributed detector: one local witness per conjunct plus a
    root witness over the local ones."""
    count = len(conjuncts)
    if count == 0:
        raise ValueError("need at least one conjunct")
    local_flags = [Variable(f"{flag_prefix}{i}", [False, True])
                   for i in range(count)]
    root = Variable(root_name, [False, True])
    everything = _conjunction(conjuncts).rename("∧X")
    root_witness = Predicate(lambda s, r=root_name: s[r], name=root_name)

    actions: List[Action] = []
    for index, conjunct in enumerate(conjuncts):
        local = f"{flag_prefix}{index}"
        actions.append(
            Action(
                f"{local}_raise",
                conjunct & Predicate(lambda s, f=local: not s[f], name=f"¬{f'{local}'}"),
                assign(**{local: True}),
            )
        )
        actions.append(
            Action(
                f"{local}_lower",
                ~conjunct & Predicate(lambda s, f=local: s[f], name=local),
                assign(**{local: False}),
            )
        )
    all_local = Predicate(
        lambda s, n=count, p=flag_prefix: all(s[f"{p}{i}"] for i in range(n)),
        name="all local witnesses up",
    )
    actions.append(
        Action(
            f"{root_name}_raise",
            all_local & ~root_witness,
            assign(**{root_name: True}),
        )
    )
    actions.append(
        Action(
            f"{root_name}_lower",
            root_witness & ~everything,
            assign(**{root_name: False}),
        )
    )
    program = Program(
        list(observed) + local_flags + [root],
        actions,
        name=f"parallel_detector({count} conjuncts)",
    )
    consistent = Predicate(
        lambda s, n=count, p=flag_prefix, cs=conjuncts, r=root_name: (
            all((not s[f"{p}{i}"]) or cs[i](s) for i in range(n))
            and ((not s[r]) or all(c(s) for c in cs))
        ),
        name="U_par (witnesses truthful)",
    )
    return ComponentInstance(
        kind="detector",
        program=program,
        witness=root_witness,
        claim=everything,
        from_=consistent,
    )


def wave_corrector(
    observed: Sequence[Variable],
    conjuncts: Sequence[Predicate],
    repairs: Sequence[Action],
    flag_name: str = "zfix",
) -> ComponentInstance:
    """A hierarchical corrector for ``X₁ ∧ … ∧ Xₙ``: stage ``i``'s
    repair action runs only once stages ``1..i-1`` hold (the wave), and
    a witness is raised once the whole conjunction holds.

    Each ``repairs[i]`` must truthify ``conjuncts[i]``; the composition
    is a corrector for the conjunction when every repair preserves the
    earlier conjuncts (verified, not assumed — ``verify()`` fails
    otherwise).
    """
    if len(repairs) != len(conjuncts):
        raise ValueError("one repair action per conjunct required")
    count = len(conjuncts)
    flag = Variable(flag_name, [False, True])
    everything = _conjunction(conjuncts).rename("∧X")
    witness = Predicate(lambda s, f=flag_name: s[f], name=flag_name)

    staged: List[Action] = []
    for index, (conjunct, repair) in enumerate(zip(conjuncts, repairs)):
        earlier_hold = Predicate(
            lambda s, i=index, cs=conjuncts: all(cs[j](s) for j in range(i)),
            name=f"stages<{index} hold",
        )
        staged.append(repair.restrict(earlier_hold & ~conjunct))
    staged.append(
        Action(
            f"{flag_name}_raise",
            everything & ~witness,
            assign(**{flag_name: True}),
        )
    )
    program = Program(
        list(observed) + [flag],
        staged,
        name=f"wave_corrector({count} stages)",
    )
    consistent = witness.implies(everything).rename("U_wave")
    return ComponentInstance(
        kind="corrector",
        program=program,
        witness=witness,
        claim=everything,
        from_=consistent,
    )
