"""The reusable component framework (Section 7's closing programme).

The paper observes that "detectors and correctors required in one program
as well as across different programs are often similar" and proposes a
framework of reusable components.  This package provides the classical
instances the paper names:

detectors — comparators, acceptance tests, watchdogs;
correctors — majority voters, checkpoint/rollback recovery, resets,
recovery blocks (alternate procedures).

Each factory returns a :class:`ComponentInstance` bundling the component
program fragment with its witness/detection (or correction) predicates
and the predicate to verify it from, so a single call each to
:func:`repro.core.is_detector` / :func:`repro.core.is_corrector`
certifies the instantiation.
"""

from .hierarchy import parallel_detector, sequential_detector, wave_corrector
from .library import (
    ComponentInstance,
    acceptance_test,
    checkpoint_rollback,
    comparator,
    majority_voter,
    recovery_block,
    watchdog,
)

__all__ = [
    "ComponentInstance",
    "comparator",
    "acceptance_test",
    "watchdog",
    "majority_voter",
    "checkpoint_rollback",
    "recovery_block",
    "sequential_detector",
    "parallel_detector",
    "wave_corrector",
]
