"""Reusable detector and corrector components.

Every factory returns a :class:`ComponentInstance`; the ``kind`` field
says whether the instance's ``claim`` predicates should be checked with
:func:`repro.core.is_detector` (witness *detects* detection) or
:func:`repro.core.is_corrector` (witness *corrects* correction) —
:meth:`ComponentInstance.verify` dispatches accordingly.

Components are verified *in isolation*: the instance's variables include
the observed ones, and the component's own actions are the only writers
during verification.  Interference-freedom under composition is the
composing program's obligation (checked by the tolerance machinery on
the composed system), exactly as in the paper's framework discussion.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Hashable, Sequence

from ..core import (
    Action,
    CheckResult,
    Predicate,
    Program,
    TRUE,
    Variable,
    assign,
    is_corrector,
    is_detector,
)
from ..core.state import BOTTOM

__all__ = [
    "ComponentInstance",
    "comparator",
    "acceptance_test",
    "watchdog",
    "majority_voter",
    "checkpoint_rollback",
    "recovery_block",
]


@dataclass(frozen=True)
class ComponentInstance:
    """A component program with its specification predicates."""

    kind: str                 #: "detector" or "corrector"
    program: Program
    witness: Predicate        #: Z
    claim: Predicate          #: X — detection or correction predicate
    from_: Predicate          #: U — the predicate the spec is refined from

    def verify(self) -> CheckResult:
        """Model-check the component against its own specification."""
        if self.kind == "detector":
            return is_detector(self.program, self.witness, self.claim, self.from_)
        if self.kind == "corrector":
            return is_corrector(self.program, self.witness, self.claim, self.from_)
        raise ValueError(f"unknown component kind {self.kind!r}")


def comparator(
    left: Variable,
    right: Variable,
    flag_name: str = "eq",
) -> ComponentInstance:
    """Detector: the witness flag is raised exactly while the two
    observed variables agree (e.g. duplicated computation results).

    The component never writes the observed variables; the flag is
    raised when they agree and lowered when they disagree, so Safeness
    holds from the states where the flag is not already wrong.
    """
    flag = Variable(flag_name, [False, True])
    agree = Predicate(
        lambda s, a=left.name, b=right.name: s[a] == s[b],
        name=f"{left.name}={right.name}",
    )
    raised = Predicate(lambda s, f=flag_name: s[f], name=flag_name)
    program = Program(
        variables=[left, right, flag],
        actions=[
            Action(
                f"{flag_name}_raise",
                agree & ~raised,
                assign(**{flag_name: True}),
            ),
            Action(
                f"{flag_name}_lower",
                ~agree & raised,
                assign(**{flag_name: False}),
            ),
        ],
        name=f"comparator({left.name},{right.name})",
    )
    return ComponentInstance(
        kind="detector",
        program=program,
        witness=raised,
        claim=agree,
        from_=raised.implies(agree).rename(f"U({flag_name}⇒agree)"),
    )


def acceptance_test(
    observed: Sequence[Variable],
    test: Callable[..., bool],
    flag_name: str = "accepted",
    test_name: str = "acceptance test",
) -> ComponentInstance:
    """Detector: raise the witness flag when a user predicate over the
    observed variables holds (a recovery-block acceptance test)."""
    flag = Variable(flag_name, [False, True])
    passes = Predicate(
        lambda s, names=[v.name for v in observed], t=test: t(
            *[s[n] for n in names]
        ),
        name=test_name,
    )
    raised = Predicate(lambda s, f=flag_name: s[f], name=flag_name)
    program = Program(
        variables=list(observed) + [flag],
        actions=[
            Action(f"{flag_name}_raise", passes & ~raised,
                   assign(**{flag_name: True})),
            Action(f"{flag_name}_lower", ~passes & raised,
                   assign(**{flag_name: False})),
        ],
        name=f"acceptance({test_name})",
    )
    return ComponentInstance(
        kind="detector",
        program=program,
        witness=raised,
        claim=passes,
        from_=raised.implies(passes).rename(f"U({flag_name}⇒{test_name})"),
    )


def watchdog(
    alive_name: str = "alive",
    limit: int = 3,
    counter_name: str = "missed",
    flag_name: str = "suspect",
) -> ComponentInstance:
    """Detector: suspect a monitored process after ``limit`` consecutive
    missed heartbeats.

    The monitored side owns ``alive`` (sets it True on every heartbeat);
    the watchdog consumes it — resets the miss counter when it sees a
    heartbeat, counts when it does not, and raises ``suspect`` at the
    limit.  In isolation (no heartbeats arriving) the detection
    predicate is "``limit`` heartbeats have been missed"; composed with
    a crash-fault process it detects the crash
    (see :mod:`repro.failure_detectors`).
    """
    alive = Variable(alive_name, [False, True])
    counter = Variable(counter_name, list(range(limit + 1)))
    flag = Variable(flag_name, [False, True])
    timed_out = Predicate(
        lambda s, c=counter_name, lim=limit: s[c] >= lim,
        name=f"{counter_name}≥{limit}",
    )
    raised = Predicate(lambda s, f=flag_name: s[f], name=flag_name)
    program = Program(
        variables=[alive, counter, flag],
        actions=[
            Action(
                "wd_consume",
                Predicate(lambda s, a=alive_name: s[a], name=alive_name),
                assign(**{alive_name: False, counter_name: 0, flag_name: False}),
            ),
            Action(
                "wd_count",
                Predicate(
                    lambda s, a=alive_name, c=counter_name, lim=limit: (
                        not s[a] and s[c] < lim
                    ),
                    name=f"¬{alive_name} ∧ {counter_name}<{limit}",
                ),
                assign(**{counter_name: lambda s, c=counter_name: s[c] + 1}),
            ),
            Action(
                "wd_suspect",
                timed_out & ~raised,
                assign(**{flag_name: True}),
            ),
        ],
        name=f"watchdog({alive_name},limit={limit})",
    )
    return ComponentInstance(
        kind="detector",
        program=program,
        witness=raised,
        claim=timed_out,
        from_=raised.implies(timed_out).rename("U(suspect⇒timeout)"),
    )


def majority_voter(
    inputs: Sequence[Variable],
    output: Variable,
    good_value: Hashable,
) -> ComponentInstance:
    """Corrector: set the output to any majority-confirmed input value
    (the generalized TMR voter, Section 6.1's ``CR``).

    Verified from the states where a majority of inputs carry
    ``good_value`` and the output is unset or already good; the
    correction (and witness) predicate is ``output = good_value``.
    """
    if len(inputs) % 2 == 0:
        raise ValueError("majority voting needs an odd number of inputs")
    names = [v.name for v in inputs]
    unset = Predicate(
        lambda s, o=output.name: s[o] is BOTTOM, name=f"{output.name}=⊥"
    )
    actions = []
    for voted in names:
        others = [n for n in names if n != voted]
        actions.append(
            Action(
                f"vote_{voted}",
                unset
                & Predicate(
                    lambda s, v=voted, o=others: any(
                        s[v] == s[other] for other in o
                    ),
                    name=f"{voted} confirmed",
                ),
                assign(**{output.name: lambda s, v=voted: s[v]}),
            )
        )
    program = Program(
        variables=list(inputs) + [output],
        actions=actions,
        name=f"voter({','.join(names)})",
    )
    corrected = Predicate(
        lambda s, o=output.name, g=good_value: s[o] == g,
        name=f"{output.name}={good_value!r}",
    )
    majority_good = Predicate(
        lambda s, ns=names, g=good_value: (
            sum(1 for n in ns if s[n] == g) * 2 > len(ns)
        ),
        name="majority good",
    )
    from_ = (
        majority_good
        & Predicate(
            lambda s, o=output.name, g=good_value: s[o] is BOTTOM or s[o] == g,
            name=f"{output.name}∈{{⊥,{good_value!r}}}",
        )
    ).rename("U(voter)")
    return ComponentInstance(
        kind="corrector",
        program=program,
        witness=corrected,
        claim=corrected,
        from_=from_,
    )


def checkpoint_rollback(
    state_var: Variable,
    good: Callable[[Hashable], bool],
    checkpoint_name: str = "chk",
) -> ComponentInstance:
    """Corrector: rollback recovery.  A checkpoint variable shadows the
    observed variable while it is good; when the observed value turns
    bad, it is rolled back to the checkpoint.

    The correction predicate is ``good(x)``; verified from the states
    where the checkpoint itself is good.
    """
    good_values = [v for v in state_var.domain if good(v)]
    if not good_values:
        raise ValueError("no good value in the variable's domain")
    checkpoint = Variable(checkpoint_name, list(state_var.domain))
    x_good = Predicate(
        lambda s, n=state_var.name, g=good: g(s[n]), name=f"good({state_var.name})"
    )
    chk_good = Predicate(
        lambda s, n=checkpoint_name, g=good: g(s[n]),
        name=f"good({checkpoint_name})",
    )
    program = Program(
        variables=[state_var, checkpoint],
        actions=[
            Action(
                "take_checkpoint",
                x_good
                & Predicate(
                    lambda s, n=state_var.name, c=checkpoint_name: s[c] != s[n],
                    name=f"{checkpoint_name}≠{state_var.name}",
                ),
                assign(**{checkpoint_name: lambda s, n=state_var.name: s[n]}),
            ),
            Action(
                "rollback",
                ~x_good,
                assign(**{state_var.name: lambda s, c=checkpoint_name: s[c]}),
            ),
        ],
        name=f"checkpoint_rollback({state_var.name})",
    )
    return ComponentInstance(
        kind="corrector",
        program=program,
        witness=x_good,
        claim=x_good,
        from_=chk_good.rename("U(chk good)"),
    )


def recovery_block(
    result: Variable,
    primary_value: Hashable,
    alternate_value: Hashable,
    acceptable: Callable[[Hashable], bool],
) -> ComponentInstance:
    """Corrector: Randell's recovery block in miniature — run the
    primary; if its result fails the acceptance test, run the alternate.

    The correction predicate is "the result is acceptable"; the
    alternate must produce an acceptable value for the component to be a
    corrector (verified, not assumed).
    """
    unset = Predicate(
        lambda s, r=result.name: s[r] is BOTTOM, name=f"{result.name}=⊥"
    )
    acceptable_pred = Predicate(
        lambda s, r=result.name, a=acceptable: (
            s[r] is not BOTTOM and a(s[r])
        ),
        name=f"acceptable({result.name})",
    )
    program = Program(
        variables=[result],
        actions=[
            Action("primary", unset, assign(**{result.name: primary_value})),
            Action(
                "alternate",
                ~unset & ~acceptable_pred,
                assign(**{result.name: alternate_value}),
            ),
        ],
        name=f"recovery_block({result.name})",
    )
    return ComponentInstance(
        kind="corrector",
        program=program,
        witness=acceptable_pred,
        claim=acceptable_pred,
        from_=TRUE,
    )
