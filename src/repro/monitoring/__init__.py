"""Syndrome-vector detector banks and an online monitoring runtime.

The paper's Section 3 treats detectors one at a time: a witness
predicate ``Z`` refining a detection predicate ``X``, checked by the
theory layer (:mod:`repro.theory.detectors`) over whole transition
systems.  This package is the operational view the QEC formalization
makes explicit (SNIPPETS Def 8/Def 9): *all* of a program's detectors
at once, as a bank whose joint verdict at a state is a syndrome vector
in Z2^m — and a runtime that maintains that vector online over an
event stream instead of a materialized state space.

- :mod:`~repro.monitoring.syndrome` — syndromes as packed ints
  (weight, distance, rendering);
- :mod:`~repro.monitoring.banks` — :class:`DetectorBank`: predicates
  compiled per-schema (raw values-tuple sweeps) and per-index
  (big-int rows), fire counts and fault-coverage reports;
- :mod:`~repro.monitoring.decoder` — :class:`SyndromeDecoder`:
  exact-match corrector table with nearest-syndrome fallback;
- :mod:`~repro.monitoring.runtime` — :class:`MonitorRuntime`: the
  frame-aware incremental hot path plus the asyncio shell;
- :mod:`~repro.monitoring.sources` — campaign-log replay, JSONL files,
  socket feeds, and live simulator hooks;
- :mod:`~repro.monitoring.telemetry` — fire counts, detection-latency
  histograms, events/sec, as JSONL and formatted reports.

CLI: ``repro monitor --replay <campaign.jsonl>``.
"""

from .banks import BankCoverage, BankDetector, DetectorBank
from .decoder import CorrectorEntry, Decoded, SyndromeDecoder
from .runtime import FAULT_KINDS, MonitorRuntime
from .sources import (
    aiter_events,
    attach_monitors,
    attach_network,
    campaign_bank,
    campaign_to_events,
    iter_campaign_events,
    jsonl_source,
    normalize_event,
    open_socket_source,
    socket_source,
)
from .syndrome import (
    distance,
    fired_indices,
    fired_names,
    format_syndrome,
    parse_syndrome,
    weight,
)
from .telemetry import (
    LATENCY_BUCKETS,
    TELEMETRY_SCHEMA_VERSION,
    TelemetrySink,
    format_monitor_summary,
    latency_histogram,
)

__all__ = [
    "BankDetector", "DetectorBank", "BankCoverage",
    "CorrectorEntry", "Decoded", "SyndromeDecoder",
    "MonitorRuntime", "FAULT_KINDS",
    "aiter_events", "attach_monitors", "attach_network",
    "campaign_bank", "campaign_to_events", "iter_campaign_events",
    "jsonl_source", "normalize_event",
    "open_socket_source", "socket_source",
    "weight", "distance", "fired_indices", "fired_names",
    "format_syndrome", "parse_syndrome",
    "TelemetrySink", "TELEMETRY_SCHEMA_VERSION", "LATENCY_BUCKETS",
    "latency_histogram", "format_monitor_summary",
]
