"""Structured telemetry for the monitoring runtime.

The runtime's hot path only bumps counters; everything with a cost —
JSONL records, histograms, percentile summaries — happens on syndrome
*transitions* (rare) or at summary time (once).  The JSONL stream uses
the same conventions as the campaign log (:mod:`repro.campaigns.report`):
one JSON object per line, sorted keys, a ``schema_version`` stamp on
every record, wall-clock-dependent values only under keys starting with
``"wall"``.
"""

from __future__ import annotations

import json
from typing import Any, Dict, IO, List, Optional, Sequence, Tuple

from ..campaigns.report import percentile
from .syndrome import fired_names, format_syndrome

__all__ = [
    "TELEMETRY_SCHEMA_VERSION",
    "LATENCY_BUCKETS",
    "latency_histogram",
    "TelemetrySink",
    "format_monitor_summary",
]

TELEMETRY_SCHEMA_VERSION = 1

#: detection-latency histogram bucket upper bounds, in simulation time
#: units (doubling buckets; one overflow bucket is appended)
LATENCY_BUCKETS: Tuple[float, ...] = (0.5, 1.0, 2.0, 4.0, 8.0, 16.0)


def latency_histogram(
    values: Sequence[float],
    buckets: Sequence[float] = LATENCY_BUCKETS,
) -> List[Dict[str, Any]]:
    """Bucket counts with inclusive upper bounds (Prometheus ``le``
    style, non-cumulative), plus a final ``"inf"`` overflow bucket."""
    counts = [0] * (len(buckets) + 1)
    for value in values:
        for position, bound in enumerate(buckets):
            if value <= bound:
                counts[position] += 1
                break
        else:
            counts[-1] += 1
    rendered: List[Dict[str, Any]] = [
        {"le": bound, "count": count}
        for bound, count in zip(buckets, counts)
    ]
    rendered.append({"le": "inf", "count": counts[-1]})
    return rendered


class TelemetrySink:
    """Counters plus an optional JSONL stream for one runtime.

    Per-detector fire counts are counted on *rising edges* (a detector
    that stays firing across ten transitions fired once), detection
    latencies are whatever the runtime measures between a fault event
    and the next healthy→unhealthy syndrome transition.
    """

    def __init__(
        self,
        detector_names: Sequence[str],
        stream: Optional[IO[str]] = None,
    ):
        self.detector_names: Tuple[str, ...] = tuple(detector_names)
        self.m = len(self.detector_names)
        self.stream = stream
        self.transitions = 0
        self.corrections = 0
        self.resets = 0
        self.fires: List[int] = [0] * self.m
        self.latencies: List[float] = []

    # -- hot-side recording (called on transitions only) -------------------
    def record_transition(self, time: float, old: int, new: int) -> None:
        self.transitions += 1
        rising = new & ~old
        fires = self.fires
        while rising:
            low = rising & -rising
            fires[low.bit_length() - 1] += 1
            rising ^= low
        self._emit({
            "event": "syndrome",
            "time": time,
            "syndrome": format_syndrome(new, self.m),
            "fired": fired_names(new, self.detector_names),
        })

    def record_latency(self, time: float, latency: float) -> None:
        self.latencies.append(latency)
        self._emit({"event": "detection", "time": time, "latency": latency})

    def record_correction(self, time: float, decoded) -> None:
        self.corrections += 1
        self._emit({
            "event": "correction",
            "time": time,
            "corrector": decoded.entry.name,
            "exact": decoded.exact,
            "distance": decoded.distance,
        })

    def record_reset(self, time: float) -> None:
        self.resets += 1
        self._emit({"event": "reset", "time": time})

    def _emit(self, record: Dict[str, Any]) -> None:
        if self.stream is None:
            return
        record = {"schema_version": TELEMETRY_SCHEMA_VERSION, **record}
        self.stream.write(json.dumps(record, sort_keys=True, default=str))
        self.stream.write("\n")

    # -- summary -----------------------------------------------------------
    def summary(
        self, events: int = 0, wall_s: Optional[float] = None
    ) -> Dict[str, Any]:
        latencies = self.latencies
        return {
            "schema_version": TELEMETRY_SCHEMA_VERSION,
            "events": events,
            "wall_s": wall_s,
            "events_per_sec": (
                events / wall_s if wall_s else None
            ),
            "transitions": self.transitions,
            "corrections": self.corrections,
            "resets": self.resets,
            "fire_counts": dict(zip(self.detector_names, self.fires)),
            "detection_latency": {
                "n": len(latencies),
                "min": min(latencies) if latencies else None,
                "max": max(latencies) if latencies else None,
                "mean": (
                    sum(latencies) / len(latencies) if latencies else None
                ),
                **{
                    f"p{q}": percentile(latencies, q) for q in (50, 90, 99)
                },
                "histogram": latency_histogram(latencies),
            },
        }

    def write_summary(
        self, events: int = 0, wall_s: Optional[float] = None
    ) -> Dict[str, Any]:
        summary = self.summary(events, wall_s)
        self._emit({"event": "monitor_summary", **summary})
        return summary


def _fmt(value: Optional[float]) -> str:
    return "-" if value is None else f"{value:.2f}"


def format_monitor_summary(summary: Dict[str, Any]) -> str:
    """Human-readable monitoring report, e.g.::

        == monitor: 420 events, 7 syndrome transitions, 2 corrections
           safety_violated                  fired 3x
           legitimacy_lost                  fired 4x
           detection latency: p50=0.50 p90=1.00 p99=1.00  (n=3)
    """
    rate = summary.get("events_per_sec")
    head = (
        f"== monitor: {summary['events']} events, "
        f"{summary['transitions']} syndrome transitions, "
        f"{summary['corrections']} corrections"
    )
    if rate:
        head += f" ({rate:,.0f} events/sec)"
    lines = [head]
    for name, fires in summary["fire_counts"].items():
        lines.append(f"   {name:32s} fired {fires}x")
    latency = summary["detection_latency"]
    lines.append(
        "   detection latency: "
        + " ".join(f"p{q}={_fmt(latency[f'p{q}'])}" for q in (50, 90, 99))
        + f"  (n={latency['n']})"
    )
    return "\n".join(lines)
