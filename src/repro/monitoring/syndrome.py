"""Syndrome vectors in Z2^m, packed into Python ints.

Following the QEC formalization (SNIPPETS Def 9), a *syndrome* is the
violation pattern of a detector bank at a state: bit ``j`` is set iff
detector ``j`` fires.  A syndrome is therefore a vector in Z2^m, and we
represent it the same way the region engine represents state sets — as
one arbitrary-precision int — so the vector-space operations the
decoder needs are single big-int instructions:

- addition in Z2^m is ``^`` (XOR);
- the Hamming weight is ``int.bit_count``;
- the Hamming distance between two syndromes is ``(a ^ b).bit_count()``.

The zero syndrome is the healthy pattern: no detector fires.  Everything
here is a pure function of the packed int (plus the bank's detector
names for rendering); the bank and runtime pass raw ints around and
only call into this module at reporting boundaries.
"""

from __future__ import annotations

from typing import Iterator, List, Sequence

__all__ = [
    "weight",
    "distance",
    "fired_indices",
    "fired_names",
    "format_syndrome",
    "parse_syndrome",
]


def weight(syndrome: int) -> int:
    """Hamming weight: how many detectors fire."""
    return syndrome.bit_count()


def distance(a: int, b: int) -> int:
    """Hamming distance between two syndromes (weight of their Z2 sum)."""
    return (a ^ b).bit_count()


def fired_indices(syndrome: int) -> Iterator[int]:
    """Indices of the set bits, ascending."""
    while syndrome:
        low = syndrome & -syndrome
        yield low.bit_length() - 1
        syndrome ^= low


def fired_names(syndrome: int, names: Sequence[str]) -> List[str]:
    """Detector names of the set bits, in bank order."""
    return [names[j] for j in fired_indices(syndrome)]


def format_syndrome(syndrome: int, m: int) -> str:
    """The vector as a bit string, detector 0 leftmost: ``m=4``,
    syndrome ``0b0101`` renders as ``"1010"`` (detectors 0 and 2)."""
    return "".join("1" if syndrome >> j & 1 else "0" for j in range(m))


def parse_syndrome(text: str) -> int:
    """Inverse of :func:`format_syndrome` (detector 0 leftmost)."""
    bits = 0
    for j, ch in enumerate(text.strip()):
        if ch == "1":
            bits |= 1 << j
        elif ch != "0":
            raise ValueError(f"syndrome strings are over {{0,1}}: {text!r}")
    return bits
