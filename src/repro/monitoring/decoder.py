"""Syndrome decoding: from violation patterns to registered correctors.

The paper composes every fault-tolerant program from detectors *and*
correctors; a bank's syndrome tells us *that* something is wrong and
which witnesses say so, but recovery needs the step the QEC
formalization calls decoding — choosing the corrector whose target
failure mode best explains the observed pattern.

:class:`SyndromeDecoder` is that map.  Correctors are registered
against the syndrome they are designed for (the pattern their failure
mode provokes); decoding is an exact table hit when the observed
syndrome was registered, and otherwise falls back to the
nearest-syndrome rule: minimum Hamming distance, ties broken by
registration order.  The fallback is what makes a bank degrade
gracefully under fault combinations nobody enumerated — a syndrome one
bit-flip away from a registered pattern still routes to that pattern's
corrector (and the returned :class:`Decoded` says how far the match
was, so callers can refuse distant guesses with ``max_distance``).

The zero syndrome is healthy by definition and never decodes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Union

from .syndrome import distance, format_syndrome, parse_syndrome

__all__ = ["CorrectorEntry", "Decoded", "SyndromeDecoder"]


@dataclass(frozen=True)
class CorrectorEntry:
    """One registered corrector: the syndrome it answers for, a label,
    and an optional callback the runtime invokes when the decoder
    selects it (signature ``callback(runtime, decoded, time)``)."""

    syndrome: int
    name: str
    corrector: Optional[Callable] = None


@dataclass(frozen=True)
class Decoded:
    """A decoding verdict: the selected entry, whether the match was an
    exact table hit, and the Hamming distance to the observed pattern
    (0 iff exact)."""

    entry: CorrectorEntry
    exact: bool
    distance: int


class SyndromeDecoder:
    """Exact-match table plus nearest-syndrome fallback over m detectors.

    ``m`` fixes the vector length (used for rendering and validation);
    build one with :meth:`for_bank` to inherit it from a
    :class:`~repro.monitoring.banks.DetectorBank`.
    """

    def __init__(self, m: int):
        self.m = m
        self._entries: List[CorrectorEntry] = []
        self._exact: Dict[int, CorrectorEntry] = {}

    @classmethod
    def for_bank(cls, bank) -> "SyndromeDecoder":
        return cls(bank.m)

    def register(
        self,
        syndrome: Union[int, str],
        corrector: Optional[Callable] = None,
        name: Optional[str] = None,
    ) -> CorrectorEntry:
        """Register a corrector for ``syndrome`` (a packed int or a
        ``"0110"`` bit string, detector 0 leftmost).  The first
        registration for a pattern wins the exact slot; re-registering
        the same pattern raises, because two correctors answering one
        syndrome is an interference bug, not a fallback situation."""
        if isinstance(syndrome, str):
            syndrome = parse_syndrome(syndrome)
        if syndrome == 0:
            raise ValueError("the zero syndrome is healthy; nothing to correct")
        if syndrome >> self.m:
            raise ValueError(
                f"syndrome {bin(syndrome)} exceeds bank width m={self.m}"
            )
        if syndrome in self._exact:
            raise ValueError(
                f"syndrome {format_syndrome(syndrome, self.m)} already has "
                f"corrector {self._exact[syndrome].name!r}"
            )
        entry = CorrectorEntry(
            syndrome=syndrome,
            name=name or f"corrector@{format_syndrome(syndrome, self.m)}",
            corrector=corrector,
        )
        self._entries.append(entry)
        self._exact[syndrome] = entry
        return entry

    def register_for(
        self,
        bank,
        detector_names: Iterable[str],
        corrector: Optional[Callable] = None,
        name: Optional[str] = None,
    ) -> CorrectorEntry:
        """Register against the pattern "exactly these detectors of
        ``bank`` fire", by name — the readable spelling of
        :meth:`register` when a bank is at hand."""
        positions = {d: j for j, d in enumerate(bank.detector_names)}
        bits = 0
        for detector in detector_names:
            if detector not in positions:
                raise KeyError(detector)
            bits |= 1 << positions[detector]
        return self.register(bits, corrector=corrector, name=name)

    @property
    def entries(self) -> Sequence[CorrectorEntry]:
        return tuple(self._entries)

    def decode(
        self, syndrome: int, max_distance: Optional[int] = None
    ) -> Optional[Decoded]:
        """The corrector for ``syndrome``: exact hit, else the nearest
        registered pattern (ties to earliest registration), else None
        when nothing is registered or the nearest match is farther than
        ``max_distance``.  The zero syndrome always decodes to None."""
        if syndrome == 0:
            return None
        hit = self._exact.get(syndrome)
        if hit is not None:
            return Decoded(entry=hit, exact=True, distance=0)
        best: Optional[CorrectorEntry] = None
        best_distance = -1
        for entry in self._entries:
            d = distance(syndrome, entry.syndrome)
            if best is None or d < best_distance:
                best, best_distance = entry, d
        if best is None:
            return None
        if max_distance is not None and best_distance > max_distance:
            return None
        return Decoded(entry=best, exact=False, distance=best_distance)

    def format_table(self) -> str:
        """The registration table, one line per corrector."""
        lines = [f"== decoder: {len(self._entries)} correctors over m={self.m}"]
        for entry in self._entries:
            lines.append(
                f"   {format_syndrome(entry.syndrome, self.m)} -> {entry.name}"
            )
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:
        return f"SyndromeDecoder(m={self.m}, {len(self._entries)} entries)"
