"""Event sources for the monitoring runtime.

Everything here produces the runtime's plain-dict event shape
(``{"time", "kind", "writes"}``) from somewhere else:

- :func:`iter_campaign_events` — replay a recorded ``repro campaign``
  JSONL log (via :func:`repro.campaigns.report.read_events`): monitor
  ``transition`` records become writes to a variable named after the
  monitor, ``fault`` records keep their kind (opening the runtime's
  detection-latency window), and ``trial_start`` records become stream
  resets.  :func:`campaign_bank` builds the matching two-detector bank.
- :func:`jsonl_source` — an async iterator over an external JSONL
  event file (either raw runtime events or campaign records; detected
  per line).
- :func:`socket_source` / :func:`open_socket_source` — a line-delimited
  JSON feed over an :class:`asyncio.StreamReader` (works with
  ``socket.socketpair()`` in tests, so nothing needs to bind a port).
- :func:`attach_monitors` / :func:`attach_network` — live ingestion
  from a running simulation: :class:`~repro.sim.monitors.PredicateMonitor`
  transitions and :class:`~repro.sim.network.Network` trace events are
  fed into the runtime as they happen, without buffering.
- :func:`aiter_events` — lift any synchronous iterable into an async
  source (for :meth:`MonitorRuntime.run`).
"""

from __future__ import annotations

import asyncio
import json
from typing import (
    Any,
    AsyncIterator,
    Dict,
    Iterable,
    Iterator,
    Mapping,
    Optional,
    Sequence,
)

from ..campaigns.report import read_events
from ..core.predicate import var_eq
from ..core.state import Variable
from .banks import BankDetector, DetectorBank

__all__ = [
    "normalize_event",
    "campaign_to_events",
    "iter_campaign_events",
    "campaign_bank",
    "aiter_events",
    "jsonl_source",
    "socket_source",
    "open_socket_source",
    "attach_monitors",
    "attach_network",
]


# -- record translation -------------------------------------------------------

def _translate(record: Mapping[str, Any]) -> Optional[Dict[str, Any]]:
    """One campaign record → one runtime event (None when the record
    has no runtime meaning — trial ends, campaign bookkeeping)."""
    kind = record.get("event")
    if kind == "transition":
        return {
            "time": float(record.get("time", 0.0)),
            "kind": "write",
            "writes": {record["monitor"]: record["value"]},
        }
    if kind == "fault":
        return {
            "time": float(record.get("time", 0.0)),
            "kind": record.get("kind", "fault"),
            "writes": None,
        }
    if kind == "trial_start":
        return {"time": 0.0, "kind": "reset", "writes": None}
    return None


def campaign_to_events(
    records: Iterable[Mapping[str, Any]]
) -> Iterator[Dict[str, Any]]:
    """Translate campaign-log records into runtime events.

    The campaign runner logs a trial's ``fault`` records *after* its
    ``transition`` records (faults are drained from the network trace
    at trial end), so a trial's events are buffered and re-interleaved
    by simulation time before being yielded — otherwise every fault
    would appear downstream of the detections it caused and no latency
    window would ever close.  Faults win timestamp ties, so a fault
    coinciding with its detection measures latency 0.
    """
    buffer: list = []

    def flush() -> Iterator[Dict[str, Any]]:
        buffer.sort(
            key=lambda e: (e["time"], 0 if e["writes"] is None else 1)
        )
        yield from buffer
        buffer.clear()

    for record in records:
        event = _translate(record)
        if event is None:
            if record.get("event") == "trial_end":
                yield from flush()
            continue
        if event["kind"] == "reset":
            yield from flush()
            yield event
        else:
            buffer.append(event)
    yield from flush()


def iter_campaign_events(path) -> Iterator[Dict[str, Any]]:
    """Replay a recorded campaign JSONL log as runtime events."""
    return campaign_to_events(read_events(path))


def campaign_bank(
    monitors: Sequence[str] = ("safety", "legitimacy"),
    name: str = "campaign",
) -> DetectorBank:
    """The bank matching a campaign replay: one boolean variable per
    monitor (initially True — campaigns start healthy) and one detector
    per monitor firing when it reads False.  Read frames are exact by
    construction: each detector reads its own variable."""
    variables = [Variable(m, (True, False)) for m in monitors]
    detectors = [
        BankDetector(
            name=f"{m}_violated",
            predicate=var_eq(m, False),
            reads=frozenset({m}),
        )
        for m in monitors
    ]
    return DetectorBank(detectors, variables, name=name)


def normalize_event(record: Mapping[str, Any]) -> Optional[Dict[str, Any]]:
    """One JSON object → one runtime event (or None for records with no
    runtime meaning).  Raw runtime events pass through; campaign-log
    records (recognized by their ``event`` key) are translated."""
    if "event" in record:
        # direct translation, no trial re-interleaving: a live feed has
        # no buffered "rest of the trial" to sort against
        return _translate(record)
    return {
        "time": float(record.get("time", 0.0)),
        "kind": record.get("kind", "write"),
        "writes": record.get("writes"),
    }


# -- async sources ------------------------------------------------------------

async def aiter_events(
    events: Iterable[Mapping[str, Any]]
) -> AsyncIterator[Mapping[str, Any]]:
    """Lift a synchronous iterable into an async event source."""
    for event in events:
        yield event


async def jsonl_source(path) -> AsyncIterator[Dict[str, Any]]:
    """Async iterator over a line-delimited JSON event file."""
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            event = normalize_event(json.loads(line))
            if event is not None:
                yield event


async def socket_source(
    reader: "asyncio.StreamReader",
) -> AsyncIterator[Dict[str, Any]]:
    """Async iterator over a line-delimited JSON feed; ends at EOF.
    Blank lines are ignored (usable as keepalives)."""
    while True:
        line = await reader.readline()
        if not line:
            return
        line = line.strip()
        if not line:
            continue
        event = normalize_event(json.loads(line))
        if event is not None:
            yield event


async def open_socket_source(
    host: Optional[str] = None,
    port: Optional[int] = None,
    sock=None,
) -> AsyncIterator[Dict[str, Any]]:
    """Connect and stream: ``open_socket_source(host, port)`` for a TCP
    endpoint, ``open_socket_source(sock=one_end)`` for an existing
    socket (e.g. ``socket.socketpair()`` in tests)."""
    if sock is not None:
        reader, writer = await asyncio.open_connection(sock=sock)
    else:
        reader, writer = await asyncio.open_connection(host, port)
    try:
        async for event in socket_source(reader):
            yield event
    finally:
        writer.close()


# -- live simulation hooks ----------------------------------------------------

def attach_monitors(runtime, monitors: Iterable) -> None:
    """Feed :class:`~repro.sim.monitors.PredicateMonitor` transitions
    into ``runtime`` as they happen.  Each monitor's name must be a
    variable of the runtime's bank (see :func:`campaign_bank`); any
    previously installed ``on_transition`` callback keeps running."""
    for monitor in monitors:
        previous = monitor.on_transition

        def bridge(at, value, _name=monitor.name, _previous=previous):
            runtime.feed({
                "time": at, "kind": "write", "writes": {_name: value},
            })
            if _previous is not None:
                _previous(at, value)

        monitor.on_transition = bridge


def attach_network(runtime, network, writes_of=None) -> None:
    """Feed a :class:`~repro.sim.network.Network`'s trace events into
    ``runtime`` as they are recorded, by hooking the trace list's
    ``append`` (every recorder goes through it).  ``writes_of`` maps a
    :class:`~repro.sim.network.TraceEvent` to the variable writes it
    implies (default: the event's ``detail`` when it is a dict).
    Fault-kind events pass their kind through, so the runtime's
    latency window opens exactly at injection time."""

    class _FeedingTrace(list):
        def append(self, event):
            list.append(self, event)
            writes = writes_of(event) if writes_of is not None else (
                event.detail if isinstance(event.detail, dict) else None
            )
            runtime.feed({
                "time": event.time, "kind": event.kind, "writes": writes,
            })

    network.trace = _FeedingTrace(network.trace)
