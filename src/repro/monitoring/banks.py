"""Detector banks: witness predicates compiled to bit-packed rows.

The paper's Section 3 detectors are predicates — a witness ``Z``
refining a detection predicate ``X`` — and the library checks them one
at a time inside exhaustive exploration.  The QEC formalization in
SNIPPETS.md (Def 8 *Detectors*, Def 9 *Syndrome*) shows the
production-grade shape of the same idea: a *bank* of m detectors is a
parity-check structure, and a state's violation pattern is a syndrome
vector in Z2^m.

:class:`DetectorBank` compiles a list of predicates over one program
schema into that shape, reusing the two fast protocols the core already
provides:

- per state, every detector is compiled through
  :meth:`Predicate.compile_for` (the ``values_builder`` raw-tuple sweep
  protocol), so a whole-bank evaluation is m calls on one values tuple
  with no ``State`` construction;
- per :class:`~repro.core.regions.StateIndex`, each detector becomes a
  bit-packed *row* via the index's memoized ``region_bits`` sweep, so
  evaluating the bank against a whole :class:`Region` of states — fire
  counts, fired unions, coverage — is a handful of big-int AND/OR/
  popcount operations.

Detectors carry an optional *read frame* (the variables the predicate
depends on, mirroring :mod:`repro.analysis.frames` action
declarations).  The online runtime uses the frames to re-evaluate only
the detectors whose reads intersect an event's written variables;
:meth:`DetectorBank.with_inferred_reads` derives missing frames by the
same differential probing the frame linter uses.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from ..core.predicate import Predicate, TRUE
from ..core.regions import Region, StateIndex, universe_index
from ..core.state import Schema, State, Variable, state_space
from .syndrome import fired_names, format_syndrome

__all__ = ["BankDetector", "DetectorBank", "BankCoverage"]


@dataclass(frozen=True)
class BankDetector:
    """One row of a bank: a named predicate with an optional read frame.

    ``reads=None`` means "unknown" — sound but slow online (the
    detector is re-evaluated on every event).  A declared frame must
    cover every variable the predicate consults; a too-small frame
    silently corrupts incremental syndromes, which is why
    :meth:`DetectorBank.with_inferred_reads` exists.
    """

    name: str
    predicate: Predicate
    reads: Optional[FrozenSet[str]] = None


@dataclass(frozen=True)
class BankCoverage:
    """Which detectors fire where, against a fault class (see
    :meth:`DetectorBank.coverage`)."""

    bank: str
    span_states: int
    unsafe_states: int          #: size of the fault-unsafe region ``ms``
    covered_unsafe: int         #: unsafe states where ≥1 detector fires
    fire_counts: Dict[str, int] = field(default_factory=dict)

    @property
    def coverage(self) -> float:
        """Fraction of the fault-unsafe region some detector covers
        (1.0 when the region is empty — nothing to detect)."""
        if self.unsafe_states == 0:
            return 1.0
        return self.covered_unsafe / self.unsafe_states

    def format(self) -> str:
        lines = [
            f"== bank {self.bank}: "
            f"{self.covered_unsafe}/{self.unsafe_states} unsafe states "
            f"covered ({self.coverage:.0%}), span {self.span_states} states"
        ]
        for name, fires in self.fire_counts.items():
            lines.append(f"   {name:32s} fires on {fires} span states")
        return "\n".join(lines)


#: what the constructor accepts per detector
DetectorLike = Union[BankDetector, Predicate, Tuple[str, Predicate]]


class DetectorBank:
    """m detectors over one program schema, compiled two ways.

    Parameters
    ----------
    detectors:
        :class:`BankDetector` items, bare predicates, or
        ``(name, predicate)`` pairs.  Names must be unique — they are
        the syndrome's coordinate labels.
    variables:
        The program variables the detectors read; they fix the schema
        (and hence the values-tuple order) every evaluation uses.
    """

    def __init__(
        self,
        detectors: Iterable[DetectorLike],
        variables: Sequence[Variable],
        name: str = "bank",
    ):
        self.name = name
        self.variables: Tuple[Variable, ...] = tuple(variables)
        self.schema: Schema = Schema.of(v.name for v in self.variables)
        normalized: List[BankDetector] = []
        for item in detectors:
            if isinstance(item, BankDetector):
                detector = item
            elif isinstance(item, Predicate):
                detector = BankDetector(name=item.name, predicate=item)
            else:
                label, predicate = item
                detector = BankDetector(name=label, predicate=predicate)
            if detector.reads is not None:
                unknown = detector.reads - set(self.schema.names)
                if unknown:
                    raise ValueError(
                        f"detector {detector.name!r} reads unknown "
                        f"variable(s) {sorted(unknown)}"
                    )
            normalized.append(detector)
        names = [d.name for d in normalized]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate detector names: {names}")
        self.detectors: Tuple[BankDetector, ...] = tuple(normalized)
        self.m = len(self.detectors)
        self.full_mask = (1 << self.m) - 1
        self.detector_names: Tuple[str, ...] = tuple(names)
        #: compiled values-tuple evaluators, one per detector
        self._fns: Tuple[Callable, ...] = tuple(
            d.predicate.compile_for(self.schema) for d in self.detectors
        )
        #: variable name -> bitmask of the detectors that read it
        #: (an undeclared frame subscribes the detector to every variable)
        self._var_masks: Dict[str, int] = {n: 0 for n in self.schema.names}
        for j, detector in enumerate(self.detectors):
            bit = 1 << j
            reads = (
                detector.reads if detector.reads is not None
                else self.schema.names
            )
            for variable in reads:
                self._var_masks[variable] |= bit

    # -- construction helpers ---------------------------------------------
    @classmethod
    def from_witnesses(
        cls, witnesses: Iterable, program, name: str = "witness-bank"
    ) -> "DetectorBank":
        """A bank of Theorem 3.4 witness predicates (``Z = g ∧ g'``).

        ``witnesses`` are :class:`repro.theory.detectors.DetectorWitness`
        items (see :func:`repro.theory.detectors.witnesses_for`);
        ``program`` is the refined program that embeds them.  Each
        witness's read frame comes from the embedded action's declared
        ``reads`` — the guard of ``ac'`` is exactly what ``Z`` evaluates
        — falling back to "unknown" when the action declares no frame.
        """
        detectors: List[BankDetector] = []
        for witness in witnesses:
            reads: Optional[FrozenSet[str]] = None
            try:
                action = program.action(witness.embedded_action)
            except KeyError:
                action = None
            if action is not None and action.reads is not None:
                reads = frozenset(action.reads)
            detectors.append(BankDetector(
                name=f"Z({witness.embedded_action})",
                predicate=witness.witness,
                reads=reads,
            ))
        return cls(detectors, program.variables, name=name)

    def with_inferred_reads(
        self, states: Optional[Iterable[State]] = None
    ) -> "DetectorBank":
        """A copy of the bank with missing read frames filled in by
        differential probing (:func:`repro.analysis.frames.infer_predicate_reads`).

        ``states`` defaults to the full Cartesian space of the bank's
        variables, which makes the inference exact; pass a sample to
        trade soundness for speed on large spaces.
        """
        from ..analysis.frames import infer_predicate_reads

        if any(d.reads is None for d in self.detectors):
            probe = list(
                states if states is not None else state_space(self.variables)
            )
            detectors = [
                d if d.reads is not None else replace(
                    d,
                    reads=infer_predicate_reads(
                        d.predicate, self.variables, probe, alt_limit=0
                    ),
                )
                for d in self.detectors
            ]
        else:
            detectors = list(self.detectors)
        return DetectorBank(detectors, self.variables, name=self.name)

    # -- per-state evaluation (values-tuple protocol) ---------------------
    def syndrome_of_values(self, values: Sequence) -> int:
        """Full-bank syndrome of one values sequence in schema order."""
        bits = 0
        for j, fn in enumerate(self._fns):
            if fn(values):
                bits |= 1 << j
        return bits

    def syndrome(self, state: State) -> int:
        """Full-bank syndrome of a :class:`State` (projected onto the
        bank's variables when the state carries more)."""
        if state.schema is not self.schema:
            state = state.project(self.schema.names)
        return self.syndrome_of_values(state.values_tuple)

    def dirty_mask(self, written: Iterable[str]) -> int:
        """Bitmask of the detectors whose read frames intersect
        ``written`` (unknown variables contribute nothing)."""
        masks = self._var_masks
        dirty = 0
        for name in written:
            dirty |= masks.get(name, 0)
        return dirty

    def update_syndrome(
        self, syndrome: int, values: Sequence, dirty: int
    ) -> int:
        """Incremental re-evaluation: recompute only the ``dirty``
        detectors against ``values``, keeping every other bit."""
        fns = self._fns
        bits = 0
        mask = dirty
        while mask:
            low = mask & -mask
            if fns[low.bit_length() - 1](values):
                bits |= low
            mask ^= low
        return (syndrome & ~dirty) | bits

    # -- region evaluation (big-int rows) ---------------------------------
    def rows(self, index: StateIndex) -> Tuple[int, ...]:
        """The bank as bit-packed rows over ``index``: bit ``i`` of row
        ``j`` is set iff detector ``j`` fires at state ``i``.  Each row
        is the index's memoized ``region_bits`` sweep, so repeated bank
        evaluations over one index cost dictionary hits."""
        return tuple(
            index.region_bits(d.predicate) for d in self.detectors
        )

    def fired_region(self, index: StateIndex, detector: str) -> Region:
        """The states of ``index`` where the named detector fires."""
        for d in self.detectors:
            if d.name == detector:
                return index.region(d.predicate)
        raise KeyError(detector)

    def fired_union(self, index: StateIndex) -> Region:
        """States where at least one detector fires (nonzero syndrome)."""
        union = 0
        for row in self.rows(index):
            union |= row
        return Region(index, union)

    def syndrome_table(
        self, index: StateIndex, region: Optional[Region] = None
    ) -> List[Tuple[int, int]]:
        """``(state id, syndrome)`` for every state of ``region``
        (default: the whole index), read off the packed rows — one byte
        probe per (state, detector) pair, no predicate re-evaluation."""
        data = [
            row.to_bytes((index.n + 7) >> 3, "little")
            for row in self.rows(index)
        ]
        ids = (
            range(index.n) if region is None else region.ids()
        )
        table: List[Tuple[int, int]] = []
        for i in ids:
            k, b = i >> 3, 1 << (i & 7)
            syndrome = 0
            for j, row_data in enumerate(data):
                if row_data[k] & b:
                    syndrome |= 1 << j
            table.append((i, syndrome))
        return table

    def fire_counts(
        self, index: StateIndex, region: Optional[Region] = None
    ) -> Dict[str, int]:
        """Per-detector fire counts over ``region`` (default: all of
        ``index``) — one AND + popcount per detector."""
        bits = index.full_bits if region is None else region.bits
        return {
            d.name: (row & bits).bit_count()
            for d, row in zip(self.detectors, self.rows(index))
        }

    # -- bank-level report -------------------------------------------------
    def coverage(
        self, program, faults, spec, span: Predicate = TRUE
    ) -> BankCoverage:
        """How the bank relates to a fault class: which detectors fire
        on the fault span, and what fraction of the fault-unsafe region
        ``ms`` (:func:`repro.synthesis.weakest.fault_unsafe_region` —
        the states from which faults alone can violate safety) carries
        a nonzero syndrome.  Uncovered unsafe states are blind spots: a
        fault can put the system there without any detector firing."""
        from ..synthesis.weakest import fault_unsafe_region

        index = universe_index(program)
        if index is None:
            index = StateIndex(program.states())
        span_bits = index.region_bits(span)
        unsafe_bits = index.region_of(
            fault_unsafe_region(faults, spec, index.states)
        ).bits
        rows = self.rows(index)
        union = 0
        for row in rows:
            union |= row
        return BankCoverage(
            bank=self.name,
            span_states=span_bits.bit_count(),
            unsafe_states=unsafe_bits.bit_count(),
            covered_unsafe=(union & unsafe_bits).bit_count(),
            fire_counts={
                d.name: (row & span_bits).bit_count()
                for d, row in zip(self.detectors, rows)
            },
        )

    # -- rendering ---------------------------------------------------------
    def describe(self, syndrome: int) -> str:
        """``"0110 [d1, d2]"`` — the packed vector plus the fired names."""
        names = fired_names(syndrome, self.detector_names)
        return f"{format_syndrome(syndrome, self.m)} {names}"

    def __len__(self) -> int:
        return self.m

    def __repr__(self) -> str:
        return (
            f"DetectorBank({self.name!r}, m={self.m}, "
            f"{len(self.schema.names)} variables)"
        )
