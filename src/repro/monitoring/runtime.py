"""The online monitoring runtime: events in, syndromes out.

A :class:`MonitorRuntime` maintains one values tuple over a
:class:`~repro.monitoring.banks.DetectorBank`'s schema and folds a
stream of *events* into it.  An event is a plain dict::

    {"time": 3.5, "kind": "write", "writes": {"x2": 1}}

``writes`` maps variable names to new values; ``kind`` distinguishes
ordinary writes from fault occurrences (any of the campaign engine's
``FAULT_EVENT_KINDS`` plus the generic ``"fault"``) and stream resets.

The hot path, :meth:`feed`, is synchronous and frame-aware: an event
touches only the detectors whose declared read frames intersect its
written variables (the bank's per-variable bitmasks), and a write that
does not change a value touches nothing at all.  Everything expensive —
telemetry records, decoding, corrector callbacks — happens only on
syndrome *transitions*, so steady-state ingest is a few dict probes per
event.  :meth:`drain` is the bulk spelling with the loop invariants
hoisted; the throughput benchmark and the replay CLI go through it.

The asyncio layer is a thin shell: :meth:`run` consumes any async
iterator of events (see :mod:`repro.monitoring.sources` for JSONL
files, line-delimited sockets, campaign-log replay, and live simulator
hooks) and awaits nothing per event beyond the source itself.

Detection latency is measured in stream time: a fault-kind event opens
a pending window (if none is open), and the next healthy→unhealthy
transition (zero → nonzero syndrome) closes it, recording ``time of
transition − time of fault``.  This matches the campaign classifier's
fault-onset-to-first-detection convention.
"""

from __future__ import annotations

import time as _time
from typing import (
    Any,
    AsyncIterable,
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Tuple,
)

from ..campaigns.runner import FAULT_EVENT_KINDS
from .banks import DetectorBank
from .decoder import Decoded, SyndromeDecoder
from .telemetry import TelemetrySink

__all__ = ["FAULT_KINDS", "MonitorRuntime"]

#: event kinds the runtime treats as fault occurrences (opens the
#: detection-latency window)
FAULT_KINDS = frozenset(FAULT_EVENT_KINDS) | {"fault"}

#: syndrome-transition callback: (runtime, old, new, time)
SyndromeCallback = Callable[["MonitorRuntime", int, int, float], None]


class MonitorRuntime:
    """Incremental syndrome computation over an event stream.

    Parameters
    ----------
    bank:
        The compiled detector bank; its schema fixes the tracked
        variables.
    decoder:
        Optional :class:`SyndromeDecoder`; when present, every
        transition to a nonzero syndrome is decoded and the selected
        entry's corrector callback (if any) is invoked.
    telemetry:
        Optional :class:`TelemetrySink`; created unstreamed by default.
    initial:
        Starting values per variable; unnamed variables default to the
        first value of their domain (the same convention
        ``state_space`` enumerates first).
    """

    def __init__(
        self,
        bank: DetectorBank,
        decoder: Optional[SyndromeDecoder] = None,
        telemetry: Optional[TelemetrySink] = None,
        initial: Optional[Mapping[str, Any]] = None,
    ):
        self.bank = bank
        self.decoder = decoder
        self.telemetry = (
            telemetry if telemetry is not None
            else TelemetrySink(bank.detector_names)
        )
        defaults = {v.name: v.domain[0] for v in bank.variables}
        if initial:
            unknown = set(initial) - set(defaults)
            if unknown:
                raise KeyError(
                    f"initial values name unknown variable(s) {sorted(unknown)}"
                )
            defaults.update(initial)
        self._initial: Tuple[Any, ...] = tuple(
            defaults[name] for name in bank.schema.names
        )
        self._values: List[Any] = list(self._initial)
        self._positions = bank.schema.index
        self._masks = bank._var_masks
        self.syndrome: int = bank.syndrome_of_values(self._values)
        self.time: float = 0.0
        self.events: int = 0
        self.corrections: List[Tuple[float, Decoded]] = []
        self._pending_fault: Optional[float] = None
        self._callbacks: List[SyndromeCallback] = []

    # -- wiring ------------------------------------------------------------
    def on_syndrome(self, callback: SyndromeCallback) -> SyndromeCallback:
        """Register a transition callback (usable as a decorator)."""
        self._callbacks.append(callback)
        return callback

    def values(self) -> Dict[str, Any]:
        """The tracked variable values, as a dict snapshot."""
        return dict(zip(self.bank.schema.names, self._values))

    # -- hot path ----------------------------------------------------------
    def feed(self, event: Mapping[str, Any]) -> int:
        """Fold one event into the runtime; returns the current syndrome."""
        self.events += 1
        at = event.get("time")
        if at is not None:
            self.time = at
        kind = event.get("kind")
        if kind is not None:
            if kind in FAULT_KINDS:
                if self._pending_fault is None:
                    self._pending_fault = self.time
            elif kind == "reset":
                self._reset()
                return self.syndrome
        writes = event.get("writes")
        if writes:
            values = self._values
            positions = self._positions
            masks = self._masks
            dirty = 0
            for name, value in writes.items():
                position = positions.get(name)
                if position is None or values[position] == value:
                    continue
                values[position] = value
                dirty |= masks[name]
            if dirty:
                old = self.syndrome
                new = self.bank.update_syndrome(old, values, dirty)
                if new != old:
                    self._transition(old, new)
        return self.syndrome

    def drain(self, events: Iterable[Mapping[str, Any]]) -> int:
        """Feed a whole iterable through the hot path with the loop
        invariants hoisted; returns the number of events consumed."""
        values = self._values
        positions_get = self._positions.get
        masks = self._masks
        update = self.bank.update_syndrome
        fault_kinds = FAULT_KINDS
        count = 0
        at = self.time
        for event in events:
            count += 1
            when = event.get("time")
            if when is not None:
                at = when
            kind = event.get("kind")
            if kind is not None:
                if kind in fault_kinds:
                    if self._pending_fault is None:
                        self._pending_fault = at
                elif kind == "reset":
                    self.time = at
                    self._reset()
                    continue
            writes = event.get("writes")
            if writes:
                dirty = 0
                for name, value in writes.items():
                    position = positions_get(name)
                    if position is None or values[position] == value:
                        continue
                    values[position] = value
                    dirty |= masks[name]
                if dirty:
                    old = self.syndrome
                    new = update(old, values, dirty)
                    if new != old:
                        self.time = at
                        self._transition(old, new)
        self.time = at
        self.events += count
        return count

    # -- cold path ---------------------------------------------------------
    def _transition(self, old: int, new: int) -> None:
        """Everything that happens only when the syndrome changes."""
        self.syndrome = new
        now = self.time
        self.telemetry.record_transition(now, old, new)
        if old == 0 and new != 0 and self._pending_fault is not None:
            self.telemetry.record_latency(now, now - self._pending_fault)
            self._pending_fault = None
        if self.decoder is not None and new != 0:
            decoded = self.decoder.decode(new)
            if decoded is not None:
                self.corrections.append((now, decoded))
                self.telemetry.record_correction(now, decoded)
                if decoded.entry.corrector is not None:
                    decoded.entry.corrector(self, decoded, now)
        for callback in self._callbacks:
            callback(self, old, new, now)

    def _reset(self) -> None:
        """Stream boundary (e.g. a new campaign trial): restore initial
        values and recompute the syndrome from scratch.  Boundaries are
        not transitions — no decoding, no latency measurement."""
        self._values[:] = self._initial
        self.syndrome = self.bank.syndrome_of_values(self._values)
        self._pending_fault = None
        self.telemetry.record_reset(self.time)

    # -- async shell -------------------------------------------------------
    async def run(
        self, source: AsyncIterable[Mapping[str, Any]]
    ) -> Dict[str, Any]:
        """Consume an async event source to exhaustion; returns the
        telemetry summary (with measured wall-clock throughput)."""
        started = _time.perf_counter()
        before = self.events
        feed = self.feed
        async for event in source:
            feed(event)
        wall_s = _time.perf_counter() - started
        return self.telemetry.summary(self.events - before, wall_s)

    def run_sync(self, events: Iterable[Mapping[str, Any]]) -> Dict[str, Any]:
        """:meth:`run` for a synchronous iterable (drain + summary)."""
        started = _time.perf_counter()
        count = self.drain(events)
        wall_s = _time.perf_counter() - started
        return self.telemetry.summary(count, wall_s)

    def __repr__(self) -> str:
        return (
            f"MonitorRuntime({self.bank.name!r}, "
            f"syndrome={self.bank.describe(self.syndrome)}, "
            f"events={self.events})"
        )
