"""Correctors (Section 4).

``Z corrects X`` is the problem specification consisting of all sequences
satisfying the three detector conditions **plus**:

- **Convergence** — eventually the *correction predicate* ``X`` holds and
  continues to hold; moreover ``X`` is closed along the sequence (once
  true it stays true).

A program ``c`` *is a corrector* for ``Z corrects X`` from ``U`` iff it
refines this specification from ``U``.  Note the paper's remark: the
witness ``Z`` need not equal ``X`` — in masking designs ``Z`` is an
atomically checkable stand-in for a correction predicate that cannot be
checked atomically.  When ``Z = X`` the definition reduces to
Arora–Gouda closure-and-convergence.

Well-known instances — voters, error-correction codes, reset procedures,
rollback/rollforward recovery, exception handlers, recovery-block
alternates — are provided as program factories in
:mod:`repro.components`.
"""

from __future__ import annotations

from typing import Optional

from .fairness import check_leads_to
from .faults import FaultClass
from .predicate import Predicate, TRUE
from .program import Program
from .refinement import refines_spec
from .results import CheckResult, all_of
from .specification import LeadsTo, Spec, TransitionInvariant
from .detector import detects_spec

__all__ = [
    "corrects_spec",
    "is_corrector",
    "is_nonmasking_tolerant_corrector",
    "is_masking_tolerant_corrector",
    "is_failsafe_tolerant_corrector",
]


def corrects_spec(witness: Predicate, correction: Predicate) -> Spec:
    """The problem specification ``Z corrects X`` (Section 4.1):
    Convergence ∧ Safeness ∧ Progress ∧ Stability."""
    convergence_closure = TransitionInvariant(
        lambda s, t, x=correction: (not x(s)) or x(t),
        name=f"Convergence(closure): cl({correction.name})",
        predicates=(correction,),
        stutter_true=True,
    )
    convergence_reach = LeadsTo(
        TRUE,
        correction,
        name=f"Convergence(reach): true leads-to {correction.name}",
    )
    detector_part = detects_spec(witness, correction)
    return Spec(
        [convergence_closure, convergence_reach] + list(detector_part.components),
        name=f"'{witness.name} corrects {correction.name}'",
    )


def is_corrector(
    component: Program,
    witness: Predicate,
    correction: Predicate,
    from_: Predicate,
) -> CheckResult:
    """``witness corrects correction in component from from_``."""
    return refines_spec(component, corrects_spec(witness, correction), from_)


def is_nonmasking_tolerant_corrector(
    component: Program,
    faults: FaultClass,
    witness: Predicate,
    correction: Predicate,
    from_: Predicate,
    span: Predicate,
    recovered: Optional[Predicate] = None,
) -> CheckResult:
    """Nonmasking tolerant corrector: refines ``Z corrects X`` from ``U``
    and, under the faults, every computation has a suffix refining it —
    certified through convergence to a closed recovery predicate (default
    ``from_``) from which the corrector spec holds again (the shape used
    in Theorem 4.3)."""
    recovered = recovered or from_
    spec = corrects_spec(witness, correction)
    what = (
        f"{component.name} is a nonmasking {faults.name}-tolerant corrector "
        f"for {spec.name} from {from_.name}"
    )
    base = refines_spec(component, spec, from_)
    ts = faults.system(component, span)
    closed = ts.is_closed(
        span, include_faults=True,
        description=f"{span.name} closed in {component.name} [] {faults.name}",
    )
    converges = check_leads_to(
        ts, TRUE, recovered,
        description=f"{component.name} [] {faults.name} converges to {recovered.name}",
    )
    recovered_closed = ts.is_closed(
        recovered, include_faults=False,
        description=f"{recovered.name} closed in {component.name}",
    )
    suffix = refines_spec(component, spec, recovered)
    return all_of(
        [base, closed, converges, recovered_closed, suffix], description=what
    )


def is_masking_tolerant_corrector(
    component: Program,
    faults: FaultClass,
    witness: Predicate,
    correction: Predicate,
    from_: Predicate,
    span: Predicate,
) -> CheckResult:
    """Masking tolerant corrector: the full ``Z corrects X``
    specification survives the faults from the span ``T``.

    Note (Theorem 5.5's caveat): masking *tolerant* correctors extracted
    from masking tolerant programs need only be masking *tolerant* in the
    sense that **program** actions never violate Stability/Convergence —
    fault actions may.  That weaker claim is exactly
    :func:`is_nonmasking_tolerant_corrector`; this function checks the
    strong version where the whole spec survives the faults.
    """
    spec = corrects_spec(witness, correction)
    what = (
        f"{component.name} is a masking {faults.name}-tolerant corrector "
        f"for {spec.name} from {from_.name}"
    )
    base = refines_spec(component, spec, from_)
    ts = faults.system(component, span)
    closed = ts.is_closed(
        span, include_faults=True,
        description=f"{span.name} closed in {component.name} [] {faults.name}",
    )
    under_faults = spec.check(
        ts,
        description=(
            f"{component.name} [] {faults.name} refines {spec.name} from {span.name}"
        ),
    )
    return all_of([base, closed, under_faults], description=what)


def is_failsafe_tolerant_corrector(
    component: Program,
    faults: FaultClass,
    witness: Predicate,
    correction: Predicate,
    from_: Predicate,
    span: Predicate,
) -> CheckResult:
    """Fail-safe tolerant corrector: only the safety part of ``Z corrects
    X`` (closure of X, Safeness, Stability) need survive the faults."""
    spec = corrects_spec(witness, correction)
    what = (
        f"{component.name} is a fail-safe {faults.name}-tolerant corrector "
        f"for {spec.name} from {from_.name}"
    )
    base = refines_spec(component, spec, from_)
    ts = faults.system(component, span)
    closed = ts.is_closed(
        span, include_faults=True,
        description=f"{span.name} closed in {component.name} [] {faults.name}",
    )
    under_faults = spec.safety_part().check(
        ts,
        description=(
            f"{component.name} [] {faults.name} refines {spec.safety_part().name} "
            f"from {span.name}"
        ),
    )
    return all_of([base, closed, under_faults], description=what)
