"""Faults as state-perturbing actions (Section 2.3).

A *fault-class* for a program ``p`` is just a set of actions over the
variables of ``p``.  This uniform representation covers stuck-at, crash,
fail-stop, omission, timing, and Byzantine faults alike; what varies is
only which perturbations the actions encode.

:class:`FaultClass` bundles the fault actions with a name and offers the
standard constructions:

- :meth:`FaultClass.system` builds the transition system of ``p [] F``
  from a predicate (fault edges marked, per Assumption 2 liveness is
  later judged on program edges only);
- :meth:`FaultClass.check_span` checks the paper's *F-span* condition
  (``S ⇒ T``, ``T`` closed in ``p``, every action of ``F`` preserves
  ``T``);
- factory helpers build common fault shapes: :func:`perturb_variable`
  (transient corruption of one variable to arbitrary domain values),
  :func:`set_variable` (a specific perturbation), and
  :func:`crash_variable` (latch a boolean "down" flag).
"""

from __future__ import annotations

from typing import Hashable, Iterable, List, Optional, Sequence, Tuple

from .action import Action, assign
from .exploration import TransitionSystem, explored_system
from .kernels import Plan
from .predicate import Predicate, TRUE
from .program import Program
from .results import CheckResult
from .state import State, Variable

__all__ = [
    "FaultClass",
    "perturb_variable",
    "set_variable",
    "crash_variable",
]


class FaultClass:
    """A named set of fault actions for some program."""

    def __init__(self, actions: Iterable[Action], name: str = "F"):
        self.actions: Tuple[Action, ...] = tuple(actions)
        self.name = name

    def __iter__(self):
        return iter(self.actions)

    def __len__(self) -> int:
        return len(self.actions)

    def union(self, other: "FaultClass", name: Optional[str] = None) -> "FaultClass":
        """Combine two fault-classes (tolerating multiple fault types)."""
        return FaultClass(
            self.actions + other.actions, name=name or f"({self.name} ∪ {other.name})"
        )

    def system(
        self,
        program: Program,
        from_: Predicate,
        max_states: int = 2_000_000,
        symmetric: bool = False,
    ) -> TransitionSystem:
        """The reachable transition system of ``program [] F`` from the
        states of ``program`` satisfying ``from_``.

        Memoized end to end: the start set comes from the program's
        per-predicate cache and the exploration from the shared system
        LRU, so the repeated ``faults.system(p, span)`` calls inside a
        tolerance certificate all resolve to one explored graph.

        ``symmetric=True`` builds the quotient system under the program's
        declared symmetry; the caller is responsible for ``from_`` being
        a union of orbits (the tolerance checkers validate this).
        """
        starts = program.states_satisfying(from_)
        return explored_system(
            program, starts, fault_actions=self.actions, max_states=max_states,
            symmetric=symmetric,
        )

    def check_span(
        self,
        program: Program,
        span: Predicate,
        invariant: Predicate,
    ) -> CheckResult:
        """Check that ``span`` is an F-span of ``program`` from
        ``invariant`` (Section 2.3)."""
        ts = self.system(program, span)
        return ts.is_fault_span(span, invariant)

    def __repr__(self) -> str:
        return f"FaultClass({self.name!r}, {len(self.actions)} actions)"


# -- common fault shapes -------------------------------------------------------

def perturb_variable(
    variable: Variable,
    guard: Predicate = TRUE,
    name: Optional[str] = None,
) -> FaultClass:
    """Transient fault: set ``variable`` to any other value of its domain.

    One fault action per target value, so model checking sees each
    perturbation as a distinct fault edge.  A singleton domain yields an
    empty class: the only candidate action (``v ≠ x --> v := x`` with
    ``x`` the sole value) would be dead code.

    With the default ``TRUE`` guard the actions carry their exact
    ``reads``/``writes`` frame and a batch-kernel :class:`Plan`; a
    caller-supplied guard may consult other variables the factory
    cannot see, so neither is declared.
    """
    actions: List[Action] = []
    exact = guard is TRUE
    frame = (
        dict(reads={variable.name}, writes={variable.name})
        if exact else {}
    )
    if len(variable.domain) < 2:
        return FaultClass(
            actions, name=name or f"perturb({variable.name})"
        )
    for value in variable.domain:
        actions.append(
            Action(
                name=f"fault_{variable.name}_to_{value!r}",
                guard=guard & Predicate(
                    lambda s, v=variable.name, x=value: s[v] != x,
                    name=f"{variable.name}≠{value!r}",
                ),
                statement=assign(**{variable.name: value}),
                plan=Plan(
                    ("ne_const", variable.name, value),
                    [("set_const", variable.name, value)],
                ) if exact else None,
                **frame,
            )
        )
    return FaultClass(actions, name=name or f"perturb({variable.name})")


def set_variable(
    variable_name: str,
    value: Hashable,
    guard: Predicate = TRUE,
    name: Optional[str] = None,
) -> FaultClass:
    """Fault that sets one variable to one specific value (e.g. a page
    fault removing an entry, a stuck-at fault).

    With the default ``TRUE`` guard the action reads nothing and
    unconditionally overwrites its target, the ideal frame shape for
    the successor memo; a caller-supplied guard disables the frame.
    """
    exact = guard is TRUE
    frame = (
        dict(reads=frozenset(), writes={variable_name})
        if exact else {}
    )
    return FaultClass(
        [
            Action(
                name=f"fault_set_{variable_name}_{value!r}",
                guard=guard,
                statement=assign(**{variable_name: value}),
                plan=Plan(
                    ("true",), [("set_const", variable_name, value)]
                ) if exact else None,
                **frame,
            )
        ],
        name=name or f"set({variable_name}:={value!r})",
    )


def crash_variable(flag_name: str, name: Optional[str] = None) -> FaultClass:
    """Crash fault: latch the boolean ``flag_name`` to True, permanently
    marking a process as down (the process's actions should be guarded by
    ``¬flag``).

    The attached plan encodes the guard as ``flag == False`` — exactly
    ``not flag`` over the boolean (or 0/1) domains crash flags use."""
    return FaultClass(
        [
            Action(
                name=f"crash_{flag_name}",
                guard=Predicate(lambda s, f=flag_name: not s[f], name=f"¬{flag_name}"),
                statement=assign(**{flag_name: True}),
                reads={flag_name}, writes={flag_name},
                plan=Plan(
                    ("eq_const", flag_name, False),
                    [("set_const", flag_name, True)],
                ),
            )
        ],
        name=name or f"crash({flag_name})",
    )
