"""The executable formal model of Arora & Kulkarni's theory.

This package implements Section 2 of the paper — programs, state
predicates, specifications, faults, and the three fault-tolerance classes
— together with the detector (Section 3) and corrector (Section 4)
component specifications and their checkers.

The public names re-exported here form the library's primary API; see the
README quickstart and :mod:`repro.programs.memory_access` for worked
usage.
"""

from .action import Action, Statement, assign, choose, skip
from .computation import Computation, enumerate_computations, random_computation
from .corrector import (
    corrects_spec,
    is_corrector,
    is_failsafe_tolerant_corrector,
    is_masking_tolerant_corrector,
    is_nonmasking_tolerant_corrector,
)
from .detector import (
    detects_spec,
    is_detector,
    is_failsafe_tolerant_detector,
    is_masking_tolerant_detector,
    is_nonmasking_tolerant_detector,
)
from .exploration import (
    Edge,
    TransitionSystem,
    clear_all_caches,
    clear_system_cache,
    explored_system,
    set_default_workers,
)
from .fairness import (
    check_converges_to,
    check_leads_to,
    fair_recurrent_sccs,
    strongly_connected_components,
)
from .faults import FaultClass, crash_variable, perturb_variable, set_variable
from .kernels import (
    CodeReach,
    KernelError,
    Plan,
    census_start_codes,
    clear_kernel_caches,
    explore_code_shard,
    explore_codes,
    get_backend,
    merge_code_reaches,
    resolved_backend,
    set_backend,
)
from .invariants import (
    is_detection_predicate,
    largest_invariant_for_safety,
    reachable_invariant,
    weakest_detection_predicate,
)
from .predicate import FALSE, TRUE, EvaluatorMemo, Predicate, var_eq, var_in, var_ne
from .program import Program
from .refinement import (
    refines_program,
    refines_spec,
    start_states_of,
    system_from,
    violates_spec,
)
from .results import CheckResult, Counterexample, all_of
from .specification import (
    LeadsTo,
    Spec,
    SpecComponent,
    StateInvariant,
    TransitionInvariant,
    closure_spec,
    converges_spec,
    generalized_pair,
    invariant_spec,
    maintains,
)
from .state import BOTTOM, Schema, State, StateInterner, Variable, state_space
from .symmetry import (
    Canonicalizer,
    ReplicaSymmetry,
    RingRotation,
    Symmetry,
    SymmetryError,
    ValueRotation,
)
from .multitolerance import ToleranceRequirement, is_multitolerant
from .tolerance import (
    check_implication,
    is_failsafe_tolerant,
    is_masking_tolerant,
    is_nonmasking_tolerant,
    is_tolerant,
    semantic_tolerance_check,
)

__all__ = [
    # state & predicates
    "BOTTOM", "Schema", "State", "StateInterner", "Variable", "state_space",
    "Predicate", "EvaluatorMemo", "TRUE", "FALSE", "var_eq", "var_ne", "var_in",
    # actions & programs
    "Action", "Statement", "assign", "choose", "skip", "Program",
    # exploration & fairness
    "TransitionSystem", "Edge",
    "strongly_connected_components", "fair_recurrent_sccs",
    "check_leads_to", "check_converges_to",
    # specifications
    "Spec", "SpecComponent", "StateInvariant", "TransitionInvariant", "LeadsTo",
    "closure_spec", "generalized_pair", "converges_spec", "invariant_spec",
    "maintains",
    # computations
    "Computation", "enumerate_computations", "random_computation",
    # refinement
    "refines_spec", "refines_program", "violates_spec",
    "start_states_of", "system_from",
    "explored_system", "clear_system_cache", "clear_all_caches",
    "set_default_workers",
    # batch kernels
    "Plan", "KernelError", "CodeReach", "explore_codes",
    "explore_code_shard", "census_start_codes", "merge_code_reaches",
    "set_backend", "get_backend", "resolved_backend", "clear_kernel_caches",
    # symmetry
    "Symmetry", "SymmetryError", "ReplicaSymmetry", "RingRotation",
    "ValueRotation", "Canonicalizer",
    # faults & tolerance
    "FaultClass", "perturb_variable", "set_variable", "crash_variable",
    "check_implication",
    "is_failsafe_tolerant", "is_nonmasking_tolerant", "is_masking_tolerant",
    "is_tolerant", "semantic_tolerance_check",
    "ToleranceRequirement", "is_multitolerant",
    # detectors & correctors
    "detects_spec", "is_detector",
    "is_failsafe_tolerant_detector", "is_masking_tolerant_detector",
    "is_nonmasking_tolerant_detector",
    "corrects_spec", "is_corrector",
    "is_failsafe_tolerant_corrector", "is_masking_tolerant_corrector",
    "is_nonmasking_tolerant_corrector",
    # invariants
    "reachable_invariant", "largest_invariant_for_safety",
    "weakest_detection_predicate", "is_detection_predicate",
    # results
    "CheckResult", "Counterexample", "all_of",
]
