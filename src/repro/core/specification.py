"""Problem specifications as conjunctions of checkable components.

Section 2.2 defines a problem specification as a suffix-closed,
fusion-closed set of state sequences, and recalls the Alpern–Schneider
result that any such set is the intersection of a *safety* specification
and a *liveness* specification.  This module makes that decomposition the
concrete representation:

- a :class:`Spec` is a conjunction of :class:`SpecComponent` objects;
- safety components are :class:`StateInvariant` ("no bad state") and
  :class:`TransitionInvariant` ("no bad transition") — Lemma 3.2 of the
  paper proves that for fusion+suffix-closed safety specifications,
  violation is detectable from the last state (or last transition) alone,
  so this pair of shapes is *exactly* the representable class;
- the liveness component is :class:`LeadsTo` ("every ``source`` state is
  eventually followed by a ``target`` state"), which expresses the
  paper's Progress and Convergence obligations and `converges to`.

Every component supports two semantics, kept deliberately in sync:

1. **graph checking** against a :class:`TransitionSystem`
   (:meth:`SpecComponent.check`), used by the refinement/tolerance
   machinery; and
2. **explicit sequence evaluation** (:meth:`SpecComponent.holds_on`),
   used by the bounded computation enumerator for cross-validation, and
   by :func:`maintains` for the paper's *maintains* relation on prefixes.

Factories for the paper's named specification forms are provided:
:func:`closure_spec` (``cl(S)``), :func:`generalized_pair`
(``({S},{R})``), :func:`converges_spec` (``S converges to R``), and
:func:`invariant_spec`.

The three **tolerance specifications** of Section 2.4 are derived here:

- masking tolerance spec of SPEC = SPEC itself (:meth:`Spec.masking`);
- fail-safe tolerance spec = the smallest safety spec containing SPEC,
  i.e. the safety components (:meth:`Spec.safety_part`);
- nonmasking tolerance spec = ``(true)*SPEC`` — sequences with a suffix
  in SPEC (:meth:`Spec.eventually`, a wrapper evaluated over suffixes in
  sequence semantics and via convergence certificates in graph
  semantics, see :mod:`repro.core.tolerance`).
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional, Sequence, Tuple

from .exploration import TransitionSystem
from .fairness import check_leads_to
from .predicate import Predicate, TRUE
from .results import CheckResult, Counterexample, all_of
from .state import State

__all__ = [
    "SpecComponent",
    "StateInvariant",
    "TransitionInvariant",
    "LeadsTo",
    "Spec",
    "closure_spec",
    "generalized_pair",
    "converges_spec",
    "invariant_spec",
    "maintains",
]


class SpecComponent:
    """Base class for specification components.

    ``kind`` is ``"safety"`` or ``"liveness"``; subclasses implement both
    graph checking and explicit sequence evaluation.
    """

    kind: str = "safety"

    def __init__(self, name: str):
        self.name = name

    def check(self, ts: TransitionSystem) -> CheckResult:  # pragma: no cover
        raise NotImplementedError

    def holds_on(self, sequence: Sequence[State], complete: bool = True) -> bool:
        """Evaluate on an explicit sequence.

        ``complete=True`` means the sequence is an entire (finite maximal)
        computation; ``complete=False`` means it is a truncated prefix, in
        which case liveness obligations that are still pending are judged
        optimistically (they could be met later).
        """
        raise NotImplementedError  # pragma: no cover

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name})"


class StateInvariant(SpecComponent):
    """Safety: every state of every computation satisfies ``predicate``."""

    kind = "safety"

    def __init__(self, predicate: Predicate, name: Optional[str] = None):
        super().__init__(name or f"always {predicate.name}")
        self.predicate = predicate

    def check(self, ts: TransitionSystem) -> CheckResult:
        predicate = self.predicate.fn
        for state in ts.states:
            if not predicate(state):
                return CheckResult.failed(
                    self.name,
                    counterexample=Counterexample(
                        kind="state", states=(state,),
                        note=f"state violates {self.predicate.name}",
                    ),
                )
        return CheckResult.passed(self.name)

    def holds_on(self, sequence: Sequence[State], complete: bool = True) -> bool:
        return all(self.predicate(s) for s in sequence)


class TransitionInvariant(SpecComponent):
    """Safety: every adjacent pair of states satisfies ``relation``.

    ``relation(s, s')`` must be true for each step ``s -> s'``.  This is
    the fusion-closed transition-level safety shape that Lemma 3.2
    justifies.

    ``predicates`` and ``stutter_true`` are optional *declarations* the
    certificate store's frame-based reuse relies on (and without which it
    refuses to transfer verdicts across a program edit):

    - ``predicates`` declares that ``relation(s, t)`` is a function of
      the listed predicates' truth values at ``s`` and ``t`` only;
    - ``stutter_true`` declares that ``relation(s, t)`` holds whenever
      every listed predicate agrees on ``s`` and ``t`` (a *visible
      stutter*) — true for ``cl(S)``-shaped relations, false for
      generalized pairs ``({S},{R})``, which a stutter step can violate.

    Like an action's reads/writes frame, these are claims, not inferred
    facts; a wrong declaration yields wrong reuse.
    """

    kind = "safety"

    def __init__(
        self,
        relation: Callable[[State, State], bool],
        name: str = "transition invariant",
        predicates: Optional[Sequence[Predicate]] = None,
        stutter_true: bool = False,
    ):
        super().__init__(name)
        self.relation = relation
        self.predicates = None if predicates is None else tuple(predicates)
        self.stutter_true = bool(stutter_true)

    def check(self, ts: TransitionSystem) -> CheckResult:
        for source, action_name, target in ts.all_edges(include_faults=True):
            if not self.relation(source, target):
                return CheckResult.failed(
                    self.name,
                    counterexample=Counterexample(
                        kind="transition",
                        states=(source, target),
                        actions=(action_name,),
                        note=f"step violates {self.name}",
                    ),
                )
        return CheckResult.passed(self.name)

    def holds_on(self, sequence: Sequence[State], complete: bool = True) -> bool:
        return all(
            self.relation(sequence[i], sequence[i + 1])
            for i in range(len(sequence) - 1)
        )


class LeadsTo(SpecComponent):
    """Liveness: every ``source`` state is eventually followed (possibly
    immediately) by a ``target`` state."""

    kind = "liveness"

    def __init__(self, source: Predicate, target: Predicate,
                 name: Optional[str] = None):
        super().__init__(name or f"{source.name} leads-to {target.name}")
        self.source = source
        self.target = target

    def check(self, ts: TransitionSystem) -> CheckResult:
        return check_leads_to(ts, self.source, self.target, description=self.name)

    def holds_on(self, sequence: Sequence[State], complete: bool = True) -> bool:
        pending = False
        for state in sequence:
            if self.target(state):
                pending = False
            if self.source(state) and not self.target(state):
                pending = True
        if pending and complete:
            return False
        return True


class Spec:
    """A problem specification: a named conjunction of components."""

    def __init__(self, components: Iterable[SpecComponent], name: str = "SPEC"):
        self.components: Tuple[SpecComponent, ...] = tuple(components)
        self.name = name

    # -- structure -----------------------------------------------------------
    def conjoin(self, other: "Spec", name: Optional[str] = None) -> "Spec":
        """Intersection of two specifications."""
        return Spec(
            self.components + other.components,
            name=name or f"({self.name} ∩ {other.name})",
        )

    def safety_part(self) -> "Spec":
        """The smallest safety specification containing this spec — the
        paper's ``SSPEC`` and its *fail-safe tolerance specification*.

        For specs in component form this is the conjunction of the safety
        components (the Alpern–Schneider decomposition is built in).
        """
        return Spec(
            [c for c in self.components if c.kind == "safety"],
            name=f"safety({self.name})",
        )

    def liveness_part(self) -> "Spec":
        return Spec(
            [c for c in self.components if c.kind == "liveness"],
            name=f"liveness({self.name})",
        )

    def masking(self) -> "Spec":
        """Masking tolerance specification of SPEC is SPEC (Section 2.4)."""
        return self

    # -- graph semantics -------------------------------------------------------
    def check(self, ts: TransitionSystem,
              description: Optional[str] = None) -> CheckResult:
        """Check that every computation recorded in ``ts`` is in the spec."""
        what = description or f"{ts.program.name} refines {self.name}"
        return all_of((c.check(ts) for c in self.components), description=what)

    # -- sequence semantics ----------------------------------------------------
    def holds_on(self, sequence: Sequence[State], complete: bool = True) -> bool:
        """Membership of an explicit sequence in the specification."""
        return all(c.holds_on(sequence, complete) for c in self.components)

    def holds_on_some_suffix(self, sequence: Sequence[State],
                             complete: bool = True) -> bool:
        """Membership in ``(true)*SPEC`` — the *nonmasking tolerance
        specification* (Section 2.4): some suffix lies in the spec."""
        return any(
            self.holds_on(sequence[i:], complete) for i in range(len(sequence))
        )

    def maintains_prefix(self, prefix: Sequence[State]) -> bool:
        """The paper's *maintains*: the prefix can be extended to a
        sequence in the spec.  For the representable class this holds iff
        no safety component is already violated (liveness obligations can
        always be discharged in the future)."""
        return all(
            c.holds_on(prefix, complete=False)
            for c in self.components
            if c.kind == "safety"
        )

    def __repr__(self) -> str:
        kinds = ", ".join(c.name for c in self.components)
        return f"Spec({self.name!r}: {kinds})"


def maintains(prefix: Sequence[State], spec: Spec) -> bool:
    """Module-level alias for :meth:`Spec.maintains_prefix` matching the
    paper's ``α maintains SPEC`` phrasing."""
    return spec.maintains_prefix(prefix)


# -- named specification forms (Section 2.2) -----------------------------------

def closure_spec(predicate: Predicate) -> Spec:
    """``cl(S)``: once ``S`` holds it holds forever."""
    return Spec(
        [
            TransitionInvariant(
                lambda s, t, p=predicate: (not p(s)) or p(t),
                name=f"cl({predicate.name})",
                predicates=(predicate,),
                stutter_true=True,  # p unchanged across a step => ¬p ∨ p
            )
        ],
        name=f"cl({predicate.name})",
    )


def generalized_pair(source: Predicate, target: Predicate) -> Spec:
    """The generalized pair ``({S}, {R})``: whenever ``S`` holds at a
    state, ``R`` holds at the next state."""
    return Spec(
        [
            TransitionInvariant(
                lambda s, t, a=source, b=target: (not a(s)) or b(t),
                name=f"({{{source.name}}},{{{target.name}}})",
                predicates=(source, target),
                # a stutter at a state with S ∧ ¬R violates the pair, so
                # frame-based verdict reuse must refuse this shape
                stutter_true=False,
            )
        ],
        name=f"({{{source.name}}},{{{target.name}}})",
    )


def converges_spec(origin: Predicate, goal: Predicate) -> Spec:
    """``S converges to R``: ``cl(S) ∩ cl(R)`` plus *S leads-to R*."""
    return (
        closure_spec(origin)
        .conjoin(closure_spec(goal))
        .conjoin(
            Spec([LeadsTo(origin, goal)], name=f"{origin.name}↝{goal.name}"),
            name=f"{origin.name} converges-to {goal.name}",
        )
    )


def invariant_spec(predicate: Predicate) -> Spec:
    """The spec "every state satisfies ``predicate``" (a pure safety spec
    convenient for acceptance-test style obligations)."""
    return Spec(
        [StateInvariant(predicate)], name=f"invariant({predicate.name})"
    )
