"""Compiled batch successor kernels: whole-frontier action evaluation.

Exploration cost in this library is dominated by ``Action.successors``
— an interpreted Python round trip (guard predicate, statement closure,
``State`` allocation, hash) per *(state, action)* pair.  This module
compiles actions whose authors declare a :class:`Plan` — a flat
positional description of the guard and the assignment — into *batch
kernels* that evaluate one action over an entire BFS frontier at once:

- the **numpy backend** represents a frontier as a ``(vars, N)`` matrix
  of domain *ranks* (a value's position in its declared domain) and
  evaluates guards/effects as vectorized column arithmetic, packing
  each successor into a single mixed-radix ``int64`` code for O(1)
  interning;
- the **pure backend** compiles the same plan into a per-row closure
  over raw values-tuples (the ``values_builder`` protocol the region
  engine and :class:`~repro.core.predicate.Predicate` already speak) —
  no arrays, no numpy, same semantics;
- actions without a plan (or whose plan does not fit a schema) simply
  fall back to the interpreted ``successors`` path inside the batched
  BFS, so kernels are an accelerator, never a constraint.

A plan is a *claim*, like an action's ``reads``/``writes`` frame: the
kernel must implement exactly the guard and statement of the action it
annotates.  ``tests/test_kernels.py`` pins kernel/interpreted parity
(state sets, edges, deadlocks) across every bundled program and fault
builder, under symmetry quotients, for both backends.

For state spaces too large to materialize as ``State`` objects at all
(the ROADMAP's million-state explorations), :func:`explore_codes` runs
the whole BFS in packed-code space: frontiers are ``int64`` arrays,
dedup is a bitmap or a sorted-merge anti-join, and no per-state Python
object ever exists.  The ``token_ring_large`` and
``byzantine_k13_unreduced`` benchmark suites are gated on its exact
reachable-state counts.

Plan grammar (nested tuples; ``name`` is a variable name):

Guards::

    ("true",)
    ("eq_const", name, value)      ("ne_const", name, value)
    ("eq_var", name_a, name_b)     ("ne_var", name_a, name_b)
    ("all_ne_const", names, value)             # every name  != value
    ("eq_majority", name, names, k)            # name == majority(names)
    ("ne_majority", name, names, k)            # (strict 0/1 majority)
    ("and", *exprs)  ("or", *exprs)  ("not", expr)

Effects (applied atomically — every right-hand side reads the
pre-state)::

    ("set_const", name, value)
    ("copy", dst, src)                         # dst := src (values)
    ("inc_mod", dst, src, m)                   # dst := (src + 1) mod m
    ("set_majority", dst, names, k)            # dst := 0/1 majority
"""

from __future__ import annotations

import weakref
from typing import Callable, Dict, Hashable, Iterable, List, Optional, Tuple

from .state import State, _state_of, state_space

try:  # numpy is optional: every kernel has a pure-python twin
    import numpy as _np
except Exception:  # pragma: no cover - exercised on numpy-less installs
    _np = None

__all__ = [
    "ENGINE_VERSION",
    "Plan",
    "KernelError",
    "Layout",
    "layout_for",
    "set_backend",
    "get_backend",
    "resolved_backend",
    "numpy_available",
    "row_kernel",
    "batch_kernel",
    "explore_codes",
    "explore_code_shard",
    "census_start_codes",
    "merge_code_reaches",
    "CodeReach",
    "clear_kernel_caches",
]

#: semantic version of the successor engines; part of the certificate
#: store's key salt so artifacts never cross an engine behaviour change
ENGINE_VERSION = 1

#: packed codes must fit a signed int64 with headroom for arithmetic
MAX_CODE_BITS = 62

#: safety valve for :func:`explore_codes` (far above the State-object
#: explorer's cap — code-space BFS is exactly what makes this range
#: reachable)
DEFAULT_MAX_CODES = 50_000_000

#: full code spaces up to this size dedup through a byte bitmap
#: (space bytes of memory); larger spaces use a sorted-merge anti-join
_BITMAP_SPACE_LIMIT = 1 << 26

#: Frontier rows expanded per kernel batch inside :func:`explore_codes`;
#: bounds peak memory at chunk × variables × 8 bytes per column set.
_FRONTIER_CHUNK = 1 << 20


class KernelError(ValueError):
    """A plan cannot be compiled for a schema (unknown variable,
    incompatible domains, or a value a domain cannot represent)."""


class Plan:
    """Declarative guard + assignment of one deterministic action.

    ``guard`` and each effect follow the module-level grammar.  A plan
    describes an action with at most one successor per state; actions
    with nondeterministic statements stay unplanned and run interpreted.
    """

    __slots__ = ("guard", "effects")

    _GUARD_OPS = frozenset({
        "true", "eq_const", "ne_const", "eq_var", "ne_var",
        "all_ne_const", "eq_majority", "ne_majority", "and", "or", "not",
    })
    _EFFECT_OPS = frozenset({"set_const", "copy", "inc_mod", "set_majority"})

    def __init__(self, guard: Tuple, effects: Iterable[Tuple]):
        self.guard = tuple(guard)
        self.effects = tuple(tuple(effect) for effect in effects)
        self._check_guard(self.guard)
        if not self.effects:
            raise KernelError("a plan needs at least one effect")
        for effect in self.effects:
            if not effect or effect[0] not in self._EFFECT_OPS:
                raise KernelError(f"unknown effect op: {effect!r}")

    @classmethod
    def _check_guard(cls, expr: Tuple) -> None:
        if not expr or expr[0] not in cls._GUARD_OPS:
            raise KernelError(f"unknown guard op: {expr!r}")
        if expr[0] in ("and", "or"):
            for sub in expr[1:]:
                cls._check_guard(sub)
        elif expr[0] == "not":
            cls._check_guard(expr[1])

    def __repr__(self) -> str:
        return f"Plan(guard={self.guard!r}, effects={self.effects!r})"


# -- backend selection ---------------------------------------------------------

_BACKENDS = ("auto", "numpy", "pure", "interpreted")
_backend = "auto"


def numpy_available() -> bool:
    return _np is not None


def set_backend(backend: str) -> None:
    """Select the kernel backend: ``auto`` (numpy when importable, else
    pure), ``numpy``, ``pure``, or ``interpreted`` (disable kernels —
    the pre-kernel scalar BFS, used by the parity tests as the oracle).
    """
    global _backend
    if backend not in _BACKENDS:
        raise ValueError(
            f"unknown kernel backend {backend!r}; choose from {_BACKENDS}"
        )
    if backend == "numpy" and _np is None:
        raise KernelError("numpy backend requested but numpy is unavailable")
    _backend = backend


def get_backend() -> str:
    return _backend


def resolved_backend() -> str:
    """The backend batched exploration will actually run."""
    if _backend == "auto":
        return "numpy" if _np is not None else "pure"
    return _backend


# -- layouts: schema + domains -> positions, ranks, mixed-radix strides --------

class Layout:
    """The packing of one (schema, domains) pair.

    Position ``i`` holds ``schema.names[i]``; ``ranks[i]`` maps a value
    of that variable's domain to its rank, ``domains[i]`` maps it back.
    ``strides`` are big-endian mixed-radix weights, so the packed code
    of a values-tuple is ``sum(strides[i] * rank_i)`` and code order
    equals lexicographic rank order.
    """

    __slots__ = (
        "schema", "domains", "sizes", "strides", "ranks", "space",
        "index", "_strides_arr",
    )

    def __init__(self, schema, domains: Tuple[Tuple[Hashable, ...], ...]):
        self.schema = schema
        self.index = schema.index
        self.domains = domains
        self.sizes = tuple(len(d) for d in domains)
        strides: List[int] = [0] * len(domains)
        acc = 1
        for i in range(len(domains) - 1, -1, -1):
            strides[i] = acc
            acc *= self.sizes[i]
        self.strides = tuple(strides)
        self.space = acc
        self.ranks = tuple(
            {value: rank for rank, value in enumerate(domain)}
            for domain in domains
        )
        self._strides_arr = (
            _np.array(strides, dtype=_np.int64) if _np is not None else None
        )

    # -- scalar paths ------------------------------------------------------
    def pack_values(self, values: Tuple[Hashable, ...]) -> int:
        """The packed code of one values-tuple (KeyError when a value is
        outside its declared domain)."""
        code = 0
        for stride, rank, value in zip(self.strides, self.ranks, values):
            code += stride * rank[value]
        return code

    def unpack(self, code: int) -> Tuple[Hashable, ...]:
        return tuple(
            domain[(code // stride) % size]
            for domain, stride, size in zip(
                self.domains, self.strides, self.sizes
            )
        )

    # -- numpy paths -------------------------------------------------------
    def columns_from_states(self, states) -> "object":
        """``(vars, N)`` int64 rank matrix of a state sequence."""
        ranks = self.ranks
        flat = [
            rank[value]
            for state in states
            for rank, value in zip(ranks, state._values)
        ]
        return (
            _np.array(flat, dtype=_np.int64)
            .reshape(len(states), len(ranks))
            .T.copy()
        )

    def columns_from_codes(self, codes) -> "object":
        cols = _np.empty((len(self.sizes), codes.shape[0]), dtype=_np.int64)
        for i, (stride, size) in enumerate(zip(self.strides, self.sizes)):
            cols[i] = (codes // stride) % size
        return cols

    def pack_columns(self, cols) -> "object":
        return self._strides_arr @ cols

    def values_from_column(self, cols, j: int) -> Tuple[Hashable, ...]:
        return tuple(
            domain[cols[i, j]] for i, domain in enumerate(self.domains)
        )


#: (schema, domains signature) -> Layout (or None when unpackable)
_LAYOUTS: Dict[Tuple, Optional[Layout]] = {}


def layout_for(schema, domains: Dict[str, Tuple]) -> Optional[Layout]:
    """The interned :class:`Layout` of ``schema`` under ``domains``, or
    ``None`` when a variable has no declared domain or the packed code
    would overflow :data:`MAX_CODE_BITS` bits."""
    signature = tuple(domains.get(name) for name in schema.names)
    key = (schema, signature)
    found = _LAYOUTS.get(key, _LAYOUTS)
    if found is not _LAYOUTS:
        return found
    layout: Optional[Layout] = None
    if all(domain for domain in signature):
        space = 1
        for domain in signature:
            space *= len(domain)
        if space.bit_length() <= MAX_CODE_BITS:
            layout = Layout(schema, signature)
    _LAYOUTS[key] = layout
    return layout


# -- plan compilation: shared validation ---------------------------------------

def _require(condition: bool, message: str) -> None:
    if not condition:
        raise KernelError(message)


def _position(index: Dict[str, int], name: str) -> int:
    _require(name in index, f"plan names unknown variable {name!r}")
    return index[name]


def _domain_of(domains: Dict[str, Tuple], name: str) -> Tuple:
    domain = domains.get(name)
    _require(
        bool(domain),
        f"plan variable {name!r} has no declared domain",
    )
    return domain


def _validate_effects(plan: Plan, index, domains: Dict[str, Tuple]) -> None:
    for effect in plan.effects:
        op = effect[0]
        if op == "set_const":
            _, name, value = effect
            _position(index, name)
            _require(
                value in _domain_of(domains, name),
                f"set_const value {value!r} outside domain of {name!r}",
            )
        elif op == "copy":
            _, dst, src = effect
            _position(index, dst)
            _position(index, src)
            dst_domain = set(_domain_of(domains, dst))
            _require(
                all(v in dst_domain for v in _domain_of(domains, src)),
                f"copy {src!r} -> {dst!r}: source domain not contained "
                f"in destination domain",
            )
        elif op == "inc_mod":
            _, dst, src, m = effect
            _position(index, dst)
            _position(index, src)
            expected = tuple(range(m))
            _require(
                _domain_of(domains, dst) == expected
                and _domain_of(domains, src) == expected,
                f"inc_mod needs 0..{m - 1} domains on {dst!r} and {src!r}",
            )
        elif op == "set_majority":
            _, dst, names, _k = effect
            _position(index, dst)
            for n in names:
                _position(index, n)
            dst_domain = _domain_of(domains, dst)
            _require(
                0 in dst_domain and 1 in dst_domain,
                f"set_majority target {dst!r} cannot hold 0/1",
            )


def _validate_guard(expr: Tuple, index) -> None:
    op = expr[0]
    if op in ("eq_const", "ne_const"):
        _position(index, expr[1])
    elif op in ("eq_var", "ne_var"):
        _position(index, expr[1])
        _position(index, expr[2])
    elif op == "all_ne_const":
        for n in expr[1]:
            _position(index, n)
    elif op in ("eq_majority", "ne_majority"):
        _position(index, expr[1])
        for n in expr[2]:
            _position(index, n)
    elif op in ("and", "or"):
        for sub in expr[1:]:
            _validate_guard(sub, index)
    elif op == "not":
        _validate_guard(expr[1], index)


# -- pure backend: per-row closures over raw values-tuples ---------------------

def _majority_counter(positions: Tuple[int, ...], k: int):
    def majority(values, positions=positions, k=k):
        count = 0
        for p in positions:
            if values[p] == 1:
                count += 1
        return 1 if 2 * count > k else 0
    return majority


def _compile_guard_pure(expr: Tuple, index) -> Optional[Callable]:
    op = expr[0]
    if op == "true":
        return None
    if op == "eq_const":
        p, v = index[expr[1]], expr[2]
        return lambda values, p=p, v=v: values[p] == v
    if op == "ne_const":
        p, v = index[expr[1]], expr[2]
        return lambda values, p=p, v=v: values[p] != v
    if op == "eq_var":
        a, b = index[expr[1]], index[expr[2]]
        return lambda values, a=a, b=b: values[a] == values[b]
    if op == "ne_var":
        a, b = index[expr[1]], index[expr[2]]
        return lambda values, a=a, b=b: values[a] != values[b]
    if op == "all_ne_const":
        positions = tuple(index[n] for n in expr[1])
        v = expr[2]
        def all_ne(values, positions=positions, v=v):
            for p in positions:
                if values[p] == v:
                    return False
            return True
        return all_ne
    if op in ("eq_majority", "ne_majority"):
        p = index[expr[1]]
        majority = _majority_counter(tuple(index[n] for n in expr[2]), expr[3])
        if op == "eq_majority":
            return lambda values, p=p, m=majority: values[p] == m(values)
        return lambda values, p=p, m=majority: values[p] != m(values)
    if op == "not":
        sub = _compile_guard_pure(expr[1], index)
        if sub is None:
            return lambda values: False
        return lambda values, f=sub: not f(values)
    subs = [_compile_guard_pure(sub, index) for sub in expr[1:]]
    if op == "and":
        subs = [f for f in subs if f is not None]
        if not subs:
            return None
        def conj(values, fns=tuple(subs)):
            for fn in fns:
                if not fn(values):
                    return False
            return True
        return conj
    # "or": a "true" operand makes the whole disjunction trivially true
    if any(f is None for f in subs):
        return None
    def disj(values, fns=tuple(subs)):
        for fn in fns:
            if fn(values):
                return True
        return False
    return disj


def _compile_effects_pure(plan: Plan, index) -> Callable:
    steps = []
    for effect in plan.effects:
        op = effect[0]
        if op == "set_const":
            p, v = index[effect[1]], effect[2]
            steps.append(lambda values, out, p=p, v=v: out.__setitem__(p, v))
        elif op == "copy":
            d, s = index[effect[1]], index[effect[2]]
            steps.append(
                lambda values, out, d=d, s=s: out.__setitem__(d, values[s])
            )
        elif op == "inc_mod":
            d, s, m = index[effect[1]], index[effect[2]], effect[3]
            steps.append(
                lambda values, out, d=d, s=s, m=m:
                out.__setitem__(d, (values[s] + 1) % m)
            )
        else:  # set_majority
            d = index[effect[1]]
            majority = _majority_counter(
                tuple(index[n] for n in effect[2]), effect[3]
            )
            steps.append(
                lambda values, out, d=d, m=majority:
                out.__setitem__(d, m(values))
            )
    steps = tuple(steps)

    def apply(values, steps=steps):
        out = list(values)
        for step in steps:
            step(values, out)
        return tuple(out)

    return apply


#: action -> {(schema, domains signature): row fn or None}
_ROW_KERNELS: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()


def row_kernel(action, schema, domains: Dict[str, Tuple]) -> Optional[Callable]:
    """A compiled per-row evaluator of ``action``'s plan: values-tuple
    in, successor values-tuple (or ``None`` when disabled) out.  Returns
    ``None`` when the action has no plan or the plan does not fit the
    schema/domains."""
    plan = getattr(action, "plan", None)
    if plan is None:
        return None
    per_action = _ROW_KERNELS.get(action)
    if per_action is None:
        per_action = _ROW_KERNELS[action] = {}
    key = (schema, tuple(domains.get(name) for name in schema.names))
    found = per_action.get(key, _ROW_KERNELS)
    if found is not _ROW_KERNELS:
        return found
    fn: Optional[Callable] = None
    try:
        index = schema.index
        _validate_guard(plan.guard, index)
        _validate_effects(plan, index, domains)
        guard = _compile_guard_pure(plan.guard, index)
        effects = _compile_effects_pure(plan, index)
        if guard is None:
            fn = effects
        else:
            def fn(values, guard=guard, effects=effects):
                if not guard(values):
                    return None
                return effects(values)
    except KernelError:
        fn = None
    per_action[key] = fn
    return fn


# -- numpy backend: vectorized guards/effects over rank columns ----------------

def _rank_or_sentinel(layout: Layout, name: str, value) -> int:
    """The rank of ``value`` in ``name``'s domain, or ``-1`` (no column
    ever holds -1, so equality against it is constant-false)."""
    return layout.ranks[layout.index[name]].get(value, -1)


def _value_lut(layout: Layout, src: str, dst: str):
    """``src-rank -> dst-rank`` translation table (copy across domains
    compares/assigns *values*, never raw ranks)."""
    src_domain = layout.domains[layout.index[src]]
    dst_ranks = layout.ranks[layout.index[dst]]
    return _np.array(
        [dst_ranks.get(value, -1) for value in src_domain], dtype=_np.int64
    )


def _majority_column(layout: Layout, names, k: int):
    positions = tuple(layout.index[n] for n in names)
    ones = tuple(_rank_or_sentinel(layout, n, 1) for n in names)

    def majority_is_one(cols, positions=positions, ones=ones, k=k):
        count = (cols[positions[0]] == ones[0]).astype(_np.int64)
        for p, r1 in zip(positions[1:], ones[1:]):
            count += cols[p] == r1
        return 2 * count > k

    return majority_is_one


def _compile_guard_numpy(expr: Tuple, layout: Layout) -> Optional[Callable]:
    op = expr[0]
    index = layout.index
    if op == "true":
        return None
    if op in ("eq_const", "ne_const"):
        p = index[expr[1]]
        r = _rank_or_sentinel(layout, expr[1], expr[2])
        if op == "eq_const":
            return lambda cols, p=p, r=r: cols[p] == r
        return lambda cols, p=p, r=r: cols[p] != r
    if op in ("eq_var", "ne_var"):
        a, b = index[expr[1]], index[expr[2]]
        if layout.domains[a] == layout.domains[b]:
            if op == "eq_var":
                return lambda cols, a=a, b=b: cols[a] == cols[b]
            return lambda cols, a=a, b=b: cols[a] != cols[b]
        lut = _value_lut(layout, expr[2], expr[1])
        if op == "eq_var":
            return lambda cols, a=a, b=b, lut=lut: cols[a] == lut[cols[b]]
        return lambda cols, a=a, b=b, lut=lut: cols[a] != lut[cols[b]]
    if op == "all_ne_const":
        pairs = tuple(
            (index[n], _rank_or_sentinel(layout, n, expr[2]))
            for n in expr[1]
        )
        def all_ne(cols, pairs=pairs):
            acc = cols[pairs[0][0]] != pairs[0][1]
            for p, r in pairs[1:]:
                acc &= cols[p] != r
            return acc
        return all_ne
    if op in ("eq_majority", "ne_majority"):
        p = index[expr[1]]
        r0 = _rank_or_sentinel(layout, expr[1], 0)
        r1 = _rank_or_sentinel(layout, expr[1], 1)
        majority_is_one = _majority_column(layout, expr[2], expr[3])
        def eq_majority(cols, p=p, r0=r0, r1=r1, m=majority_is_one):
            return cols[p] == _np.where(m(cols), r1, r0)
        if op == "eq_majority":
            return eq_majority
        return lambda cols, f=eq_majority: ~f(cols)
    if op == "not":
        sub = _compile_guard_numpy(expr[1], layout)
        if sub is None:
            return lambda cols: _np.zeros(cols.shape[1], dtype=bool)
        return lambda cols, f=sub: ~f(cols)
    subs = [_compile_guard_numpy(sub, layout) for sub in expr[1:]]
    if op == "and":
        subs = [f for f in subs if f is not None]
        if not subs:
            return None
        def conj(cols, fns=tuple(subs)):
            acc = fns[0](cols)
            for fn in fns[1:]:
                acc &= fn(cols)
            return acc
        return conj
    if any(f is None for f in subs):
        return None
    def disj(cols, fns=tuple(subs)):
        acc = fns[0](cols)
        for fn in fns[1:]:
            acc |= fn(cols)
        return acc
    return disj


def _compile_effects_numpy(plan: Plan, layout: Layout) -> Tuple[Callable, ...]:
    index = layout.index
    steps: List[Callable] = []
    for effect in plan.effects:
        op = effect[0]
        if op == "set_const":
            p = index[effect[1]]
            r = layout.ranks[p][effect[2]]
            steps.append(lambda pre, out, p=p, r=r: out.__setitem__(p, r))
        elif op == "copy":
            d, s = index[effect[1]], index[effect[2]]
            if layout.domains[d] == layout.domains[s]:
                steps.append(
                    lambda pre, out, d=d, s=s: out.__setitem__(d, pre[s])
                )
            else:
                lut = _value_lut(layout, effect[2], effect[1])
                _require(
                    bool((lut >= 0).all()),
                    f"copy {effect[2]!r} -> {effect[1]!r}: source domain "
                    f"not contained in destination domain",
                )
                steps.append(
                    lambda pre, out, d=d, s=s, lut=lut:
                    out.__setitem__(d, lut[pre[s]])
                )
        elif op == "inc_mod":
            d, s, m = index[effect[1]], index[effect[2]], effect[3]
            steps.append(
                lambda pre, out, d=d, s=s, m=m:
                out.__setitem__(d, (pre[s] + 1) % m)
            )
        else:  # set_majority
            d = index[effect[1]]
            r0 = layout.ranks[d][0]
            r1 = layout.ranks[d][1]
            majority_is_one = _majority_column(layout, effect[2], effect[3])
            steps.append(
                lambda pre, out, d=d, r0=r0, r1=r1, m=majority_is_one:
                out.__setitem__(d, _np.where(m(pre), r1, r0))
            )
    return tuple(steps)


#: action -> {layout: batch kernel or None}
_BATCH_KERNELS: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()


def batch_kernel(action, layout: Layout) -> Optional[Callable]:
    """A vectorized evaluator of ``action``'s plan over a ``(vars, N)``
    rank matrix: returns ``(enabled column indices, successor rank
    matrix)`` — or ``None`` when the action has no plan, the plan does
    not fit, or numpy is unavailable.

    The successor matrix has one column per enabled source column, in
    source order, so callers can zip the two results directly.
    """
    if _np is None:
        return None
    plan = getattr(action, "plan", None)
    if plan is None:
        return None
    per_action = _BATCH_KERNELS.get(action)
    if per_action is None:
        per_action = _BATCH_KERNELS[action] = {}
    found = per_action.get(layout, _BATCH_KERNELS)
    if found is not _BATCH_KERNELS:
        return found
    kernel: Optional[Callable] = None
    try:
        domains = {
            name: layout.domains[i]
            for i, name in enumerate(layout.schema.names)
        }
        _validate_guard(plan.guard, layout.index)
        _validate_effects(plan, layout.index, domains)
        guard = _compile_guard_numpy(plan.guard, layout)
        steps = _compile_effects_numpy(plan, layout)
        empty = _np.empty(0, dtype=_np.int64)

        def kernel(cols, guard=guard, steps=steps, empty=empty):
            if guard is None:
                idx = _np.arange(cols.shape[1], dtype=_np.int64)
                pre = cols
            else:
                idx = _np.flatnonzero(guard(cols))
                if idx.size == 0:
                    return empty, None
                pre = cols[:, idx]
            out = pre.copy()
            for step in steps:
                step(pre, out)
            return idx, out
    except KernelError:
        kernel = None
    per_action[layout] = kernel
    return kernel


#: action -> {layout: code kernel or None}
_CODE_KERNELS: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()


def code_kernel(action, layout: Layout) -> Optional[Callable]:
    """A successor evaluator that stays entirely in code space:
    ``kernel(codes, cols)`` returns ``(enabled column indices, successor
    codes)`` — or ``None`` when the action has no compilable plan.

    Because a plan's effects are per-variable assignments and codes are
    mixed-radix sums, the successor code is the source code plus
    ``(new_rank - old_rank) * stride`` per written variable — no
    successor rank matrix is ever materialized and no repacking happens,
    so the per-edge cost is independent of the number of variables.
    :func:`explore_codes` prefers this over :func:`batch_kernel`.
    """
    if _np is None:
        return None
    plan = getattr(action, "plan", None)
    if plan is None:
        return None
    per_action = _CODE_KERNELS.get(action)
    if per_action is None:
        per_action = _CODE_KERNELS[action] = {}
    found = per_action.get(layout, _CODE_KERNELS)
    if found is not _CODE_KERNELS:
        return found
    kernel: Optional[Callable] = None
    try:
        index = layout.index
        domains = {
            name: layout.domains[i]
            for i, name in enumerate(layout.schema.names)
        }
        _validate_guard(plan.guard, index)
        _validate_effects(plan, index, domains)
        guard = _compile_guard_numpy(plan.guard, layout)
        strides = layout.strides
        deltas: List[Callable] = []
        for effect in plan.effects:
            op = effect[0]
            if op == "set_const":
                d = index[effect[1]]
                r, st = layout.ranks[d][effect[2]], strides[d]
                deltas.append(
                    lambda cols, idx, d=d, r=r, st=st:
                    (r - cols[d, idx]) * st
                )
            elif op == "copy":
                d, s = index[effect[1]], index[effect[2]]
                st = strides[d]
                if layout.domains[d] == layout.domains[s]:
                    deltas.append(
                        lambda cols, idx, d=d, s=s, st=st:
                        (cols[s, idx] - cols[d, idx]) * st
                    )
                else:
                    lut = _value_lut(layout, effect[2], effect[1])
                    deltas.append(
                        lambda cols, idx, d=d, s=s, st=st, lut=lut:
                        (lut[cols[s, idx]] - cols[d, idx]) * st
                    )
            elif op == "inc_mod":
                d, s, m = index[effect[1]], index[effect[2]], effect[3]
                st = strides[d]
                deltas.append(
                    lambda cols, idx, d=d, s=s, st=st, m=m:
                    ((cols[s, idx] + 1) % m - cols[d, idx]) * st
                )
            else:  # set_majority
                d = index[effect[1]]
                r0, r1 = layout.ranks[d][0], layout.ranks[d][1]
                st = strides[d]
                majority_is_one = _majority_column(
                    layout, effect[2], effect[3]
                )
                deltas.append(
                    lambda cols, idx, d=d, r0=r0, r1=r1, st=st,
                    m=majority_is_one:
                    (_np.where(m(cols)[idx], r1, r0) - cols[d, idx]) * st
                )
        empty = _np.empty(0, dtype=_np.int64)

        def kernel(codes, cols, guard=guard, deltas=tuple(deltas),
                   empty=empty):
            if guard is None:
                idx = _np.arange(codes.shape[0], dtype=_np.int64)
            else:
                idx = _np.flatnonzero(guard(cols))
                if idx.size == 0:
                    return empty, None
            out = codes[idx]
            for delta in deltas:
                out = out + delta(cols, idx)
            return idx, out
    except KernelError:
        kernel = None
    per_action[layout] = kernel
    return kernel


# -- code-space exploration (million-state BFS, no State objects) --------------

class CodeReach:
    """Result of :func:`explore_codes`: exact reachable census.

    ``codes`` is the sorted reachable-code array when the caller asked
    for it (``collect_codes=True`` / the shard entry points) and
    ``None`` otherwise — censuses that only need the count never pay to
    materialize the set.
    """

    __slots__ = ("states", "levels", "edges", "codes")

    def __init__(self, states: int, levels: int, edges: int, codes=None):
        self.states = states
        self.levels = levels
        self.edges = edges
        self.codes = codes

    def __repr__(self) -> str:
        return (
            f"CodeReach({self.states} states, {self.levels} levels, "
            f"{self.edges} successor rows)"
        )


def _census_layout(program, schema) -> Layout:
    layout = layout_for(schema, program._domains)
    _require(
        layout is not None,
        f"state space of {program.name!r} does not pack into "
        f"{MAX_CODE_BITS}-bit codes",
    )
    return layout


def _census_kernels(program, fault_actions, layout: Layout) -> List[Callable]:
    kernels = []
    for action in tuple(program.actions) + tuple(fault_actions):
        kernel = code_kernel(action, layout)
        _require(
            kernel is not None,
            f"action {action.name!r} has no compilable plan for "
            f"{program.name!r}",
        )
        kernels.append(kernel)
    return kernels


def _code_bfs(layout: Layout, kernels, start_codes, max_states: int,
              name: str, collect: bool) -> CodeReach:
    """The BFS core shared by whole censuses and shards: expand from
    ``start_codes`` (sorted, unique) until no fresh code appears."""
    use_bitmap = layout.space <= _BITMAP_SPACE_LIMIT
    if use_bitmap:
        seen_map = _np.zeros(layout.space, dtype=bool)
        seen_map[start_codes] = True
    else:
        seen_sorted = start_codes
    total = int(start_codes.shape[0])
    frontier = start_codes
    levels = 0
    edges = 0
    while frontier.size:
        levels += 1
        fresh_parts = []
        for lo in range(0, int(frontier.shape[0]), _FRONTIER_CHUNK):
            chunk = frontier[lo:lo + _FRONTIER_CHUNK]
            cols = layout.columns_from_codes(chunk)
            for kernel in kernels:
                idx, codes = kernel(chunk, cols)
                if codes is None:
                    continue
                edges += int(idx.shape[0])
                if use_bitmap:
                    # mark between actions/chunks: later rows anti-join
                    # against everything earlier ones discovered
                    fresh = codes[~seen_map[codes]]
                    if fresh.size:
                        fresh = _np.unique(fresh)
                        seen_map[fresh] = True
                        fresh_parts.append(fresh)
                else:
                    pos = _np.searchsorted(seen_sorted, codes)
                    pos[pos == seen_sorted.shape[0]] = 0
                    fresh = codes[seen_sorted[pos] != codes]
                    if fresh.size:
                        fresh_parts.append(fresh)
        if not fresh_parts:
            break
        if use_bitmap:
            frontier = _np.concatenate(fresh_parts)
        else:
            frontier = _np.unique(_np.concatenate(fresh_parts))
            positions = _np.searchsorted(seen_sorted, frontier)
            seen_sorted = _np.insert(seen_sorted, positions, frontier)
        total += int(frontier.shape[0])
        if total > max_states:
            raise RuntimeError(
                f"code-space exploration exceeds max_states={max_states} "
                f"for {name!r}"
            )
    reached = None
    if collect:
        reached = _np.flatnonzero(seen_map) if use_bitmap else seen_sorted
    return CodeReach(total, levels, edges, reached)


def census_start_codes(program, start_states: Iterable[State]):
    """Resolve a census start set to ``(layout, sorted unique codes)`` —
    the scheduler half of a sharded census (slice the codes with
    ``numpy.array_split`` and hand each slice to
    :func:`explore_code_shard`)."""
    if _np is None:
        raise KernelError("explore_codes requires numpy")
    if isinstance(start_states, str):
        _require(
            start_states == "all",
            f"unknown start-state selector {start_states!r}",
        )
        first = next(iter(state_space(program.variables)), None)
        _require(first is not None, f"{program.name!r} has an empty space")
        layout = _census_layout(program, first._schema)
        return layout, _np.arange(layout.space, dtype=_np.int64)
    starts = list(start_states)
    _require(bool(starts), "census_start_codes needs at least one start")
    schema = starts[0]._schema
    for state in starts:
        _require(
            state._schema is schema,
            "explore_codes start states must share one schema",
        )
    layout = _census_layout(program, schema)
    codes = _np.unique(
        _np.array(
            [layout.pack_values(s._values) for s in starts],
            dtype=_np.int64,
        )
    )
    return layout, codes


def explore_codes(
    program,
    start_states: Iterable[State],
    fault_actions=(),
    max_states: int = DEFAULT_MAX_CODES,
    collect_codes: bool = False,
) -> CodeReach:
    """Exact reachable-state census of ``program [] faults`` by BFS in
    packed-code space.

    Every action (program and fault) must carry a compilable
    :class:`Plan` and numpy must be available — this explorer exists for
    state spaces where materializing ``State`` objects is not an option,
    so there is no interpreted fallback to hide behind.  Dedup uses a
    byte bitmap over the full code space when it fits (≤ 64M codes) and
    a sorted-merge anti-join otherwise; either way the census is exact.

    ``start_states`` is an iterable of :class:`State` objects, or the
    string ``"all"`` for the program's entire state space — the codes
    ``0..space-1`` are synthesized directly, so a multimillion-state
    full-space sweep (e.g. a self-stabilization census) never builds a
    single ``State``.  Frontiers are expanded in bounded chunks, so peak
    memory stays proportional to the chunk, not the frontier.
    ``collect_codes=True`` additionally returns the sorted reachable
    code set on the result.
    """
    if _np is None:
        raise KernelError("explore_codes requires numpy")
    if isinstance(start_states, str):
        _require(
            start_states == "all",
            f"unknown start-state selector {start_states!r}",
        )
        if next(iter(state_space(program.variables)), None) is None:
            return CodeReach(0, 0, 0)
    else:
        start_states = list(start_states)
        if not start_states:
            return CodeReach(0, 0, 0)
    layout, start_codes = census_start_codes(program, start_states)
    kernels = _census_kernels(program, fault_actions, layout)
    return _code_bfs(
        layout, kernels, start_codes, max_states, program.name, collect_codes
    )


def explore_code_shard(
    program,
    start_codes,
    fault_actions=(),
    max_states: int = DEFAULT_MAX_CODES,
) -> CodeReach:
    """BFS from an explicit array of packed start codes — one shard of a
    distributed census.

    The shard's :class:`CodeReach` always carries its reachable code
    *set* (``codes``): reach sets of different shards overlap, so shard
    counts do not add — :func:`merge_code_reaches` unions the sets to
    recover the exact census.  Per-shard ``levels``/``edges`` are local
    diagnostics only.
    """
    if _np is None:
        raise KernelError("explore_codes requires numpy")
    first = next(iter(state_space(program.variables)), None)
    _require(first is not None, f"{program.name!r} has an empty space")
    layout = _census_layout(program, first._schema)
    codes = _np.unique(_np.asarray(start_codes, dtype=_np.int64))
    if codes.size:
        _require(
            0 <= int(codes[0]) and int(codes[-1]) < layout.space,
            f"start codes out of range for {program.name!r}",
        )
    else:
        return CodeReach(0, 0, 0, codes)
    kernels = _census_kernels(program, fault_actions, layout)
    return _code_bfs(layout, kernels, codes, max_states, program.name, True)


def merge_code_reaches(reaches) -> CodeReach:
    """Union shard censuses into the exact whole-space answer.

    ``states`` is the size of the union of the shard code sets —
    byte-identical to an unsharded :func:`explore_codes` count for any
    shard partition.  ``levels`` (max) and ``edges`` (sum) are
    shard-local diagnostics, *not* the unsharded BFS figures.
    """
    if _np is None:
        raise KernelError("merge_code_reaches requires numpy")
    reaches = list(reaches)
    arrays = []
    for reach in reaches:
        _require(
            reach.codes is not None,
            "merge_code_reaches needs shard results with collected codes",
        )
        arrays.append(reach.codes)
    if not arrays:
        return CodeReach(0, 0, 0, _np.empty(0, dtype=_np.int64))
    union = _np.unique(_np.concatenate(arrays))
    return CodeReach(
        int(union.shape[0]),
        max(reach.levels for reach in reaches),
        sum(reach.edges for reach in reaches),
        union,
    )


# -- cache control -------------------------------------------------------------

def clear_kernel_caches() -> None:
    """Drop every compiled kernel and interned layout, so cold-start
    benchmarks pay for plan compilation like any other cache miss.
    Wired into :func:`repro.core.exploration.clear_all_caches`."""
    _LAYOUTS.clear()
    _ROW_KERNELS.clear()
    _BATCH_KERNELS.clear()
    _CODE_KERNELS.clear()


def decode_states(layout: Layout, cols, positions) -> List[State]:
    """Materialize :class:`State` objects for selected columns of a rank
    matrix (the slow path of batch exploration: only codes never seen
    before reach it)."""
    schema = layout.schema
    return [
        _state_of(schema, layout.values_from_column(cols, j))
        for j in positions
    ]
