"""Transition systems: reachable state-space exploration.

The checks in Sections 2–5 of the paper all quantify over computations of
a program (possibly in the presence of faults).  On finite-state programs
those checks reduce to questions about the *reachable transition graph*,
which this module materializes:

- :class:`TransitionSystem` explores the states reachable from a set of
  start states under a program's actions plus an optional set of fault
  actions, recording labelled edges and which labels are faults;
- closure checks (``S is closed in p``, ``T is closed in F``) become
  universally-quantified checks over the recorded edges;
- deadlock detection supports the paper's *maximality* condition (a finite
  computation must end in a state where every guard is false).

Fault edges are tracked separately because the paper's Assumption 2
(finitely many fault occurrences) means safety is judged over *all* edges
while liveness is judged over program edges only.

Performance notes (see ``docs/performance.md``):

- every explored state is canonicalized through a
  :class:`~repro.core.state.StateInterner`, so the states held by a
  system are pointer-equal iff value-equal and duplicate successors
  collapse before touching the frontier;
- per-state edge lists are stored as tuples and handed out *unsliced* —
  :meth:`TransitionSystem.edges_from` only concatenates when a state
  actually has fault edges to merge in;
- :meth:`deadlock_states` reads the recorded program edges instead of
  re-evaluating every guard;
- :func:`explored_system` memoizes whole systems in a bounded LRU keyed
  on (program, start states, fault actions, max_states), so tolerance
  certificates and synthesis pipelines that interrogate the same
  ``p [] F`` repeatedly explore it once.  ``clear_system_cache`` resets
  the table (programs and actions are keyed by identity, so the cache
  can only go stale if an Action object is mutated in place — which
  nothing in the library does).
"""

from __future__ import annotations

from collections import OrderedDict, deque
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    KeysView,
    List,
    Optional,
    Sequence,
    Tuple,
)

from .action import Action
from .predicate import Predicate
from .program import Program
from .regions import first_bit, iter_bits, system_index
from .results import CheckResult, Counterexample
from .state import State
from .symmetry import SymmetryError

__all__ = [
    "Edge",
    "TransitionSystem",
    "explored_system",
    "clear_system_cache",
    "clear_all_caches",
]

#: A labelled edge: (source, action name, target).
Edge = Tuple[State, str, State]

#: Default cap on explored states (a safety valve, not a tuning knob).
DEFAULT_MAX_STATES = 2_000_000

_EMPTY_EDGES: Tuple[Tuple[str, State], ...] = ()


class TransitionSystem:
    """The reachable transition graph of ``program [] faults`` from
    ``start_states``.

    Parameters
    ----------
    program:
        The program whose actions drive (fair) computation steps.
    start_states:
        Iterable of states exploration begins from.  Typically the states
        satisfying an invariant or fault-span predicate.
    fault_actions:
        Optional extra actions representing a fault-class ``F``;
        their edges are recorded but marked as fault edges.
    max_states:
        Safety valve against state-space explosion; exploration raises if
        exceeded.
    symmetric:
        When true, explore the *quotient* graph under the program's
        declared symmetry group: every start state and every successor is
        mapped to the canonical representative of its orbit before it
        touches the frontier, so the full graph is never materialized.
        Requires ``program.symmetry`` (raises
        :class:`~repro.core.symmetry.SymmetryError` otherwise).  Verdicts
        over a quotient system equal those over the full system provided
        every consulted predicate/spec is a union of orbits — the
        tolerance checkers validate that before opting in.

    A constructed system is immutable; consider :func:`explored_system`
    to share one instance across repeated identical explorations.
    """

    def __init__(
        self,
        program: Program,
        start_states: Iterable[State],
        fault_actions: Sequence[Action] = (),
        max_states: int = DEFAULT_MAX_STATES,
        symmetric: bool = False,
    ):
        self.program = program
        self.symmetry = None
        if symmetric:
            if program.symmetry is None:
                raise SymmetryError(
                    f"symmetric exploration requested but {program.name!r} "
                    f"declares no symmetry group"
                )
            self.symmetry = program.symmetry
        self.fault_actions: Tuple[Action, ...] = tuple(fault_actions)
        self.fault_action_names: FrozenSet[str] = frozenset(
            a.name for a in self.fault_actions
        )
        overlap = self.fault_action_names & {a.name for a in program.actions}
        if overlap:
            raise ValueError(f"fault actions share names with program: {overlap}")

        self.start_states: Tuple[State, ...] = tuple(dict.fromkeys(start_states))
        #: outgoing program edges per state: state -> ((action, next), ...)
        #: (insertion-ordered over *every* explored state, making it double
        #: as the deterministic BFS-order state registry)
        self._program_edges: Dict[State, Tuple[Tuple[str, State], ...]] = {}
        #: outgoing fault edges per state (only states that have some)
        self._fault_edges: Dict[State, Tuple[Tuple[str, State], ...]] = {}
        #: per-predicate memo for states_satisfying (keyed by identity)
        self._satisfying: Dict[Predicate, Tuple[State, ...]] = {}
        self._explore(max_states)

    # -- construction ------------------------------------------------------
    @property
    def states(self) -> KeysView[State]:
        """All explored states, in deterministic BFS discovery order."""
        return self._program_edges.keys()

    def _explore(self, max_states: int) -> None:
        if self.symmetry is not None:
            # orbit canonicalization: each state maps to the pooled
            # minimal representative of its symmetry orbit, so the BFS
            # materializes the quotient graph directly
            canonical = self.symmetry.canonicalizer(self.program).canonical
        else:
            # canonicalization is one C-level dict op: setdefault(s, s)
            # returns the pooled representative (inserting s if unseen),
            # exactly StateInterner.canonical without the method frames
            canonical = {}.setdefault
        start_states = tuple(canonical(s, s) for s in self.start_states)
        self.start_states = tuple(dict.fromkeys(start_states))
        frontier = deque(self.start_states)
        program_actions = self.program.actions
        fault_actions = self.fault_actions
        program_edges_of = self._program_edges
        fault_edges_of = self._fault_edges
        for state in self.start_states:
            program_edges_of[state] = _EMPTY_EDGES
        while frontier:
            state = frontier.popleft()
            program_edges: List[Tuple[str, State]] = []
            for action in program_actions:
                name = action.name
                for nxt in action.successors(state):
                    program_edges.append((name, canonical(nxt, nxt)))
            fault_edges: List[Tuple[str, State]] = []
            for action in fault_actions:
                name = action.name
                for nxt in action.successors(state):
                    fault_edges.append((name, canonical(nxt, nxt)))
            # drop duplicate successor edges (nondeterministic statements
            # may offer the same alternative more than once)
            if len(program_edges) > 1:
                program_edges = list(dict.fromkeys(program_edges))
            if len(fault_edges) > 1:
                fault_edges = list(dict.fromkeys(fault_edges))
            program_edges_of[state] = tuple(program_edges)
            if fault_edges:
                fault_edges_of[state] = tuple(fault_edges)
            for edges in (program_edges, fault_edges):
                for _, nxt in edges:
                    if nxt not in program_edges_of:
                        # register before expansion so duplicates are
                        # filtered; overwritten when nxt is expanded
                        program_edges_of[nxt] = _EMPTY_EDGES
                        frontier.append(nxt)
                        if len(program_edges_of) > max_states:
                            raise RuntimeError(
                                f"state-space exceeds max_states={max_states} "
                                f"for {self.program.name!r}"
                            )

    # -- views ---------------------------------------------------------------
    def program_edges_from(self, state: State) -> Sequence[Tuple[str, State]]:
        return self._program_edges.get(state, _EMPTY_EDGES)

    def fault_edges_from(self, state: State) -> Sequence[Tuple[str, State]]:
        return self._fault_edges.get(state, _EMPTY_EDGES)

    def edges_from(self, state: State, include_faults: bool = True
                   ) -> Sequence[Tuple[str, State]]:
        """Outgoing edges of ``state``.

        Returns the stored (immutable) edge tuple directly whenever
        possible — a copy is only made when a state really has fault
        edges to merge with its program edges, so the common case inside
        closure checks' inner loops allocates nothing.
        """
        program_edges = self._program_edges.get(state, _EMPTY_EDGES)
        if not include_faults:
            return program_edges
        fault_edges = self._fault_edges.get(state)
        if not fault_edges:
            return program_edges
        return program_edges + fault_edges

    def all_edges(self, include_faults: bool = True) -> Iterable[Edge]:
        for state, edges in self._program_edges.items():
            for action_name, nxt in edges:
                yield (state, action_name, nxt)
        if include_faults:
            for state, edges in self._fault_edges.items():
                for action_name, nxt in edges:
                    yield (state, action_name, nxt)

    def deadlock_states(self) -> List[State]:
        """States where no *program* action is enabled.

        These are the states where a maximal computation may legitimately
        end; fault actions never count toward enabledness (computations
        are only required to be p-maximal, Section 2.3).  Read off the
        recorded program edges — every enabled action contributed an
        edge during exploration, so no guard is re-evaluated here.
        """
        return [
            state
            for state, edges in self._program_edges.items()
            if not edges
        ]

    def states_satisfying(self, predicate: Predicate) -> List[State]:
        """The explored states at which ``predicate`` holds.

        Memoized per predicate *object* (identity, not formula), since
        theory checks repeatedly interrogate a system with the same
        invariant/span predicates.
        """
        cached = self._satisfying.get(predicate)
        if cached is None:
            cached = tuple(filter(predicate.fn, self._program_edges))
            self._satisfying[predicate] = cached
        return list(cached)

    # -- closure checks ------------------------------------------------------
    def is_closed(
        self,
        predicate: Predicate,
        include_faults: bool = False,
        description: Optional[str] = None,
    ) -> CheckResult:
        """Check that ``predicate`` is closed in the explored system.

        With ``include_faults=False`` this is the paper's "S is closed in
        p"; with ``include_faults=True`` it additionally requires every
        fault action to preserve the predicate ("T is closed in F",
        Section 2.3), which together with ``S ⇒ T`` makes T an F-span.
        """
        what = description or (
            f"{predicate.name} closed in {self.program.name}"
            + (" [] F" if include_faults else "")
        )
        index = system_index(self)
        bits = index.region_bits(predicate)
        if bits != index.full_bits:  # full region: every edge is internal
            data = index.region_data(predicate)
            states = index.states
            for u in iter_bits(bits, index.n):
                rows = index.plabeled[u]
                if include_faults:
                    rows += index.flabeled[u]
                for action_name, v in rows:
                    if not data[v >> 3] & (1 << (v & 7)):
                        return CheckResult.failed(
                            what,
                            counterexample=Counterexample(
                                kind="transition",
                                states=(states[u], states[v]),
                                actions=(action_name,),
                                note=(
                                    f"{predicate.name} falsified by "
                                    f"{action_name}"
                                ),
                            ),
                        )
        return CheckResult.passed(what)

    def is_fault_span(self, span: Predicate, invariant: Predicate) -> CheckResult:
        """Section 2.3 *Fault-span*: ``S ⇒ T``, T closed in p, T closed in F."""
        index = system_index(self)
        gap = index.region_bits(invariant) & ~index.region_bits(span)
        if gap:
            state = index.states[first_bit(gap)]
            return CheckResult.failed(
                f"{span.name} is an F-span from {invariant.name}",
                counterexample=Counterexample(
                    kind="state",
                    states=(state,),
                    note=f"{invariant.name} holds but {span.name} does not",
                ),
            )
        closed = self.is_closed(span, include_faults=True)
        if not closed:
            return closed
        return CheckResult.passed(
            f"{span.name} is an F-span of {self.program.name} from {invariant.name}"
        )

    # -- path finding -------------------------------------------------------
    def find_path(
        self,
        sources: Iterable[State],
        goal: Predicate,
        include_faults: bool = True,
        within: Optional[Predicate] = None,
    ) -> Optional[Tuple[List[State], List[str]]]:
        """BFS for a path from any source to a goal state.

        ``within`` restricts intermediate states (sources must satisfy it
        too).  Returns ``(states, actions)`` or ``None``.
        """
        parents: Dict[State, Optional[Tuple[State, str]]] = {}
        frontier: deque = deque()
        for source in sources:
            if within is not None and not within(source):
                continue
            if source not in parents:
                parents[source] = None
                frontier.append(source)
        while frontier:
            state = frontier.popleft()
            if goal(state):
                return _reconstruct(parents, state)
            for action_name, nxt in self.edges_from(state, include_faults):
                if within is not None and not within(nxt):
                    continue
                if nxt not in parents:
                    parents[nxt] = (state, action_name)
                    frontier.append(nxt)
        return None

    def __repr__(self) -> str:
        return (
            f"TransitionSystem({self.program.name!r}, {len(self.states)} states, "
            f"{sum(len(e) for e in self._program_edges.values())} program edges, "
            f"{sum(len(e) for e in self._fault_edges.values())} fault edges)"
        )


def _reconstruct(
    parents: Dict[State, Optional[Tuple[State, str]]], goal: State
) -> Tuple[List[State], List[str]]:
    states: List[State] = [goal]
    actions: List[str] = []
    current = goal
    while parents[current] is not None:
        previous, action_name = parents[current]  # type: ignore[misc]
        states.append(previous)
        actions.append(action_name)
        current = previous
    states.reverse()
    actions.reverse()
    return states, actions


# -- memoized exploration -----------------------------------------------------

#: (program, start states, fault actions, max_states) -> TransitionSystem.
#: Programs and actions are keyed by identity (they are never mutated);
#: start states by value.  Entries hold strong references, so a cached
#: program cannot be garbage-collected out from under its key.
_SYSTEM_CACHE: "OrderedDict[Tuple, TransitionSystem]" = OrderedDict()
_SYSTEM_CACHE_MAXSIZE = 128


def explored_system(
    program: Program,
    start_states: Iterable[State],
    fault_actions: Sequence[Action] = (),
    max_states: int = DEFAULT_MAX_STATES,
    symmetric: bool = False,
) -> TransitionSystem:
    """A memoized :class:`TransitionSystem`.

    Repeated calls with the same program, start states, and fault
    actions return the *same* (immutable) system object — tolerance
    certificates, theory lemmas, and synthesis re-verification all
    interrogate ``p [] F`` from the same span several times, and only
    the first call pays for exploration.  The cache is a bounded LRU of
    :data:`_SYSTEM_CACHE_MAXSIZE` systems; evict explicitly with
    :func:`clear_system_cache`.

    ``symmetric=True`` explores the quotient graph under the program's
    declared symmetry (see :class:`TransitionSystem`); the declared
    group joins the cache key, so quotient and unreduced systems of the
    same ``p [] F`` are cached independently.
    """
    starts = tuple(dict.fromkeys(start_states))
    faults = tuple(fault_actions)
    # Program and Action objects hash/compare by identity (they are never
    # mutated after construction); start states compare by value.
    key = (
        program, starts, faults, max_states,
        program.symmetry if symmetric else None,
    )
    system = _SYSTEM_CACHE.get(key)
    if system is not None:
        _SYSTEM_CACHE.move_to_end(key)
        return system
    system = TransitionSystem(
        program, starts, fault_actions=faults, max_states=max_states,
        symmetric=symmetric,
    )
    _SYSTEM_CACHE[key] = system
    if len(_SYSTEM_CACHE) > _SYSTEM_CACHE_MAXSIZE:
        _SYSTEM_CACHE.popitem(last=False)
    return system


def clear_system_cache() -> None:
    """Drop every memoized transition system (and the per-program start
    state caches kept by :class:`~repro.core.program.Program`)."""
    _SYSTEM_CACHE.clear()
    Program.clear_state_caches()


def clear_all_caches() -> None:
    """Reset the library to a cache-cold state.

    :func:`clear_system_cache` drops the memoized systems, the
    per-program state/start-set caches, the shared full-space universe
    indexes, and every registered downstream memo — but the per-
    :class:`~repro.core.action.Action` successor and equivalence-class
    memos live on action objects held by long-lived models, and survive
    it.  (The ``action_edges`` row-translation memos do *not* need
    separate treatment: they hang off ``StateIndex`` objects whose
    lifetimes end with the universe cache or with the cached systems'
    region indexes, both already dropped above.)  Benchmark cold-start
    paths call this so recorded numbers include every cache miss.
    """
    clear_system_cache()
    Action.clear_successor_caches()
