"""Transition systems: reachable state-space exploration.

The checks in Sections 2–5 of the paper all quantify over computations of
a program (possibly in the presence of faults).  On finite-state programs
those checks reduce to questions about the *reachable transition graph*,
which this module materializes:

- :class:`TransitionSystem` explores the states reachable from a set of
  start states under a program's actions plus an optional set of fault
  actions, recording labelled edges and which labels are faults;
- closure checks (``S is closed in p``, ``T is closed in F``) become
  universally-quantified checks over the recorded edges;
- deadlock detection supports the paper's *maximality* condition (a finite
  computation must end in a state where every guard is false).

Fault edges are tracked separately because the paper's Assumption 2
(finitely many fault occurrences) means safety is judged over *all* edges
while liveness is judged over program edges only.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from .action import Action
from .predicate import Predicate
from .program import Program
from .results import CheckResult, Counterexample
from .state import State

__all__ = ["Edge", "TransitionSystem"]

#: A labelled edge: (source, action name, target).
Edge = Tuple[State, str, State]


class TransitionSystem:
    """The reachable transition graph of ``program [] faults`` from
    ``start_states``.

    Parameters
    ----------
    program:
        The program whose actions drive (fair) computation steps.
    start_states:
        Iterable of states exploration begins from.  Typically the states
        satisfying an invariant or fault-span predicate.
    fault_actions:
        Optional extra actions representing a fault-class ``F``;
        their edges are recorded but marked as fault edges.
    max_states:
        Safety valve against state-space explosion; exploration raises if
        exceeded.
    """

    def __init__(
        self,
        program: Program,
        start_states: Iterable[State],
        fault_actions: Sequence[Action] = (),
        max_states: int = 2_000_000,
    ):
        self.program = program
        self.fault_actions: Tuple[Action, ...] = tuple(fault_actions)
        self.fault_action_names: FrozenSet[str] = frozenset(
            a.name for a in self.fault_actions
        )
        overlap = self.fault_action_names & {a.name for a in program.actions}
        if overlap:
            raise ValueError(f"fault actions share names with program: {overlap}")

        self.start_states: Tuple[State, ...] = tuple(dict.fromkeys(start_states))
        self.states: Set[State] = set()
        #: outgoing program edges per state: state -> [(action, next)]
        self._program_edges: Dict[State, List[Tuple[str, State]]] = {}
        #: outgoing fault edges per state
        self._fault_edges: Dict[State, List[Tuple[str, State]]] = {}
        self._explore(max_states)

    # -- construction ------------------------------------------------------
    def _explore(self, max_states: int) -> None:
        frontier = deque(self.start_states)
        self.states.update(self.start_states)
        while frontier:
            state = frontier.popleft()
            program_edges: List[Tuple[str, State]] = []
            for action in self.program.actions:
                for nxt in action.successors(state):
                    program_edges.append((action.name, nxt))
            fault_edges: List[Tuple[str, State]] = []
            for action in self.fault_actions:
                for nxt in action.successors(state):
                    fault_edges.append((action.name, nxt))
            self._program_edges[state] = program_edges
            self._fault_edges[state] = fault_edges
            for _, nxt in program_edges + fault_edges:
                if nxt not in self.states:
                    self.states.add(nxt)
                    frontier.append(nxt)
                    if len(self.states) > max_states:
                        raise RuntimeError(
                            f"state-space exceeds max_states={max_states} "
                            f"for {self.program.name!r}"
                        )

    # -- views ---------------------------------------------------------------
    def program_edges_from(self, state: State) -> List[Tuple[str, State]]:
        return self._program_edges.get(state, [])

    def fault_edges_from(self, state: State) -> List[Tuple[str, State]]:
        return self._fault_edges.get(state, [])

    def edges_from(self, state: State, include_faults: bool = True
                   ) -> List[Tuple[str, State]]:
        edges = list(self._program_edges.get(state, []))
        if include_faults:
            edges.extend(self._fault_edges.get(state, []))
        return edges

    def all_edges(self, include_faults: bool = True) -> Iterable[Edge]:
        for state in self.states:
            for action_name, nxt in self._program_edges.get(state, []):
                yield (state, action_name, nxt)
            if include_faults:
                for action_name, nxt in self._fault_edges.get(state, []):
                    yield (state, action_name, nxt)

    def deadlock_states(self) -> List[State]:
        """States where no *program* action is enabled.

        These are the states where a maximal computation may legitimately
        end; fault actions never count toward enabledness (computations
        are only required to be p-maximal, Section 2.3).
        """
        return [
            s
            for s in self.states
            if not any(a.enabled(s) for a in self.program.actions)
        ]

    def states_satisfying(self, predicate: Predicate) -> List[State]:
        return [s for s in self.states if predicate(s)]

    # -- closure checks ------------------------------------------------------
    def is_closed(
        self,
        predicate: Predicate,
        include_faults: bool = False,
        description: Optional[str] = None,
    ) -> CheckResult:
        """Check that ``predicate`` is closed in the explored system.

        With ``include_faults=False`` this is the paper's "S is closed in
        p"; with ``include_faults=True`` it additionally requires every
        fault action to preserve the predicate ("T is closed in F",
        Section 2.3), which together with ``S ⇒ T`` makes T an F-span.
        """
        what = description or (
            f"{predicate.name} closed in {self.program.name}"
            + (" [] F" if include_faults else "")
        )
        for state in self.states:
            if not predicate(state):
                continue
            for action_name, nxt in self.edges_from(state, include_faults):
                if not predicate(nxt):
                    return CheckResult.failed(
                        what,
                        counterexample=Counterexample(
                            kind="transition",
                            states=(state, nxt),
                            actions=(action_name,),
                            note=f"{predicate.name} falsified by {action_name}",
                        ),
                    )
        return CheckResult.passed(what)

    def is_fault_span(self, span: Predicate, invariant: Predicate) -> CheckResult:
        """Section 2.3 *Fault-span*: ``S ⇒ T``, T closed in p, T closed in F."""
        for state in self.states:
            if invariant(state) and not span(state):
                return CheckResult.failed(
                    f"{span.name} is an F-span from {invariant.name}",
                    counterexample=Counterexample(
                        kind="state",
                        states=(state,),
                        note=f"{invariant.name} holds but {span.name} does not",
                    ),
                )
        closed = self.is_closed(span, include_faults=True)
        if not closed:
            return closed
        return CheckResult.passed(
            f"{span.name} is an F-span of {self.program.name} from {invariant.name}"
        )

    # -- path finding -------------------------------------------------------
    def find_path(
        self,
        sources: Iterable[State],
        goal: Predicate,
        include_faults: bool = True,
        within: Optional[Predicate] = None,
    ) -> Optional[Tuple[List[State], List[str]]]:
        """BFS for a path from any source to a goal state.

        ``within`` restricts intermediate states (sources must satisfy it
        too).  Returns ``(states, actions)`` or ``None``.
        """
        parents: Dict[State, Optional[Tuple[State, str]]] = {}
        frontier: deque = deque()
        for source in sources:
            if within is not None and not within(source):
                continue
            if source not in parents:
                parents[source] = None
                frontier.append(source)
        while frontier:
            state = frontier.popleft()
            if goal(state):
                return _reconstruct(parents, state)
            for action_name, nxt in self.edges_from(state, include_faults):
                if within is not None and not within(nxt):
                    continue
                if nxt not in parents:
                    parents[nxt] = (state, action_name)
                    frontier.append(nxt)
        return None

    def __repr__(self) -> str:
        return (
            f"TransitionSystem({self.program.name!r}, {len(self.states)} states, "
            f"{sum(len(e) for e in self._program_edges.values())} program edges, "
            f"{sum(len(e) for e in self._fault_edges.values())} fault edges)"
        )


def _reconstruct(
    parents: Dict[State, Optional[Tuple[State, str]]], goal: State
) -> Tuple[List[State], List[str]]:
    states: List[State] = [goal]
    actions: List[str] = []
    current = goal
    while parents[current] is not None:
        previous, action_name = parents[current]  # type: ignore[misc]
        states.append(previous)
        actions.append(action_name)
        current = previous
    states.reverse()
    actions.reverse()
    return states, actions
