"""Transition systems: reachable state-space exploration.

The checks in Sections 2–5 of the paper all quantify over computations of
a program (possibly in the presence of faults).  On finite-state programs
those checks reduce to questions about the *reachable transition graph*,
which this module materializes:

- :class:`TransitionSystem` explores the states reachable from a set of
  start states under a program's actions plus an optional set of fault
  actions, recording labelled edges and which labels are faults;
- closure checks (``S is closed in p``, ``T is closed in F``) become
  universally-quantified checks over the recorded edges;
- deadlock detection supports the paper's *maximality* condition (a finite
  computation must end in a state where every guard is false).

Fault edges are tracked separately because the paper's Assumption 2
(finitely many fault occurrences) means safety is judged over *all* edges
while liveness is judged over program edges only.

Performance notes (see ``docs/performance.md``):

- every explored state is canonicalized through a
  :class:`~repro.core.state.StateInterner`, so the states held by a
  system are pointer-equal iff value-equal and duplicate successors
  collapse before touching the frontier;
- per-state edge lists are stored as tuples and handed out *unsliced* —
  :meth:`TransitionSystem.edges_from` only concatenates when a state
  actually has fault edges to merge in;
- :meth:`deadlock_states` reads the recorded program edges instead of
  re-evaluating every guard;
- :func:`explored_system` memoizes whole systems in a bounded LRU keyed
  on (program, start states, fault actions, max_states), so tolerance
  certificates and synthesis pipelines that interrogate the same
  ``p [] F`` repeatedly explore it once.  ``clear_system_cache`` resets
  the table (programs and actions are keyed by identity, so the cache
  can only go stale if an Action object is mutated in place — which
  nothing in the library does).
"""

from __future__ import annotations

import sys
from collections import OrderedDict, deque
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    KeysView,
    List,
    Optional,
    Sequence,
    Tuple,
)

from . import kernels as _kernels
from .action import Action
from .predicate import Predicate
from .program import Program
from .regions import first_bit, iter_bits, system_index
from .results import CheckResult, Counterexample
from .state import Schema, State, StateInterner, _state_of
from .symmetry import SymmetryError

__all__ = [
    "Edge",
    "TransitionSystem",
    "explored_system",
    "clear_system_cache",
    "clear_all_caches",
    "set_default_workers",
]

#: A labelled edge: (source, action name, target).
Edge = Tuple[State, str, State]

#: Default cap on explored states (a safety valve, not a tuning knob).
DEFAULT_MAX_STATES = 2_000_000

#: Largest code space the columnar engine will allocate a dense
#: code -> id table for (int32 entries: 64 MiB at the limit).
_DENSE_ID_SPACE_LIMIT = 1 << 24

#: Largest declared state space (Cartesian product of domains) the
#: tiny-space interpreted fast path handles; above this the batch
#: engines' per-level vectorization wins over their setup cost.
_SMALL_SPACE_STATES = 128

_EMPTY_EDGES: Tuple[Tuple[str, State], ...] = ()

#: module-wide default worker count for sharded exploration (``None``
#: or 1 = in-process); see :func:`set_default_workers`
_DEFAULT_WORKERS: Optional[int] = None


def set_default_workers(workers: Optional[int]) -> None:
    """Set the process count newly built :class:`TransitionSystem`\\ s
    use when their ``workers`` argument is left at ``None``.  Sharded
    exploration is bit-identical to in-process exploration for any
    worker count (pinned by tests), so this is purely a throughput knob.
    """
    global _DEFAULT_WORKERS
    if workers is not None and workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    _DEFAULT_WORKERS = workers


class TransitionSystem:
    """The reachable transition graph of ``program [] faults`` from
    ``start_states``.

    Parameters
    ----------
    program:
        The program whose actions drive (fair) computation steps.
    start_states:
        Iterable of states exploration begins from.  Typically the states
        satisfying an invariant or fault-span predicate.
    fault_actions:
        Optional extra actions representing a fault-class ``F``;
        their edges are recorded but marked as fault edges.
    max_states:
        Safety valve against state-space explosion; exploration raises if
        exceeded.
    symmetric:
        When true, explore the *quotient* graph under the program's
        declared symmetry group: every start state and every successor is
        mapped to the canonical representative of its orbit before it
        touches the frontier, so the full graph is never materialized.
        Requires ``program.symmetry`` (raises
        :class:`~repro.core.symmetry.SymmetryError` otherwise).  Verdicts
        over a quotient system equal those over the full system provided
        every consulted predicate/spec is a union of orbits — the
        tolerance checkers validate that before opting in.

    A constructed system is immutable; consider :func:`explored_system`
    to share one instance across repeated identical explorations.
    """

    def __init__(
        self,
        program: Program,
        start_states: Iterable[State],
        fault_actions: Sequence[Action] = (),
        max_states: int = DEFAULT_MAX_STATES,
        symmetric: bool = False,
        workers: Optional[int] = None,
    ):
        self.program = program
        self.symmetry = None
        if symmetric:
            if program.symmetry is None:
                raise SymmetryError(
                    f"symmetric exploration requested but {program.name!r} "
                    f"declares no symmetry group"
                )
            self.symmetry = program.symmetry
        self.fault_actions: Tuple[Action, ...] = tuple(fault_actions)
        self.fault_action_names: FrozenSet[str] = frozenset(
            a.name for a in self.fault_actions
        )
        overlap = self.fault_action_names & {a.name for a in program.actions}
        if overlap:
            raise ValueError(f"fault actions share names with program: {overlap}")

        self.start_states: Tuple[State, ...] = tuple(dict.fromkeys(start_states))
        #: outgoing program edges per state: state -> ((action, next), ...)
        #: (insertion-ordered over *every* explored state, making it double
        #: as the deterministic BFS-order state registry)
        self._program_edges: Dict[State, Tuple[Tuple[str, State], ...]] = {}
        #: outgoing fault edges per state (only states that have some)
        self._fault_edges: Dict[State, Tuple[Tuple[str, State], ...]] = {}
        #: per-predicate memo for states_satisfying (keyed by identity)
        self._satisfying: Dict[Predicate, Tuple[State, ...]] = {}
        #: integer adjacency built alongside level-synchronous assembly:
        #: (program rows, fault rows, state -> dense id) with rows[i] the
        #: ``(action name, target id)`` tuple of the state with id ``i``.
        #: ``SystemIndex`` adopts these instead of re-deriving ids from
        #: the State-level edge tables; ``None`` when the scalar engine
        #: ran (it has no level structure to hook)
        self._labeled_rows: Optional[Tuple[List, List, Dict[State, int]]] = None
        #: columnar edge arrays, set only by the all-array engine:
        #: ((src ids, dst ids, action positions) for program and fault
        #: edges, program names, fault names), each group sorted by
        #: source id with declaration-order actions — the raw material
        #: for ``SystemIndex``'s vectorized closure and escape sweeps
        self._edge_arrays = None
        #: True while State-level edge tuples are deferred: the columnar
        #: engine (and store-loaded graphs) hold only the id rows, and
        #: the first consumer that walks State-level edges pays one
        #: materialization pass (:meth:`_materialize_edges`).  Closure
        #: and region analyses never trigger it — they read the rows.
        self._edges_lazy = False
        #: (layout, rank-column matrix) of the explored states in id
        #: order, retained by the columnar engine for vectorized
        #: predicate sweeps (:meth:`~repro.core.regions.StateIndex`)
        self._state_cols = None
        if workers is None:
            workers = _DEFAULT_WORKERS
        self._explore(max_states, workers)

    # -- construction ------------------------------------------------------
    @property
    def states(self) -> KeysView[State]:
        """All explored states, in deterministic BFS discovery order."""
        return self._program_edges.keys()

    def _explore(self, max_states: int, workers: Optional[int] = None) -> None:
        if self.symmetry is not None:
            # orbit canonicalization: each state maps to the pooled
            # minimal representative of its symmetry orbit, so the BFS
            # materializes the quotient graph directly
            canonicalizer = self.symmetry.canonicalizer(self.program)
            canonical = canonicalizer.canonical
            canonical_many = canonicalizer.canonical_many
        else:
            # canonicalization is one C-level dict op: setdefault(s, s)
            # returns the pooled representative (inserting s if unseen),
            # exactly StateInterner.canonical without the method frames
            interner = StateInterner()
            canonical = interner._pool.setdefault
            canonical_many = interner.canonical_many
        self.start_states = tuple(
            dict.fromkeys(canonical_many(self.start_states))
        )
        for state in self.start_states:
            self._program_edges[state] = _EMPTY_EDGES
        # Three engines, one transition graph: sharded (process pool),
        # batched (compiled kernels over whole frontier levels), and
        # scalar (the original interpreted FIFO).  All three register
        # states and edges in the exact same order, so which engine ran
        # is unobservable from the finished system (pinned by tests).
        # The level-synchronous engines additionally accumulate the
        # dense-id adjacency rows as they assemble each level.
        self._labeled_rows = (
            [], [], {s: i for i, s in enumerate(self._program_edges)}
        )
        # Pause generational GC for the build: edge tuples hold State
        # references, so unlike (str, int) pairs they stay gc-tracked,
        # and letting collections rescan the growing graph costs more
        # than the whole expansion.  Exploration allocates no reference
        # cycles, so deferring collection is free.
        import gc

        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        try:
            if workers is not None and workers > 1:
                if self._explore_sharded(
                    max_states, canonical_many, workers
                ):
                    return
            if self.program.state_count() <= _SMALL_SPACE_STATES:
                self._explore_small(max_states, canonical)
                return
            if _kernels.get_backend() != "interpreted":
                if self._explore_columnar(max_states):
                    return
                if self._explore_batched(max_states, canonical):
                    return
            self._labeled_rows = None
            self._explore_scalar(max_states, canonical)
        finally:
            if gc_was_enabled:
                gc.enable()

    def _explore_scalar(self, max_states: int, canonical) -> None:
        """The reference engine: interpreted FIFO BFS, one
        ``Action.successors`` call per (state, action) pair."""
        frontier = deque(self.start_states)
        program_actions = self.program.actions
        fault_actions = self.fault_actions
        program_edges_of = self._program_edges
        fault_edges_of = self._fault_edges
        while frontier:
            state = frontier.popleft()
            program_edges: List[Tuple[str, State]] = []
            for action in program_actions:
                name = action.name
                for nxt in action.successors(state):
                    program_edges.append((name, canonical(nxt, nxt)))
            fault_edges: List[Tuple[str, State]] = []
            for action in fault_actions:
                name = action.name
                for nxt in action.successors(state):
                    fault_edges.append((name, canonical(nxt, nxt)))
            # drop duplicate successor edges (nondeterministic statements
            # may offer the same alternative more than once)
            if len(program_edges) > 1:
                program_edges = list(dict.fromkeys(program_edges))
            if len(fault_edges) > 1:
                fault_edges = list(dict.fromkeys(fault_edges))
            program_edges_of[state] = tuple(program_edges)
            if fault_edges:
                fault_edges_of[state] = tuple(fault_edges)
            for edges in (program_edges, fault_edges):
                for _, nxt in edges:
                    if nxt not in program_edges_of:
                        # register before expansion so duplicates are
                        # filtered; overwritten when nxt is expanded
                        program_edges_of[nxt] = _EMPTY_EDGES
                        frontier.append(nxt)
                        if len(program_edges_of) > max_states:
                            raise RuntimeError(
                                f"state-space exceeds max_states={max_states} "
                                f"for {self.program.name!r}"
                            )

    def _explore_small(self, max_states: int, canonical) -> None:
        """Tiny-space fast path: interpreted, level-synchronous BFS.

        For state spaces of at most :data:`_SMALL_SPACE_STATES` codes
        the batch engines' setup — layout construction and one
        compilation attempt per action — costs more than the whole
        interpreted expansion, so this path expands each level through
        plain ``Action.successors`` calls and folds it with
        :meth:`_assemble_level`.  Unlike the scalar engine it keeps the
        dense-id row accumulator populated, so downstream region
        indexing skips the State-level reassembly too."""
        frontier: List[State] = list(self.start_states)
        program_actions = self.program.actions
        fault_actions = self.fault_actions
        while frontier:
            n = len(frontier)
            program_buckets: List[List] = [[] for _ in range(n)]
            fault_buckets: List[List] = [[] for _ in range(n)]
            for actions, buckets in (
                (program_actions, program_buckets),
                (fault_actions, fault_buckets),
            ):
                for action in actions:
                    name = action.name
                    for i, state in enumerate(frontier):
                        bucket = buckets[i]
                        for nxt in action.successors(state):
                            bucket.append((name, canonical(nxt, nxt)))
            frontier = self._assemble_level(
                frontier, program_buckets, fault_buckets, max_states
            )

    def _assemble_level(
        self,
        frontier: List[State],
        program_buckets: List[List[Tuple[str, State]]],
        fault_buckets: List[List[Tuple[str, State]]],
        max_states: int,
        program_dirty: Optional[bytearray] = None,
        fault_dirty: Optional[bytearray] = None,
    ) -> List[State]:
        """Fold one expanded frontier level into the edge tables.

        Buckets hold each frontier state's edges in program-then-fault,
        action-major order — exactly what the scalar loop produces — and
        states are registered per source state in edge order, so the
        discovery order (and the ``max_states`` raise point) of the
        scalar engine is reproduced bit for bit.

        Duplicate edges can only come from one action offering the same
        successor twice (action names are unique, so edges from distinct
        actions never collide) — planned actions are deterministic and
        cannot do that.  The optional dirty flags mark the buckets where
        some interpreted action yielded more than one successor; when
        given, dedup runs only there (``dict.fromkeys`` on a
        duplicate-free list is the identity, so skipping it is
        unobservable).

        Because frontier levels are expanded in registration order, the
        expansion order over the whole run *is* the dense-id order —
        each pass through this method appends the expanded states'
        ``(action name, target id)`` rows to the accumulator that
        :class:`~repro.core.regions.SystemIndex` later adopts, so
        nothing downstream re-derives ids from State-level edges."""
        program_edges_of = self._program_edges
        fault_edges_of = self._fault_edges
        prows, frows, id_of = self._labeled_rows
        next_frontier: List[State] = []
        for i, state in enumerate(frontier):
            program_edges = program_buckets[i]
            fault_edges = fault_buckets[i]
            if (
                len(program_edges) > 1
                and (program_dirty is None or program_dirty[i])
            ):
                program_edges = list(dict.fromkeys(program_edges))
            if (
                len(fault_edges) > 1
                and (fault_dirty is None or fault_dirty[i])
            ):
                fault_edges = list(dict.fromkeys(fault_edges))
            program_edges_of[state] = tuple(program_edges)
            if fault_edges:
                fault_edges_of[state] = tuple(fault_edges)
            for edges in (program_edges, fault_edges):
                for _, nxt in edges:
                    if nxt not in program_edges_of:
                        program_edges_of[nxt] = _EMPTY_EDGES
                        id_of[nxt] = len(id_of)
                        next_frontier.append(nxt)
                        if len(program_edges_of) > max_states:
                            raise RuntimeError(
                                f"state-space exceeds max_states={max_states} "
                                f"for {self.program.name!r}"
                            )
            prows.append(tuple((a, id_of[t]) for a, t in program_edges))
            frows.append(
                tuple((a, id_of[t]) for a, t in fault_edges)
                if fault_edges else _EMPTY_EDGES
            )
        return next_frontier

    def _explore_columnar(self, max_states: int) -> bool:
        """The all-array engine: levels expand, dedup, and id-assign as
        numpy arrays; Python touches each edge only once, to build the
        final row tuples.

        Engages only when the whole system is kernel-expressible with a
        dense code space: numpy backend, no symmetry quotient (orbit
        canonicalization is per-state by nature), one start schema,
        every program *and* fault action compiled, and a state space
        small enough for a code-indexed id table.  Successor codes map
        to dense ids through that table, so interning, dedup, and
        discovery-order id assignment are all vectorized; the scalar
        engine's FIFO order is reproduced by a stable sort on
        (source, program-before-fault, action position).  Returns
        ``False`` to hand off to the per-bucket engines otherwise."""
        starts = self.start_states
        if not starts:
            return True
        if self.symmetry is not None:
            return False
        if _kernels.resolved_backend() != "numpy":
            return False
        schema = starts[0]._schema
        for state in starts:
            if state._schema is not schema:
                return False
        layout = _kernels.layout_for(schema, self.program._domains)
        if layout is None or layout.space > _DENSE_ID_SPACE_LIMIT:
            return False
        program_actions = self.program.actions
        fault_actions = self.fault_actions
        kernels_p = [
            _kernels.batch_kernel(a, layout) for a in program_actions
        ]
        kernels_f = [_kernels.batch_kernel(a, layout) for a in fault_actions]
        if any(k is None for k in kernels_p) or any(
            k is None for k in kernels_f
        ):
            return False
        try:
            cols = layout.columns_from_states(starts)
        except KeyError:
            # a start value escaped its declared domain; codes cannot
            # represent it, so the bucket engines take over
            return False
        np = _kernels._np

        names_p = np.array([a.name for a in program_actions], dtype=object)
        names_f = np.array([a.name for a in fault_actions], dtype=object)
        #: dense code -> id table; -1 marks never-seen codes
        code_ids = np.full(layout.space, -1, dtype=np.int32)
        code_ids[layout.pack_columns(cols)] = np.arange(
            len(starts), dtype=np.int32
        )
        states_list: List[State] = list(starts)
        program_edges_of = self._program_edges
        prows, frows, id_of = self._labeled_rows
        empty = np.empty(0, dtype=np.int64)
        acc_p: List = []
        acc_f: List = []
        col_acc: List = [cols]
        frontier_lo = 0
        while True:
            n = cols.shape[1]
            # expand: one kernel call per action over the whole level
            group_arrays = []
            for kernels_g in (kernels_p, kernels_f):
                srcs, dsts, acts = [empty], [empty], [empty]
                for pos, kernel in enumerate(kernels_g):
                    idx, out = kernel(cols)
                    if out is None:
                        continue
                    srcs.append(idx)
                    dsts.append(layout.pack_columns(out))
                    acts.append(np.full(idx.shape[0], pos, dtype=np.int64))
                group_arrays.append(
                    tuple(np.concatenate(part) for part in (srcs, dsts, acts))
                )
            (p_src, p_dst, p_act), (f_src, f_dst, f_act) = group_arrays

            # id assignment: new codes get ids in the scalar engine's
            # discovery order — source-major, program edges before fault
            # edges, actions in declaration order (the stable sort keeps
            # the action-major concatenation order within equal keys)
            key = np.concatenate((p_src * 2, f_src * 2 + 1))
            s_dst = np.concatenate((p_dst, f_dst))[
                np.argsort(key, kind="stable")
            ]
            new_mask = code_ids[s_dst] < 0
            if new_mask.any():
                uniq, first = np.unique(s_dst[new_mask], return_index=True)
                new_codes = uniq[np.argsort(first)]
                next_id = len(states_list)
                if next_id + new_codes.shape[0] > max_states:
                    raise RuntimeError(
                        f"state-space exceeds max_states={max_states} "
                        f"for {self.program.name!r}"
                    )
                code_ids[new_codes] = np.arange(
                    next_id, next_id + new_codes.shape[0], dtype=np.int32
                )
                new_cols = layout.columns_from_codes(new_codes)
                values_of = layout.values_from_column
                for j in range(new_codes.shape[0]):
                    state = _state_of(schema, values_of(new_cols, j))
                    states_list.append(state)
                    program_edges_of[state] = _EMPTY_EDGES
                    id_of[state] = next_id + j
            else:
                new_cols = None

            # rows: per-state slices of the source-major edge arrays
            views = []
            for acc, (src, dst, act, names_g) in (
                (acc_p, (p_src, p_dst, p_act, names_p)),
                (acc_f, (f_src, f_dst, f_act, names_f)),
            ):
                order = np.argsort(src, kind="stable")
                src = src[order]
                ids_arr = code_ids[dst[order]]
                act_arr = act[order]
                acc.append((src + frontier_lo, ids_arr, act_arr))
                views.append((
                    names_g[act_arr].tolist(),
                    ids_arr.tolist(),
                    np.searchsorted(
                        src, np.arange(n + 1, dtype=np.int64)
                    ).tolist(),
                ))
            # only the id rows are assembled here; the State-level edge
            # tuples stay unmaterialized until a consumer actually walks
            # them (closure/region/tolerance sweeps never do)
            (pn, pi, pb), (fn, fi, fb) = views
            for i in range(n):
                lo, hi = pb[i], pb[i + 1]
                prows.append(tuple(zip(pn[lo:hi], pi[lo:hi])))
                lo, hi = fb[i], fb[i + 1]
                frows.append(
                    tuple(zip(fn[lo:hi], fi[lo:hi])) if lo != hi
                    else _EMPTY_EDGES
                )

            frontier_lo += n
            if new_cols is None:
                self._edge_arrays = (
                    tuple(np.concatenate(part) for part in zip(*acc_p)),
                    tuple(np.concatenate(part) for part in zip(*acc_f)),
                    [a.name for a in program_actions],
                    [a.name for a in fault_actions],
                )
                self._state_cols = (layout, np.hstack(col_acc))
                self._edges_lazy = True
                return True
            col_acc.append(new_cols)
            cols = new_cols

    def _explore_batched(self, max_states: int, canonical) -> bool:
        """Level-synchronous BFS through compiled batch kernels.

        Planned actions expand a whole frontier level per kernel call
        (vectorized over rank columns on the numpy backend, compiled
        row closures on the pure backend); unplanned actions fall back
        to interpreted ``successors`` per state.  Returns ``False``
        when no action compiles, handing the exploration back to the
        scalar engine."""
        starts = self.start_states
        if not starts:
            return True
        schema = starts[0]._schema
        for state in starts:
            if state._schema is not schema:
                return False
        domains = self.program._domains
        backend = _kernels.resolved_backend()
        layout = None
        if backend == "numpy":
            layout = _kernels.layout_for(schema, domains)
        use_numpy = layout is not None
        program_actions = self.program.actions
        fault_actions = self.fault_actions
        compiled = 0
        action_kernels: Dict[int, object] = {}
        for group, actions in enumerate((program_actions, fault_actions)):
            for pos, action in enumerate(actions):
                if use_numpy:
                    kernel = _kernels.batch_kernel(action, layout)
                else:
                    kernel = _kernels.row_kernel(action, schema, domains)
                action_kernels[(group, pos)] = kernel
                if kernel is not None:
                    compiled += 1
        if not compiled:
            return False

        # raw successor (code or values-tuple) -> canonical state; the
        # authoritative canonicalizer still sees every genuinely new
        # state, so this memo composes with symmetry quotients and with
        # the scalar fallback interning identically
        by_code: Dict[int, State] = {}
        by_values: Dict[Tuple, State] = {}
        frontier: List[State] = list(starts)
        batch_ok = True
        while frontier:
            n = len(frontier)
            program_buckets: List[List] = [[] for _ in range(n)]
            fault_buckets: List[List] = [[] for _ in range(n)]
            program_dirty = bytearray(n)
            fault_dirty = bytearray(n)
            cols = None
            if use_numpy and batch_ok:
                if all(state._schema is schema for state in frontier):
                    try:
                        cols = layout.columns_from_states(frontier)
                    except KeyError:
                        # a value escaped its declared domain (start
                        # states are caller-supplied); ranks cannot
                        # represent it, so finish interpreted
                        batch_ok = False
                else:
                    batch_ok = False
            for group, (actions, buckets, dirty) in enumerate((
                (program_actions, program_buckets, program_dirty),
                (fault_actions, fault_buckets, fault_dirty),
            )):
                for pos, action in enumerate(actions):
                    kernel = action_kernels[(group, pos)]
                    name = action.name
                    if kernel is None or (use_numpy and cols is None):
                        for i, state in enumerate(frontier):
                            successors = action.successors(state)
                            if not successors:
                                continue
                            if len(successors) > 1:
                                dirty[i] = 1
                            bucket = buckets[i]
                            for nxt in successors:
                                bucket.append((name, canonical(nxt, nxt)))
                    elif use_numpy:
                        idx, out = kernel(cols)
                        if out is None:
                            continue
                        codes = layout.pack_columns(out).tolist()
                        get = by_code.get
                        # resolve first (list comp + C-level membership
                        # scan), materialize the rare misses second —
                        # after the opening levels nearly every code is
                        # already interned and the miss pass never runs
                        reps = [get(code) for code in codes]
                        # identity scan, not ``None in reps``: ``in``
                        # would compare ``None == State`` element-wise,
                        # paying State.__eq__'s Mapping instance check
                        if any(rep is None for rep in reps):
                            values_of = layout.values_from_column
                            for j, rep in enumerate(reps):
                                if rep is None:
                                    code = codes[j]
                                    rep = get(code)
                                    if rep is None:
                                        raw = _state_of(
                                            schema, values_of(out, j)
                                        )
                                        rep = canonical(raw, raw)
                                        by_code[code] = rep
                                    reps[j] = rep
                        for i, rep in zip(idx.tolist(), reps):
                            buckets[i].append((name, rep))
                    else:
                        get = by_values.get
                        for i, state in enumerate(frontier):
                            if state._schema is not schema:
                                successors = action.successors(state)
                                if len(successors) > 1:
                                    dirty[i] = 1
                                bucket = buckets[i]
                                for nxt in successors:
                                    bucket.append((name, canonical(nxt, nxt)))
                                continue
                            row = kernel(state._values)
                            if row is None:
                                continue
                            nxt = get(row)
                            if nxt is None:
                                raw = _state_of(schema, row)
                                nxt = canonical(raw, raw)
                                by_values[row] = nxt
                            buckets[i].append((name, nxt))
            frontier = self._assemble_level(
                frontier, program_buckets, fault_buckets, max_states,
                program_dirty, fault_dirty,
            )
        return True

    def _explore_sharded(
        self, max_states: int, canonical_many, workers: int
    ) -> bool:
        """Level-synchronous BFS over a fork process pool.

        Each frontier level is partitioned across workers by a
        deterministic hash of the canonical state's values (crc32, not
        Python's per-process-salted ``hash``); workers return raw
        successor rows tagged with their frontier position, and the
        master bulk-interns each returned row list (one
        ``canonical_many`` pass instead of a call per successor) and
        assembles them in frontier order — so the finished graph is
        bit-identical for any worker count.  Returns ``False`` on
        platforms without ``fork`` (the pool inherits the program's
        action closures by address space; guarded-command statements
        are lambdas, which do not pickle)."""
        global _SHARD_ACTIONS
        if not self.start_states:
            return True
        import multiprocessing

        try:
            context = multiprocessing.get_context("fork")
        except ValueError:
            return False
        _SHARD_ACTIONS = (self.program.actions, self.fault_actions)
        pool = context.Pool(processes=workers)
        try:
            frontier: List[State] = list(self.start_states)
            while frontier:
                shards: List[List] = [[] for _ in range(workers)]
                for i, state in enumerate(frontier):
                    shard = _shard_of(state._values, workers)
                    shards[shard].append(
                        (i, state._schema.names, state._values)
                    )
                n = len(frontier)
                program_buckets: List[List] = [None] * n
                fault_buckets: List[List] = [None] * n
                for part in pool.map(_expand_shard, shards):
                    for i, program_rows, fault_rows in part:
                        for rows, buckets in (
                            (program_rows, program_buckets),
                            (fault_rows, fault_buckets),
                        ):
                            reps = canonical_many([
                                _state_of(Schema.of(names), values)
                                for _, names, values in rows
                            ])
                            buckets[i] = [
                                (row[0], rep)
                                for row, rep in zip(rows, reps)
                            ]
                frontier = self._assemble_level(
                    frontier, program_buckets, fault_buckets, max_states
                )
        finally:
            _SHARD_ACTIONS = None
            pool.terminate()
            pool.join()
        return True

    # -- views ---------------------------------------------------------------
    def _materialize_edges(self) -> None:
        """Build the State-level edge tuples from the id rows.

        The columnar engine and store-loaded graphs defer this: region,
        closure, and tolerance machinery work on the rows (or the edge
        arrays) and never ask for State-level tuples, so most systems
        live and die without ever paying for them.  The first consumer
        that does ask (path finding, spec transition sweeps, direct
        ``edges_from`` callers) triggers one whole-graph pass."""
        prows, frows, _ = self._labeled_rows
        states_list = list(self._program_edges)
        program_edges_of = self._program_edges
        fault_edges_of = self._fault_edges
        for state, prow, frow in zip(states_list, prows, frows):
            if prow:
                program_edges_of[state] = tuple(
                    (name, states_list[j]) for name, j in prow
                )
            if frow:
                fault_edges_of[state] = tuple(
                    (name, states_list[j]) for name, j in frow
                )
        self._edges_lazy = False

    def program_edges_from(self, state: State) -> Sequence[Tuple[str, State]]:
        if self._edges_lazy:
            self._materialize_edges()
        return self._program_edges.get(state, _EMPTY_EDGES)

    def fault_edges_from(self, state: State) -> Sequence[Tuple[str, State]]:
        if self._edges_lazy:
            self._materialize_edges()
        return self._fault_edges.get(state, _EMPTY_EDGES)

    def edges_from(self, state: State, include_faults: bool = True
                   ) -> Sequence[Tuple[str, State]]:
        """Outgoing edges of ``state``.

        Returns the stored (immutable) edge tuple directly whenever
        possible — a copy is only made when a state really has fault
        edges to merge with its program edges, so the common case inside
        closure checks' inner loops allocates nothing.
        """
        if self._edges_lazy:
            self._materialize_edges()
        program_edges = self._program_edges.get(state, _EMPTY_EDGES)
        if not include_faults:
            return program_edges
        fault_edges = self._fault_edges.get(state)
        if not fault_edges:
            return program_edges
        return program_edges + fault_edges

    def all_edges(self, include_faults: bool = True) -> Iterable[Edge]:
        if self._edges_lazy:
            self._materialize_edges()
        for state, edges in self._program_edges.items():
            for action_name, nxt in edges:
                yield (state, action_name, nxt)
        if include_faults:
            for state, edges in self._fault_edges.items():
                for action_name, nxt in edges:
                    yield (state, action_name, nxt)

    def deadlock_states(self) -> List[State]:
        """States where no *program* action is enabled.

        These are the states where a maximal computation may legitimately
        end; fault actions never count toward enabledness (computations
        are only required to be p-maximal, Section 2.3).  Read off the
        recorded program edges — every enabled action contributed an
        edge during exploration, so no guard is re-evaluated here.
        """
        if self._edges_lazy:
            # read the id rows; every State-level value is a placeholder
            return [
                state
                for state, row in zip(
                    self._program_edges, self._labeled_rows[0]
                )
                if not row
            ]
        return [
            state
            for state, edges in self._program_edges.items()
            if not edges
        ]

    def states_satisfying(self, predicate: Predicate) -> List[State]:
        """The explored states at which ``predicate`` holds.

        Memoized per predicate *object* (identity, not formula), since
        theory checks repeatedly interrogate a system with the same
        invariant/span predicates.
        """
        cached = self._satisfying.get(predicate)
        if cached is None:
            cached = tuple(filter(predicate.fn, self._program_edges))
            self._satisfying[predicate] = cached
        return list(cached)

    # -- closure checks ------------------------------------------------------
    def is_closed(
        self,
        predicate: Predicate,
        include_faults: bool = False,
        description: Optional[str] = None,
    ) -> CheckResult:
        """Check that ``predicate`` is closed in the explored system.

        With ``include_faults=False`` this is the paper's "S is closed in
        p"; with ``include_faults=True`` it additionally requires every
        fault action to preserve the predicate ("T is closed in F",
        Section 2.3), which together with ``S ⇒ T`` makes T an F-span.
        """
        what = description or (
            f"{predicate.name} closed in {self.program.name}"
            + (" [] F" if include_faults else "")
        )
        index = system_index(self)
        bits = index.region_bits(predicate)
        if bits != index.full_bits:  # full region: every edge is internal
            hit = index.first_escaping_edge(bits, include_faults)
            if hit is not None:
                u, action_name, v = hit
                states = index.states
                return CheckResult.failed(
                    what,
                    counterexample=Counterexample(
                        kind="transition",
                        states=(states[u], states[v]),
                        actions=(action_name,),
                        note=(
                            f"{predicate.name} falsified by "
                            f"{action_name}"
                        ),
                    ),
                )
        return CheckResult.passed(what)

    def is_fault_span(self, span: Predicate, invariant: Predicate) -> CheckResult:
        """Section 2.3 *Fault-span*: ``S ⇒ T``, T closed in p, T closed in F."""
        index = system_index(self)
        gap = index.region_bits(invariant) & ~index.region_bits(span)
        if gap:
            state = index.states[first_bit(gap)]
            return CheckResult.failed(
                f"{span.name} is an F-span from {invariant.name}",
                counterexample=Counterexample(
                    kind="state",
                    states=(state,),
                    note=f"{invariant.name} holds but {span.name} does not",
                ),
            )
        closed = self.is_closed(span, include_faults=True)
        if not closed:
            return closed
        return CheckResult.passed(
            f"{span.name} is an F-span of {self.program.name} from {invariant.name}"
        )

    # -- path finding -------------------------------------------------------
    def find_path(
        self,
        sources: Iterable[State],
        goal: Predicate,
        include_faults: bool = True,
        within: Optional[Predicate] = None,
    ) -> Optional[Tuple[List[State], List[str]]]:
        """BFS for a path from any source to a goal state.

        ``within`` restricts intermediate states (sources must satisfy it
        too).  Returns ``(states, actions)`` or ``None``.
        """
        parents: Dict[State, Optional[Tuple[State, str]]] = {}
        frontier: deque = deque()
        for source in sources:
            if within is not None and not within(source):
                continue
            if source not in parents:
                parents[source] = None
                frontier.append(source)
        while frontier:
            state = frontier.popleft()
            if goal(state):
                return _reconstruct(parents, state)
            for action_name, nxt in self.edges_from(state, include_faults):
                if within is not None and not within(nxt):
                    continue
                if nxt not in parents:
                    parents[nxt] = (state, action_name)
                    frontier.append(nxt)
        return None

    def __repr__(self) -> str:
        if self._edges_lazy:
            prows, frows, _ = self._labeled_rows
            n_program = sum(len(row) for row in prows)
            n_fault = sum(len(row) for row in frows)
        else:
            n_program = sum(len(e) for e in self._program_edges.values())
            n_fault = sum(len(e) for e in self._fault_edges.values())
        return (
            f"TransitionSystem({self.program.name!r}, {len(self.states)} states, "
            f"{n_program} program edges, {n_fault} fault edges)"
        )


# -- sharded-exploration worker side ------------------------------------------

#: (program actions, fault actions) of the exploration currently running
#: sharded; set by the master immediately before the fork pool is
#: created, so workers inherit the action objects (closures and all)
#: through the copied address space instead of pickling
_SHARD_ACTIONS: Optional[Tuple[Tuple[Action, ...], Tuple[Action, ...]]] = None


def _shard_of(values: Tuple, workers: int) -> int:
    """Deterministic shard assignment of a canonical state.  ``repr`` of
    a values-tuple is stable across processes and runs, unlike
    ``hash(str)`` which is per-process salted."""
    import zlib

    return zlib.crc32(repr(values).encode("utf-8")) % workers


def _expand_shard(rows):
    """Worker body: expand frontier rows through every action.

    Rows arrive and return as plain values-tuples tagged with frontier
    position — successor *states* never cross the process boundary, so
    the master remains the only authority on interning and
    canonicalization."""
    program_actions, fault_actions = _SHARD_ACTIONS
    out = []
    for i, names, values in rows:
        state = _state_of(Schema.of(names), values)
        program_rows = [
            (action.name, nxt._schema.names, nxt._values)
            for action in program_actions
            for nxt in action.successors(state)
        ]
        fault_rows = [
            (action.name, nxt._schema.names, nxt._values)
            for action in fault_actions
            for nxt in action.successors(state)
        ]
        out.append((i, program_rows, fault_rows))
    return out


def _reconstruct(
    parents: Dict[State, Optional[Tuple[State, str]]], goal: State
) -> Tuple[List[State], List[str]]:
    states: List[State] = [goal]
    actions: List[str] = []
    current = goal
    while parents[current] is not None:
        previous, action_name = parents[current]  # type: ignore[misc]
        states.append(previous)
        actions.append(action_name)
        current = previous
    states.reverse()
    actions.reverse()
    return states, actions


# -- memoized exploration -----------------------------------------------------

#: (program, start states, fault actions, max_states) -> TransitionSystem.
#: Programs and actions are keyed by identity (they are never mutated);
#: start states by value.  Entries hold strong references, so a cached
#: program cannot be garbage-collected out from under its key.
_SYSTEM_CACHE: "OrderedDict[Tuple, TransitionSystem]" = OrderedDict()
_SYSTEM_CACHE_MAXSIZE = 128


def explored_system(
    program: Program,
    start_states: Iterable[State],
    fault_actions: Sequence[Action] = (),
    max_states: int = DEFAULT_MAX_STATES,
    symmetric: bool = False,
    workers: Optional[int] = None,
) -> TransitionSystem:
    """A memoized :class:`TransitionSystem`.

    Repeated calls with the same program, start states, and fault
    actions return the *same* (immutable) system object — tolerance
    certificates, theory lemmas, and synthesis re-verification all
    interrogate ``p [] F`` from the same span several times, and only
    the first call pays for exploration.  The cache is a bounded LRU of
    :data:`_SYSTEM_CACHE_MAXSIZE` systems; evict explicitly with
    :func:`clear_system_cache`.

    ``symmetric=True`` explores the quotient graph under the program's
    declared symmetry (see :class:`TransitionSystem`); the declared
    group joins the cache key, so quotient and unreduced systems of the
    same ``p [] F`` are cached independently.  ``workers`` is *not* part
    of the cache key: sharded and in-process exploration produce
    bit-identical systems, so a cached system satisfies any worker
    count.  The resolved engine *is* part of the key — the interpreted
    backend serves as the oracle in parity tests, so a columnar-built
    system must never satisfy an interpreted-mode caller (and vice
    versa).

    When a certificate store is active (:mod:`repro.store`), a cache
    miss first tries to load the graph — or reassemble it from
    per-action row artifacts when only one action changed — before
    exploring; fresh explorations are recorded for later runs.  The
    interpreted oracle always explores for real.
    """
    starts = tuple(dict.fromkeys(start_states))
    faults = tuple(fault_actions)
    engine = (
        "interpreted" if _kernels.get_backend() == "interpreted"
        else _kernels.resolved_backend()
    )
    # Program and Action objects hash/compare by identity (they are never
    # mutated after construction); start states compare by value.
    key = (
        program, starts, faults, max_states,
        program.symmetry if symmetric else None,
        engine,
    )
    system = _SYSTEM_CACHE.get(key)
    if system is not None:
        _SYSTEM_CACHE.move_to_end(key)
        return system
    use_store = engine != "interpreted"
    if use_store:
        system = _store_load(program, starts, faults, max_states, symmetric)
    if system is None:
        system = TransitionSystem(
            program, starts, fault_actions=faults, max_states=max_states,
            symmetric=symmetric, workers=workers,
        )
        if use_store:
            _store_save(system, starts, max_states, symmetric)
    _SYSTEM_CACHE[key] = system
    if len(_SYSTEM_CACHE) > _SYSTEM_CACHE_MAXSIZE:
        _SYSTEM_CACHE.popitem(last=False)
    return system


def _store_load(program, starts, faults, max_states, symmetric):
    """Serve an exploration from the certificate store; ``None`` (and
    never an exception) means explore for real."""
    try:
        from ..store import artifacts as _store_artifacts

        return _store_artifacts.load_or_assemble_system(
            program, starts, faults, max_states, symmetric
        )
    except Exception:
        return None


def _store_save(system, starts, max_states, symmetric) -> None:
    try:
        from ..store import artifacts as _store_artifacts

        _store_artifacts.save_system_artifacts(
            system, starts, max_states, symmetric
        )
    except Exception:
        pass


def clear_system_cache() -> None:
    """Drop every memoized transition system (and the per-program start
    state caches kept by :class:`~repro.core.program.Program`)."""
    _SYSTEM_CACHE.clear()
    Program.clear_state_caches()


def clear_all_caches() -> None:
    """Reset the library to a cache-cold state.

    :func:`clear_system_cache` drops the memoized systems, the
    per-program state/start-set caches, the shared full-space universe
    indexes, and every registered downstream memo — but the per-
    :class:`~repro.core.action.Action` successor and equivalence-class
    memos live on action objects held by long-lived models, and survive
    it.  (The ``action_edges`` row-translation memos do *not* need
    separate treatment: they hang off ``StateIndex`` objects whose
    lifetimes end with the universe cache or with the cached systems'
    region indexes, both already dropped above.)  Compiled batch
    kernels and interned layouts
    (:func:`repro.core.kernels.clear_kernel_caches`) are drained here
    too, so cold starts pay for plan compilation like any other cache
    miss.  The certificate store's open handles and in-process memos
    (:func:`repro.store.reset_store_handles`) are reset as well — the
    store stays *active* and its persistent artifacts survive, which is
    exactly the difference between the ``--cold`` and ``--warm``
    benchmark modes.  Benchmark cold-start paths call this so recorded
    numbers include every cache miss.
    """
    clear_system_cache()
    Action.clear_successor_caches()
    _kernels.clear_kernel_caches()
    # the symbolic lint analyzer's truth tables and per-action analyses
    # (only when the module was ever imported — don't force it in)
    symbolic = sys.modules.get("repro.analysis.symbolic")
    if symbolic is not None:
        symbolic.clear_symbolic_caches()
    try:
        from ..store import backend as _store_backend

        _store_backend.reset_handles()
    except Exception:
        pass
