"""Fault-tolerance checking (Section 2.4).

``p`` is *masking / nonmasking / fail-safe F-tolerant to SPEC from S``
iff (a) ``p`` refines SPEC from S, and (b) there is a predicate ``T ⇐ S``
(the fault-span) such that ``p [] F`` refines the corresponding
*tolerance specification* of SPEC from T:

- masking: SPEC itself;
- fail-safe: the smallest safety specification containing SPEC;
- nonmasking: ``(true)*SPEC`` (some suffix lies in SPEC).

The checkers here take the invariant ``S`` and the fault-span ``T``
explicitly — the paper's definitions are parameterized the same way, and
supplying the witnesses is what makes each claim a *certificate* rather
than a search problem.  (Use :mod:`repro.core.invariants` to compute
candidate invariants/spans when you do want the search.)

Checking strategy per class (all exact on finite systems):

- **fail-safe**: ``T`` closed in ``p [] F``; safety components of SPEC
  hold over every reachable edge (program and fault edges alike).
- **nonmasking**: ``T`` closed in ``p [] F``; every computation
  converges — ``true leads-to S`` over the fault-aware graph (fairness on
  program edges, per Assumption 2) with ``S`` closed in ``p``; and ``p``
  refines SPEC from ``S``.  Convergence to S plus suffix closure of SPEC
  yields the ``(true)*SPEC`` membership, exactly the argument of
  Theorem 4.3.
- **masking**: the fail-safe obligations *plus* the nonmasking
  obligations — this is the decomposition proved by Theorem 5.2 and
  Lemma 5.1 (a prefix that maintains SPEC fused with a suffix in SPEC is
  in SPEC).  Additionally every liveness component of SPEC is checked
  directly on the fault-aware graph.

A bounded *semantic* validator based on explicit computation enumeration
is provided for cross-checking the certificate-based answers on small
models (used heavily in the test suite).
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from .computation import enumerate_computations
from .exploration import TransitionSystem
from .fairness import check_leads_to
from .faults import FaultClass
from .predicate import Predicate, TRUE
from .program import Program
from .refinement import _certificates, refines_spec, start_states_of
from .regions import first_bit, paused_gc, universe_index
from .results import CheckResult, Counterexample, all_of
from .specification import Spec
from .state import State

__all__ = [
    "check_implication",
    "is_failsafe_tolerant",
    "is_nonmasking_tolerant",
    "is_masking_tolerant",
    "is_tolerant",
    "semantic_tolerance_check",
]


def check_implication(
    program: Program, antecedent: Predicate, consequent: Predicate
) -> CheckResult:
    """Check ``antecedent ⇒ consequent`` over the full state space.

    Decided on the program's shared universe index when the space is
    materializable: both sides become memoized bitsets and the check is
    one ``a & ~c`` big-int operation (the witness, when any, is the
    first counterexample in enumeration order, as before).
    """
    what = f"{antecedent.name} ⇒ {consequent.name}"
    index = universe_index(program)
    if index is not None:
        gap = index.region_bits(antecedent) & ~index.region_bits(consequent)
        if gap:
            return CheckResult.failed(
                what,
                counterexample=Counterexample(
                    kind="state", states=(index.states[first_bit(gap)],)
                ),
            )
        return CheckResult.passed(what)
    for state in program.states():
        if antecedent(state) and not consequent(state):
            return CheckResult.failed(
                what,
                counterexample=Counterexample(kind="state", states=(state,)),
            )
    return CheckResult.passed(what)


def _require_symmetric_checkable(
    program: Program,
    spec: Spec,
    invariant: Predicate,
    span: Predicate,
) -> None:
    """Refuse symmetric checking unless every predicate the certificate
    consults is invariant under the program's declared group.

    Quotient verdicts equal full-graph verdicts only when the start set
    and every consulted predicate are unions of orbits.  The sweep here
    is a sampled refusal heuristic (see
    :meth:`~repro.core.symmetry.Symmetry.require_predicate_invariant`);
    declarations themselves are validated exhaustively by lint rule
    DC106 and the parity test suite.  Raises
    :class:`~repro.core.symmetry.SymmetryError`.
    """
    symmetry = program.symmetry
    if symmetry is None:
        from .symmetry import SymmetryError

        raise SymmetryError(
            f"symmetric tolerance check requested but {program.name!r} "
            f"declares no symmetry group"
        )
    variables = program.variables
    what = f"symmetric check of {program.name}"
    symmetry.require_predicate_invariant(invariant, variables, what)
    symmetry.require_predicate_invariant(span, variables, what)
    symmetry.require_spec_invariant(spec, variables, what)


def _cached_obligation(
    certs,
    symmetric: bool,
    tag: str,
    program: Program,
    faults,
    predicates,
    spec,
    extra,
    compute,
) -> CheckResult:
    """Route one obligation through the certificate store when possible:
    exact-key replay, then frame-based reuse across a single-action edit,
    then computing (and recording).  Symmetric checks always compute —
    quotient verdicts are validated by their own parity suite and are
    cheap relative to full graphs."""
    if certs is None or symmetric:
        return compute()
    try:
        family = certs.ObligationFamily(
            tag, program, faults, predicates, spec=spec, extra=extra
        )
    except Exception:
        return compute()
    return certs.cached_obligation(family, compute)


def _closure_obligation(
    certs,
    symmetric: bool,
    program: Program,
    actions,
    predicate: Predicate,
    what: str,
    compute,
) -> CheckResult:
    """Serve a closure obligation from per-action row artifacts when the
    store holds (or can certify) them; fall back to the graph check —
    which reproduces the exact counterexample — otherwise.  A rows
    artifact existing *is* the closure fact for its action: it is only
    recorded when every successor stays inside the predicate's state
    table, so an edited program re-certifies closure by re-sweeping the
    one edited action."""
    if certs is not None and not symmetric:
        served = certs.closure_via_rows(program, actions, predicate, what)
        if served is not None:
            return served
    return compute()


def _common_obligations(
    program: Program,
    faults: FaultClass,
    spec: Spec,
    invariant: Predicate,
    span: Predicate,
    symmetric: bool = False,
    certs=None,
) -> Iterable[CheckResult]:
    """Obligations shared by all three tolerance classes: refinement in
    the absence of faults, ``S ⇒ T``, and ``T`` closed in ``p [] F``."""
    yield refines_spec(program, spec, invariant, symmetric=symmetric)
    # S ⇒ T is a full-space implication — exact and orbit-agnostic, so
    # it runs identically in symmetric mode (and is too cheap to cache)
    yield check_implication(program, invariant, span)
    span_what = f"{span.name} closed in {program.name} [] {faults.name}"
    yield _closure_obligation(
        certs, symmetric, program,
        tuple(program.actions) + tuple(faults.actions), span, span_what,
        lambda: faults.system(program, span, symmetric=symmetric).is_closed(
            span, include_faults=True, description=span_what
        ),
    )


def is_failsafe_tolerant(
    program: Program,
    faults: FaultClass,
    spec: Spec,
    invariant: Predicate,
    span: Predicate,
    symmetric: bool = False,
) -> CheckResult:
    """``program`` is fail-safe F-tolerant to ``spec`` from ``invariant``
    with fault-span ``span``.

    ``symmetric=True`` discharges every graph obligation on the quotient
    system under the program's declared symmetry (after verifying that
    the spec, invariant, and span are group-invariant — the check is
    refused with :class:`~repro.core.symmetry.SymmetryError` otherwise).
    """
    if symmetric:
        _require_symmetric_checkable(program, spec, invariant, span)
    what = (
        f"{program.name} is fail-safe {faults.name}-tolerant to {spec.name} "
        f"from {invariant.name} (span {span.name})"
    )
    certs = _certificates()
    cert_key = None
    if certs is not None:
        cert_key = certs.certificate_key(
            "failsafe", program, faults, spec, invariant, span, symmetric
        )
        cached = certs.lookup_certificate(cert_key)
        if cached is not None:
            return cached
    with paused_gc():
        obligations = list(_common_obligations(
            program, faults, spec, invariant, span, symmetric=symmetric,
            certs=certs,
        ))
        safety = spec.safety_part()
        safety_what = (
            f"{program.name} [] {faults.name} refines "
            f"{safety.name} from {span.name}"
        )
        obligations.append(_cached_obligation(
            certs, symmetric, "safety", program, faults, [span], safety,
            safety_what,
            lambda: safety.check(
                faults.system(program, span, symmetric=symmetric),
                description=safety_what,
            ),
        ))
        result = all_of(obligations, description=what)
    if cert_key is not None:
        certs.record_certificate(cert_key, result)
    return result


def is_nonmasking_tolerant(
    program: Program,
    faults: FaultClass,
    spec: Spec,
    invariant: Predicate,
    span: Predicate,
    symmetric: bool = False,
) -> CheckResult:
    """``program`` is nonmasking F-tolerant to ``spec`` from
    ``invariant`` with fault-span ``span``.

    Convergence is certified to the supplied invariant: every fault-
    perturbed computation must re-enter ``invariant`` (and stay, since
    the invariant is closed), after which suffix closure of the
    specification gives the ``(true)*SPEC`` membership.

    ``symmetric=True`` runs on the quotient system (see
    :func:`is_failsafe_tolerant`).
    """
    if symmetric:
        _require_symmetric_checkable(program, spec, invariant, span)
    what = (
        f"{program.name} is nonmasking {faults.name}-tolerant to {spec.name} "
        f"from {invariant.name} (span {span.name})"
    )
    certs = _certificates()
    cert_key = None
    if certs is not None:
        cert_key = certs.certificate_key(
            "nonmasking", program, faults, spec, invariant, span, symmetric
        )
        cached = certs.lookup_certificate(cert_key)
        if cached is not None:
            return cached
    with paused_gc():
        obligations = list(_common_obligations(
            program, faults, spec, invariant, span, symmetric=symmetric,
            certs=certs,
        ))
        inv_what = f"{invariant.name} closed in {program.name}"
        obligations.append(_closure_obligation(
            certs, symmetric, program, tuple(program.actions), invariant,
            inv_what,
            lambda: faults.system(
                program, span, symmetric=symmetric
            ).is_closed(
                invariant, include_faults=False, description=inv_what
            ),
        ))
        converge_what = (
            f"every computation of {program.name} [] {faults.name} "
            f"from {span.name} converges to {invariant.name}"
        )
        obligations.append(_cached_obligation(
            certs, symmetric, "leads_to", program, faults,
            [TRUE, invariant, span], None, converge_what,
            lambda: check_leads_to(
                faults.system(program, span, symmetric=symmetric),
                TRUE,
                invariant,
                description=converge_what,
            ),
        ))
        result = all_of(obligations, description=what)
    if cert_key is not None:
        certs.record_certificate(cert_key, result)
    return result


def is_masking_tolerant(
    program: Program,
    faults: FaultClass,
    spec: Spec,
    invariant: Predicate,
    span: Predicate,
    symmetric: bool = False,
) -> CheckResult:
    """``program`` is masking F-tolerant to ``spec`` from ``invariant``
    with fault-span ``span``: ``p [] F`` refines SPEC itself from the
    span — the safety part holds over every edge (program and fault
    alike) and every liveness component is discharged on the fault-aware
    graph.

    Note this is the paper's *definition* (Section 2.4), which does not
    require the perturbed system to converge back to the invariant —
    e.g. TMR masks a corrupted input without ever repairing it.  The
    convergence-based *sufficient* certificate of Theorem 5.2 lives in
    :func:`repro.theory.masking.theorem_5_2`.

    ``symmetric=True`` runs on the quotient system (see
    :func:`is_failsafe_tolerant`).
    """
    if symmetric:
        _require_symmetric_checkable(program, spec, invariant, span)
    what = (
        f"{program.name} is masking {faults.name}-tolerant to {spec.name} "
        f"from {invariant.name} (span {span.name})"
    )
    certs = _certificates()
    cert_key = None
    if certs is not None:
        cert_key = certs.certificate_key(
            "masking", program, faults, spec, invariant, span, symmetric
        )
        cached = certs.lookup_certificate(cert_key)
        if cached is not None:
            return cached
    with paused_gc():
        obligations = list(_common_obligations(
            program, faults, spec, invariant, span, symmetric=symmetric,
            certs=certs,
        ))
        safety = spec.safety_part()
        safety_what = (
            f"{program.name} [] {faults.name} refines "
            f"{safety.name} from {span.name}"
        )
        obligations.append(_cached_obligation(
            certs, symmetric, "safety", program, faults, [span], safety,
            safety_what,
            lambda: safety.check(
                faults.system(program, span, symmetric=symmetric),
                description=safety_what,
            ),
        ))
        for component in spec.liveness_part().components:
            obligations.append(_cached_obligation(
                certs, symmetric, "liveness", program, faults, [span],
                Spec((component,), name=f"{spec.name}/{component.name}"),
                None,
                lambda component=component: component.check(
                    faults.system(program, span, symmetric=symmetric)
                ),
            ))
        result = all_of(obligations, description=what)
    if cert_key is not None:
        certs.record_certificate(cert_key, result)
    return result


def is_tolerant(
    kind: str,
    program: Program,
    faults: FaultClass,
    spec: Spec,
    invariant: Predicate,
    span: Predicate,
    symmetric: bool = False,
) -> CheckResult:
    """Dispatch on tolerance class name: ``"failsafe"``, ``"nonmasking"``,
    or ``"masking"``."""
    checkers = {
        "failsafe": is_failsafe_tolerant,
        "nonmasking": is_nonmasking_tolerant,
        "masking": is_masking_tolerant,
    }
    try:
        checker = checkers[kind]
    except KeyError:
        raise ValueError(
            f"unknown tolerance kind {kind!r}; expected one of {sorted(checkers)}"
        ) from None
    return checker(program, faults, spec, invariant, span, symmetric=symmetric)


def semantic_tolerance_check(
    kind: str,
    program: Program,
    faults: FaultClass,
    spec: Spec,
    span: Predicate,
    start_states: Optional[Sequence[State]] = None,
    max_length: int = 10,
    max_faults: int = 2,
) -> CheckResult:
    """Bounded ground-truth validation by explicit enumeration.

    Enumerates every computation of ``program [] faults`` (length ≤
    ``max_length``, ≤ ``max_faults`` fault steps) from each start state in
    ``span`` and evaluates the tolerance specification directly on the
    sequences:

    - ``failsafe``: safety part of the spec on every (even truncated)
      sequence;
    - ``masking``: the full spec on complete sequences, the safety part on
      truncated ones;
    - ``nonmasking``: some suffix of every complete sequence satisfies the
      spec (truncated sequences are inconclusive and skipped).

    Exponential in ``max_length`` — use tiny models.
    """
    what = f"semantic {kind} tolerance of {program.name} wrt {spec.name}"
    if start_states is None:
        start_states = start_states_of(program, span)
    safety = spec.safety_part()
    for start in start_states:
        for computation in enumerate_computations(
            program, start, max_length=max_length,
            fault_actions=list(faults.actions), max_faults=max_faults,
        ):
            sequence = computation.states
            if kind == "failsafe":
                ok = safety.holds_on(sequence, complete=computation.complete)
            elif kind == "masking":
                ok = (
                    spec.holds_on(sequence, complete=True)
                    if computation.complete
                    else safety.holds_on(sequence, complete=False)
                )
            elif kind == "nonmasking":
                if not computation.complete:
                    continue
                ok = spec.holds_on_some_suffix(sequence, complete=True)
            else:
                raise ValueError(f"unknown tolerance kind {kind!r}")
            if not ok:
                return CheckResult.failed(
                    what,
                    counterexample=Counterexample(
                        kind="trace",
                        states=sequence,
                        actions=computation.actions,
                        note=f"enumerated computation violates {kind} spec",
                    ),
                )
    return CheckResult.passed(what)
