"""Symmetry declarations and orbit canonicalization (quotient exploration).

The paper's flagship constructions are built from interchangeable
components — TMR's replicas (Section 6.1), the Byzantine non-generals
(Section 6.2), the token-ring processes — so their reachable graphs
contain every permutation of equivalent process states and each check
pays for every copy.  A *symmetry* of a program is a group ``G`` of
state bijections such that every ``g ∈ G`` is an automorphism of the
transition relation of ``p [] F``: ``t ∈ succ(s)  ⟺  g·t ∈ succ(g·s)``.
When the start set and every predicate a check consults are unions of
``G``-orbits, the quotient graph (one representative per orbit) carries
exactly the same verdicts as the full graph — the classical
Emerson–Sistla symmetry reduction.

This module provides:

- :class:`ReplicaSymmetry` — the full symmetric group over aligned
  per-replica variable *blocks* (TMR voters, Byzantine non-generals);
  canonicalization is a sort of the replica blocks, so the group is
  never enumerated;
- :class:`RingRotation` — the cyclic group rotating replica blocks
  around a ring; canonicalization is a minimum over the ``n`` rotations;
- :class:`ValueRotation` — a *value* symmetry: all named counters are
  simultaneously translated ``v ↦ (v+1) mod m`` (Dijkstra's token ring
  is **not** process-rotation symmetric — process 0's increment action
  is distinguished — but it is invariant under this ``Z_K`` action on
  counter values);
- :class:`Canonicalizer` — the orbit-canonicalizing interner a
  :class:`~repro.core.exploration.TransitionSystem` threads its BFS
  through: every state maps to the minimal representative of its orbit
  (minimal in block-major rank order), memoized, pointer-unique;
- predicate/spec invariance checks that *refuse* symmetric mode when a
  consulted predicate is not a union of orbits
  (:meth:`Symmetry.require_predicate_invariant`).

Values are compared through per-domain *ranks* (the value's position in
its declared domain), never directly — domains mix ``⊥``, booleans and
integers, which Python cannot order.  Orderability therefore never
constrains what a domain may contain.

Declarations are *claims*: exploration trusts them.  Two nets validate
them — the ``DC106`` lint rule (differential probing that each generator
is an automorphism of ``p [] F``) and ``tests/test_symmetry_parity.py``
(verdict parity of quotient vs. unreduced systems on every bundled
symmetric scenario).
"""

from __future__ import annotations

import random
from typing import (
    Callable,
    Dict,
    Hashable,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
)

from .state import State, Variable, _state_of, state_space

__all__ = [
    "SymmetryError",
    "Symmetry",
    "ReplicaSymmetry",
    "RingRotation",
    "ValueRotation",
    "Generator",
    "Canonicalizer",
]


class SymmetryError(ValueError):
    """A symmetry declaration is missing, malformed, or refused.

    Raised when symmetric exploration is requested for a program with no
    declaration, when a declaration does not fit the program's variables
    (misaligned block domains, unknown names), and when a predicate or
    specification consulted by a symmetric check is provably *not*
    invariant under the declared group (the refusal carries a concrete
    witness state)."""


class Generator:
    """One group element as an executable state bijection.

    ``moves`` maps a destination variable name to ``(source name,
    value map or None)``: in ``g·s`` the destination variable carries
    the (optionally transformed) value the source variable had in ``s``.
    Variables absent from ``moves`` are fixed.  The move table compiles
    once per state schema into a positions plan, so :meth:`apply` is a
    tuple rebuild.
    """

    __slots__ = ("name", "moves", "_plans")

    def __init__(
        self,
        name: str,
        moves: Dict[str, Tuple[str, Optional[Callable[[Hashable], Hashable]]]],
    ):
        self.name = name
        self.moves = dict(moves)
        self._plans: Dict[object, Tuple] = {}

    def apply(self, state: State) -> State:
        schema = state.schema
        plan = self._plans.get(schema)
        if plan is None:
            index = schema.index
            entries = []
            for position, name in enumerate(schema.names):
                source, fn = self.moves.get(name, (name, None))
                entries.append((index[source], fn))
            plan = tuple(entries)
            self._plans[schema] = plan
        values = state.values_tuple
        return _state_of(
            schema,
            tuple(
                fn(values[p]) if fn is not None else values[p]
                for p, fn in plan
            ),
        )

    def __repr__(self) -> str:
        return f"Generator({self.name})"


def _sample_states(
    variables: Sequence[Variable], limit: int = 512, seed: int = 0
) -> Tuple[State, ...]:
    """Deterministic validation sample: the full space when it fits
    under ``limit``, else corner states plus a seeded draw (the same
    scheme as ``repro.analysis.probe``, duplicated here because core
    cannot import the analysis layer)."""
    size = 1
    for variable in variables:
        size *= len(variable.domain)
    if size <= limit:
        return tuple(state_space(variables))
    rng = random.Random(seed)
    names = [v.name for v in variables]
    domains = [v.domain for v in variables]
    seen, states = set(), []

    def record(values_by_name):
        state = State(values_by_name)
        key = state.values_tuple
        if key not in seen:
            seen.add(key)
            states.append(state)

    record({n: d[0] for n, d in zip(names, domains)})
    record({n: d[-1] for n, d in zip(names, domains)})
    attempts = 0
    while len(states) < limit and attempts < limit * 4:
        attempts += 1
        record({n: rng.choice(d) for n, d in zip(names, domains)})
    return tuple(states)


class Symmetry:
    """Base class for symmetry declarations.

    Subclasses describe a group by (a) a *canonicalization plan*
    compiler (:meth:`_compile`) mapping any values-tuple to its orbit's
    minimal representative without enumerating the group, and (b) a
    finite generating set (:meth:`generators`) used by the validation
    machinery (lint rule ``DC106``, predicate-invariance refusal, parity
    tests).  Instances are immutable and hashable by identity — they
    extend the exploration cache key.
    """

    name: str = "symmetry"

    def __init__(
        self, action_orbits: Sequence[Iterable[str]] = ()
    ) -> None:
        #: per-(kind, id) record of objects already validated as
        #: group-invariant, so repeated certificates over one model
        #: pay for each spec/predicate check once
        self._validated: set = set()
        #: validation sample memo, keyed by the variables tuple identity
        self._samples: Dict[int, Tuple[State, ...]] = {}
        #: declared orbits of *action names* under the group.  A group
        #: element that permutes replica blocks also permutes the
        #: per-replica actions, so on the quotient graph the weak-
        #: fairness obligation attaches to the whole orbit, not to a
        #: single action (see ``fairness._fair_recurrent_component_ids``)
        self.action_orbits: Tuple[frozenset, ...] = tuple(
            frozenset(orbit) for orbit in action_orbits
        )
        self._orbit_of: Dict[str, frozenset] = {}
        for orbit in self.action_orbits:
            for action_name in orbit:
                if action_name in self._orbit_of:
                    raise SymmetryError(
                        f"action {action_name!r} appears in two declared "
                        f"action orbits"
                    )
                self._orbit_of[action_name] = orbit

    def orbit_of(self, action_name: str) -> frozenset:
        """The declared orbit of ``action_name`` under the group
        (a singleton when the action was not declared in any orbit —
        i.e. it is claimed to be a fixed point of the group action)."""
        found = self._orbit_of.get(action_name)
        if found is None:
            found = frozenset((action_name,))
        return found

    # -- to implement ------------------------------------------------------
    def variable_names(self) -> frozenset:
        """Names of the variables the group may move or transform."""
        raise NotImplementedError

    def validate(self, variables: Sequence[Variable]) -> None:
        """Raise :class:`SymmetryError` unless the declaration fits
        ``variables`` (all names present, aligned slots share domains)."""
        raise NotImplementedError

    def generators(self) -> Tuple[Generator, ...]:
        """A generating set of the group as executable bijections."""
        raise NotImplementedError

    def _compile(
        self, schema, domains: Dict[str, Tuple]
    ) -> Callable[[Tuple], Tuple]:
        """A function mapping a values-tuple (in ``schema`` order) to
        the canonical values-tuple of its orbit.  Must be idempotent,
        constant on orbits, and return the *input tuple object* when the
        state is already canonical (the fast path exploration relies
        on)."""
        raise NotImplementedError

    # -- binding -----------------------------------------------------------
    def canonicalizer(self, program) -> "Canonicalizer":
        """An orbit-canonicalizing interner bound to ``program``'s
        domains (validating the declaration against them first)."""
        self.validate(program.variables)
        return Canonicalizer(self, dict(program._domains))

    # -- invariance checking (the refusal machinery) -----------------------
    def _validation_states(
        self, variables: Sequence[Variable]
    ) -> Tuple[State, ...]:
        key = id(variables)
        states = self._samples.get(key)
        if states is None:
            states = _sample_states(variables)
            self._samples[key] = states
        return states

    def find_asymmetric_state(
        self, fn: Callable[[State], bool], states: Iterable[State]
    ) -> Optional[Tuple[Generator, State]]:
        """A ``(generator, state)`` witness that ``fn`` is not constant
        on orbits, or ``None`` if no witness is found in ``states``."""
        for generator in self.generators():
            apply = generator.apply
            for state in states:
                if bool(fn(state)) != bool(fn(apply(state))):
                    return (generator, state)
        return None

    def require_predicate_invariant(
        self, predicate, variables: Sequence[Variable], what: str
    ) -> None:
        """Refuse (raise :class:`SymmetryError`) if ``predicate`` is
        observed to distinguish states within one orbit.

        The check sweeps the full space when it is small and a
        deterministic sample otherwise — it is a refusal heuristic, not
        a proof; the exhaustive nets are DC106 and the parity suite.
        Results are memoized per predicate object.
        """
        key = ("pred", id(predicate))
        if key in self._validated:
            return
        witness = self.find_asymmetric_state(
            predicate.fn, self._validation_states(variables)
        )
        if witness is not None:
            generator, state = witness
            raise SymmetryError(
                f"{what}: predicate {predicate.name!r} is not invariant "
                f"under {self.name} (generator {generator.name} "
                f"distinguishes {state!r} from its image); symmetric "
                f"mode refused"
            )
        self._validated.add(key)

    def require_spec_invariant(
        self, spec, variables: Sequence[Variable], what: str
    ) -> None:
        """Refuse unless every component of ``spec`` is group-invariant:
        state invariants and leads-to predicates must be unions of
        orbits; transition invariants must judge ``(g·s, g·t)`` exactly
        as ``(s, t)`` (checked over sampled state pairs)."""
        key = ("spec", id(spec))
        if key in self._validated:
            return
        # local import: specification imports exploration which imports
        # this module, so the class lookup happens lazily
        from .specification import LeadsTo, StateInvariant, TransitionInvariant

        states = self._validation_states(variables)
        for component in spec.components:
            if isinstance(component, StateInvariant):
                self.require_predicate_invariant(
                    component.predicate, variables, what
                )
            elif isinstance(component, LeadsTo):
                self.require_predicate_invariant(
                    component.source, variables, what
                )
                self.require_predicate_invariant(
                    component.target, variables, what
                )
            elif isinstance(component, TransitionInvariant):
                self._require_relation_invariant(component, states, what)
            else:  # unknown component shape: nothing we can verify
                raise SymmetryError(
                    f"{what}: cannot establish {self.name}-invariance of "
                    f"spec component {component!r}; symmetric mode refused"
                )
        self._validated.add(key)

    def _require_relation_invariant(
        self, component, states: Sequence[State], what: str
    ) -> None:
        relation = component.relation
        pairs = list(zip(states, states[1:]))[:256]
        pairs += [(s, s) for s in states[:64]]
        for generator in self.generators():
            apply = generator.apply
            for s, t in pairs:
                if bool(relation(s, t)) != bool(relation(apply(s), apply(t))):
                    raise SymmetryError(
                        f"{what}: transition invariant {component.name!r} "
                        f"is not invariant under {self.name} (generator "
                        f"{generator.name} at {s!r} -> {t!r}); symmetric "
                        f"mode refused"
                    )

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name})"


# -- block machinery shared by ReplicaSymmetry / RingRotation -----------------

def _check_blocks(
    blocks: Sequence[Sequence[str]], variables: Sequence[Variable], name: str
) -> None:
    domains = {v.name: v.domain for v in variables}
    widths = {len(block) for block in blocks}
    if len(widths) != 1:
        raise SymmetryError(f"{name}: replica blocks differ in width")
    seen: set = set()
    for block in blocks:
        for variable_name in block:
            if variable_name in seen:
                raise SymmetryError(
                    f"{name}: variable {variable_name!r} appears in two blocks"
                )
            seen.add(variable_name)
            if variable_name not in domains:
                raise SymmetryError(
                    f"{name}: unknown variable {variable_name!r}"
                )
    first = blocks[0]
    for block in blocks[1:]:
        for slot, variable_name in enumerate(block):
            if domains[variable_name] != domains[first[slot]]:
                raise SymmetryError(
                    f"{name}: {variable_name!r} and {first[slot]!r} occupy "
                    f"the same replica slot but have different domains"
                )


def _block_plan(blocks, schema, domains):
    """Positions and rank tables for block canonicalization.

    Returns ``(block_positions, slot_rank, slot_values)`` where
    ``slot_rank[k]`` maps a slot-``k`` value to its domain rank and
    ``slot_values[k]`` maps the rank back (slot domains are aligned
    across blocks, see :func:`_check_blocks`)."""
    index = schema.index
    block_positions = tuple(
        tuple(index[name] for name in block) for block in blocks
    )
    slot_domains = tuple(domains[name] for name in blocks[0])
    slot_rank = tuple(
        {value: rank for rank, value in enumerate(domain)}
        for domain in slot_domains
    )
    return block_positions, slot_rank, slot_domains


def _swap_moves(source_block, target_block):
    moves = {}
    for a, b in zip(source_block, target_block):
        moves[a] = (b, None)
        moves[b] = (a, None)
    return moves


class ReplicaSymmetry(Symmetry):
    """The full symmetric group over aligned per-replica variable blocks.

    ``blocks[i]`` names replica ``i``'s variables; position ``k`` of
    every block is one *slot* (the same role across replicas) and all
    blocks must agree on slot domains.  Canonicalization sorts the
    replica blocks by their rank tuples — the unique minimal arrangement
    under all ``n!`` permutations, computed in ``O(n log n)`` without
    touching the group.

    ``ReplicaSymmetry.of_families("d{i}", "out{i}", "b{i}",
    indices=(1, 2, 3))`` builds the blocks from indexed variable-family
    templates (the Byzantine non-generals); ``ReplicaSymmetry((("x",),
    ("y",), ("z",)))`` declares TMR's voters directly.

    ``action_orbits`` declares which *action names* the group permutes
    among each other (e.g. TMR's ``("IR1", "CR1", "CR2")`` — swapping
    ``x`` and ``y`` maps IR1's guarded command to CR1's).  Undeclared
    actions are claimed fixed.  ``of_families`` accepts
    ``action_templates`` and formats them with the same indices
    (``"IB2.{i}"`` → one orbit ``{IB2.1, IB2.2, IB2.3}``).  The
    declaration feeds the quotient's orbit-granular weak-fairness test;
    lint rule DC106 cross-checks it differentially.
    """

    def __init__(
        self,
        blocks: Sequence[Sequence[str]],
        name: str = None,
        action_orbits: Sequence[Iterable[str]] = (),
    ):
        super().__init__(action_orbits)
        self.blocks: Tuple[Tuple[str, ...], ...] = tuple(
            tuple(block) for block in blocks
        )
        if len(self.blocks) < 2:
            raise SymmetryError("ReplicaSymmetry needs at least two blocks")
        self.name = name or f"S_{len(self.blocks)} over {len(self.blocks)} replicas"
        self._generators: Optional[Tuple[Generator, ...]] = None

    @classmethod
    def of_families(
        cls,
        *templates: str,
        indices: Sequence[Hashable],
        name: str = None,
        action_templates: Sequence[str] = (),
    ) -> "ReplicaSymmetry":
        """Blocks from ``{i}``-indexed variable-family templates, and
        action orbits from ``{i}``-indexed action-name templates."""
        blocks = tuple(
            tuple(template.format(i=i) for template in templates)
            for i in indices
        )
        action_orbits = tuple(
            tuple(template.format(i=i) for i in indices)
            for template in action_templates
        )
        return cls(blocks, name=name, action_orbits=action_orbits)

    def variable_names(self) -> frozenset:
        return frozenset(name for block in self.blocks for name in block)

    def validate(self, variables: Sequence[Variable]) -> None:
        _check_blocks(self.blocks, variables, self.name)

    def generators(self) -> Tuple[Generator, ...]:
        # adjacent transpositions generate the full symmetric group and
        # are self-inverse, which keeps the differential probes simple
        if self._generators is None:
            self._generators = tuple(
                Generator(
                    f"swap({i},{i + 1})",
                    _swap_moves(self.blocks[i], self.blocks[i + 1]),
                )
                for i in range(len(self.blocks) - 1)
            )
        return self._generators

    def element(self, permutation: Sequence[int]) -> Generator:
        """The group element sending replica ``i``'s block content to
        block ``permutation[i]`` (used by tests to enumerate orbits)."""
        moves = {}
        for i, j in enumerate(permutation):
            for a, b in zip(self.blocks[i], self.blocks[j]):
                moves[b] = (a, None)
        return Generator(f"perm{tuple(permutation)}", moves)

    def _compile(self, schema, domains):
        block_positions, slot_rank, slot_domains = _block_plan(
            self.blocks, schema, domains
        )

        def canon(values, block_positions=block_positions,
                  slot_rank=slot_rank, slot_domains=slot_domains):
            blocks = [
                tuple(
                    rank[values[p]]
                    for rank, p in zip(slot_rank, positions)
                )
                for positions in block_positions
            ]
            ordered = sorted(blocks)
            if ordered == blocks:
                return values
            out = list(values)
            for positions, block in zip(block_positions, ordered):
                for p, domain, rank in zip(positions, slot_domains, block):
                    out[p] = domain[rank]
            return tuple(out)

        return canon


class RingRotation(Symmetry):
    """The cyclic group rotating replica blocks around a ring.

    Same block conventions as :class:`ReplicaSymmetry`, but the group is
    the ``n`` rotations only — for ring protocols whose actions are
    invariant under rotating *all* processes by the same offset.
    Canonicalization takes the minimum of the ``n`` rotated block
    sequences.

    Note Dijkstra's token ring is **not** in this class (process 0 runs
    a distinguished increment action); its valid declaration is
    :class:`ValueRotation`.  ``RingRotation`` covers uniform rings
    (and is validated against any misuse by lint rule DC106).
    """

    def __init__(
        self,
        blocks: Sequence[Sequence[str]],
        name: str = None,
        action_orbits: Sequence[Iterable[str]] = (),
    ):
        super().__init__(action_orbits)
        self.blocks = tuple(tuple(block) for block in blocks)
        if len(self.blocks) < 2:
            raise SymmetryError("RingRotation needs at least two blocks")
        self.name = name or f"Z_{len(self.blocks)} ring rotation"
        self._generators: Optional[Tuple[Generator, ...]] = None

    def variable_names(self) -> frozenset:
        return frozenset(name for block in self.blocks for name in block)

    def validate(self, variables: Sequence[Variable]) -> None:
        _check_blocks(self.blocks, variables, self.name)

    def element(self, offset: int) -> Generator:
        """Rotation by ``offset``: block ``i``'s content moves to block
        ``(i + offset) mod n``."""
        n = len(self.blocks)
        moves = {}
        for i in range(n):
            target = self.blocks[(i + offset) % n]
            for a, b in zip(self.blocks[i], target):
                moves[b] = (a, None)
        return Generator(f"rotate({offset % n})", moves)

    def generators(self) -> Tuple[Generator, ...]:
        if self._generators is None:
            self._generators = (self.element(1),)
        return self._generators

    def _compile(self, schema, domains):
        block_positions, slot_rank, slot_domains = _block_plan(
            self.blocks, schema, domains
        )
        n = len(block_positions)

        def canon(values, block_positions=block_positions,
                  slot_rank=slot_rank, slot_domains=slot_domains, n=n):
            blocks = [
                tuple(
                    rank[values[p]]
                    for rank, p in zip(slot_rank, positions)
                )
                for positions in block_positions
            ]
            best = blocks
            doubled = blocks + blocks
            for r in range(1, n):
                candidate = doubled[r:r + n]
                if candidate < best:
                    best = candidate
            if best is blocks:
                return values
            out = list(values)
            for positions, block in zip(block_positions, best):
                for p, domain, rank in zip(positions, slot_domains, block):
                    out[p] = domain[rank]
            return tuple(out)

        return canon


class ValueRotation(Symmetry):
    """Simultaneous value translation ``v ↦ (v + 1) mod m`` on counters.

    All named variables must have domain exactly ``(0, 1, …, m-1)`` (in
    order).  The group is ``Z_m`` acting on *values*, not on variables —
    the symmetry of Dijkstra's K-state token ring, whose token
    predicates ``x_i = x_{i-1}`` / ``x_i ≠ x_{i-1}`` and increment
    action are all translation-invariant.  Canonicalization takes the
    minimum of the ``m`` translated counter tuples.
    """

    def __init__(self, names: Sequence[str], modulus: int, name: str = None):
        super().__init__()
        self.names: Tuple[str, ...] = tuple(names)
        if not self.names:
            raise SymmetryError("ValueRotation needs at least one variable")
        if modulus < 2:
            raise SymmetryError("ValueRotation needs a modulus of at least 2")
        self.modulus = modulus
        self.name = name or f"Z_{modulus} value rotation"
        self._generators: Optional[Tuple[Generator, ...]] = None

    def variable_names(self) -> frozenset:
        return frozenset(self.names)

    def validate(self, variables: Sequence[Variable]) -> None:
        domains = {v.name: v.domain for v in variables}
        expected = tuple(range(self.modulus))
        for variable_name in self.names:
            domain = domains.get(variable_name)
            if domain is None:
                raise SymmetryError(
                    f"{self.name}: unknown variable {variable_name!r}"
                )
            if domain != expected:
                raise SymmetryError(
                    f"{self.name}: variable {variable_name!r} has domain "
                    f"{domain!r}, expected 0..{self.modulus - 1}"
                )

    def element(self, offset: int) -> Generator:
        m = self.modulus
        offset %= m

        def translate(value, t=offset, m=m):
            return (value + t) % m

        return Generator(
            f"translate(+{offset})",
            {name: (name, translate) for name in self.names},
        )

    def generators(self) -> Tuple[Generator, ...]:
        if self._generators is None:
            self._generators = (self.element(1),)
        return self._generators

    def _compile(self, schema, domains):
        positions = tuple(schema.index[name] for name in self.names)
        m = self.modulus

        def canon(values, positions=positions, m=m):
            projection = tuple(values[p] for p in positions)
            best = projection
            for t in range(1, m):
                candidate = tuple((v + t) % m for v in projection)
                if candidate < best:
                    best = candidate
            if best is projection:
                return values
            out = list(values)
            for p, v in zip(positions, best):
                out[p] = v
            return tuple(out)

        return canon


class Canonicalizer:
    """Maps every state to the minimal representative of its orbit.

    The quotient-exploration counterpart of
    :class:`~repro.core.state.StateInterner`: :meth:`canonical` returns
    one pointer-unique state per *orbit* (rather than per value), so a
    BFS threaded through it materializes the quotient graph directly —
    the full graph is never built.  The state → representative memo
    doubles as the representative pool; like the interner's table it is
    owned by the exploration that needed it and dies with it.

    ``canonical`` accepts and ignores a second argument so it is a
    drop-in for the ``dict.setdefault(s, s)`` canonicalization of the
    unreduced BFS.
    """

    __slots__ = ("symmetry", "_domains", "_plans", "_memo")

    def __init__(self, symmetry: Symmetry, domains: Dict[str, Tuple]):
        self.symmetry = symmetry
        self._domains = domains
        #: schema -> compiled values-tuple canonicalization plan
        self._plans: Dict[object, Callable] = {}
        #: state -> pooled orbit representative (reps map to themselves)
        self._memo: Dict[State, State] = {}

    def canonical(self, state: State, _default: State = None) -> State:
        memo = self._memo
        found = memo.get(state)
        if found is not None:
            return found
        schema = state.schema
        plan = self._plans.get(schema)
        if plan is None:
            plan = self.symmetry._compile(schema, self._domains)
            self._plans[schema] = plan
        values = state.values_tuple
        canonical_values = plan(values)
        if canonical_values is values:
            memo[state] = state
            return state
        representative = _state_of(schema, canonical_values)
        pooled = memo.get(representative)
        if pooled is None:
            memo[representative] = pooled = representative
        memo[state] = pooled
        return pooled

    def canonical_many(self, states: Iterable[State]) -> List[State]:
        """Bulk :meth:`canonical`: orbit representatives in input order.

        The memo probe and the compiled-plan fetch are hoisted out of
        the per-state call; consecutive states sharing a schema — the
        common case, since exploration frontiers are schema-uniform —
        reuse one plan without re-probing the plan table.  Results and
        memo contents are identical to calling :meth:`canonical` state
        by state.
        """
        memo = self._memo
        get = memo.get
        plans = self._plans
        plan_schema = None
        plan = None
        out: List[State] = []
        append = out.append
        for state in states:
            found = get(state)
            if found is not None:
                append(found)
                continue
            schema = state.schema
            if schema is not plan_schema:
                plan = plans.get(schema)
                if plan is None:
                    plan = self.symmetry._compile(schema, self._domains)
                    plans[schema] = plan
                plan_schema = schema
            values = state.values_tuple
            canonical_values = plan(values)
            if canonical_values is values:
                memo[state] = state
                append(state)
                continue
            representative = _state_of(schema, canonical_values)
            pooled = get(representative)
            if pooled is None:
                memo[representative] = pooled = representative
            memo[state] = pooled
            append(pooled)
        return out

    def __len__(self) -> int:
        return len(self._memo)

    def __contains__(self, state: State) -> bool:
        return state in self._memo
