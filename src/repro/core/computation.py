"""Explicit computations: enumeration and random walks.

The graph-based checkers in :mod:`repro.core.fairness` and
:mod:`repro.core.refinement` decide the paper's definitions symbolically
over the reachable transition graph.  This module provides the *semantic
ground truth* they are cross-validated against: explicit enumeration of
computations (bounded) and random scheduler walks.

A :class:`Computation` records its states, the action names taken, and
whether it is *complete* — i.e. a finite **maximal** computation (ended in
a state where every program guard is false) — or a truncated prefix of a
longer/infinite computation.  Safety properties are exact on truncated
prefixes; liveness judgements on truncated prefixes are necessarily
optimistic (an obligation still pending could be met later), which the
:class:`~repro.core.specification.SpecComponent` sequence semantics
honours via its ``complete`` flag.

Fault steps (Section 2.3) may be interleaved with program steps; a fault
budget enforces Assumption 2 (finitely many fault occurrences) and each
computation records how many fault steps it took.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence, Tuple

from .action import Action
from .program import Program
from .state import State

__all__ = ["Computation", "enumerate_computations", "random_computation"]


@dataclass(frozen=True)
class Computation:
    """A (prefix of a) computation: states, step labels, completeness."""

    states: Tuple[State, ...]
    actions: Tuple[str, ...]
    complete: bool
    fault_steps: int = 0

    def __len__(self) -> int:
        return len(self.states)

    def project(self, names: Sequence[str]) -> "Computation":
        """Projection on a variable subset (Section 2.2.1)."""
        return Computation(
            states=tuple(s.project(names) for s in self.states),
            actions=self.actions,
            complete=self.complete,
            fault_steps=self.fault_steps,
        )

    def suffix(self, index: int) -> "Computation":
        faults_before = sum(
            1 for a in self.actions[:index] if a.endswith("!")
        )
        return Computation(
            states=self.states[index:],
            actions=self.actions[index:],
            complete=self.complete,
            fault_steps=max(0, self.fault_steps - faults_before),
        )

    def __repr__(self) -> str:
        kind = "maximal" if self.complete else "prefix"
        return (
            f"Computation({kind}, {len(self.states)} states, "
            f"{self.fault_steps} fault steps)"
        )


def enumerate_computations(
    program: Program,
    start: State,
    max_length: int = 12,
    fault_actions: Sequence[Action] = (),
    max_faults: int = 0,
) -> Iterator[Computation]:
    """Enumerate all computations of ``program [] F`` from ``start``.

    Every maximal computation of length ≤ ``max_length`` is yielded with
    ``complete=True``; longer computations are yielded once as truncated
    prefixes of length ``max_length`` with ``complete=False``.  Fault
    steps (labelled with a trailing ``"!"``) are limited to
    ``max_faults`` per computation.

    The enumeration is exhaustive over schedules, so it explodes quickly;
    intended for cross-validation on very small models only.
    """
    fault_list = list(fault_actions)

    def extend(
        states: List[State], labels: List[str], faults_used: int
    ) -> Iterator[Computation]:
        current = states[-1]
        successors: List[Tuple[str, State, int]] = []
        for action in program.actions:
            for nxt in action.successors(current):
                successors.append((action.name, nxt, faults_used))
        if faults_used < max_faults:
            for action in fault_list:
                for nxt in action.successors(current):
                    successors.append((action.name + "!", nxt, faults_used + 1))

        program_enabled = any(a.enabled(current) for a in program.actions)
        if not program_enabled:
            # p-maximal end; fault steps are optional so this is a
            # complete computation even if faults could still fire.
            yield Computation(tuple(states), tuple(labels), True, faults_used)
            if not successors:
                return
        if len(states) >= max_length:
            if program_enabled:
                yield Computation(tuple(states), tuple(labels), False, faults_used)
            return
        for label, nxt, fcount in successors:
            states.append(nxt)
            labels.append(label)
            yield from extend(states, labels, fcount)
            states.pop()
            labels.pop()

    yield from extend([start], [], 0)


def random_computation(
    program: Program,
    start: State,
    steps: int = 100,
    fault_actions: Sequence[Action] = (),
    fault_probability: float = 0.0,
    max_faults: int = 0,
    rng: Optional[random.Random] = None,
) -> Computation:
    """A single random-scheduler computation (weakly fair in expectation).

    At each step a uniformly random enabled program transition is taken;
    with probability ``fault_probability`` (while the fault budget lasts)
    an enabled fault transition is taken instead.  Stops at deadlock
    (complete) or after ``steps`` steps (truncated).
    """
    rng = rng or random.Random(0)
    states: List[State] = [start]
    labels: List[str] = []
    faults_used = 0
    for _ in range(steps):
        current = states[-1]
        fault_options: List[Tuple[str, State]] = []
        if faults_used < max_faults:
            for action in fault_actions:
                for nxt in action.successors(current):
                    fault_options.append((action.name + "!", nxt))
        program_options: List[Tuple[str, State]] = []
        for action in program.actions:
            for nxt in action.successors(current):
                program_options.append((action.name, nxt))

        take_fault = (
            fault_options
            and rng.random() < fault_probability
        )
        if take_fault:
            label, nxt = rng.choice(fault_options)
            faults_used += 1
        elif program_options:
            label, nxt = rng.choice(program_options)
        else:
            return Computation(tuple(states), tuple(labels), True, faults_used)
        states.append(nxt)
        labels.append(label)
    complete = not any(a.enabled(states[-1]) for a in program.actions)
    return Computation(tuple(states), tuple(labels), complete, faults_used)
