"""Detectors (Section 3).

``Z detects X`` is the problem specification consisting of all sequences
satisfying:

- **Safeness** — whenever the *witness* ``Z`` holds, the *detection
  predicate* ``X`` holds (``Z ⇒ X`` at every state);
- **Progress** — whenever ``X`` holds, eventually ``Z`` holds or ``X``
  is falsified;
- **Stability** — once ``Z`` holds it stays true unless ``X`` is
  falsified (the generalized pair ``({Z}, {Z ∨ ¬X})``).

A program ``d`` *is a detector* for ``Z detects X`` from ``U`` iff it
refines this specification from ``U``.  Note the paper's remark: the
detection predicate is **not** required to be closed — in nonmasking
designs ``X`` often means "something bad happened" and is deliberately
falsified later by a corrector.

Tolerant detectors are detectors that keep (part of) the specification in
the presence of a fault-class:

- fail-safe tolerant: Safeness and Stability survive the faults;
- masking tolerant: the whole specification survives the faults;
- nonmasking tolerant: the specification holds again on a suffix (after
  faults stop and a recovery predicate is re-established).

Well-known instances — comparators, error-detection codes, watchdogs,
snapshot procedures, acceptance tests, exception conditions — are
provided as program factories in :mod:`repro.components`.
"""

from __future__ import annotations

from typing import Optional

from .faults import FaultClass
from .predicate import Predicate
from .program import Program
from .refinement import refines_spec
from .results import CheckResult, all_of
from .specification import LeadsTo, Spec, StateInvariant, TransitionInvariant

__all__ = [
    "detects_spec",
    "is_detector",
    "is_failsafe_tolerant_detector",
    "is_masking_tolerant_detector",
    "is_nonmasking_tolerant_detector",
]


def detects_spec(witness: Predicate, detection: Predicate) -> Spec:
    """The problem specification ``Z detects X`` (Section 3.1)."""
    safeness = StateInvariant(
        witness.implies(detection),
        name=f"Safeness: {witness.name} ⇒ {detection.name}",
    )
    progress = LeadsTo(
        detection,
        witness | ~detection,
        name=f"Progress: {detection.name} leads-to ({witness.name} ∨ ¬{detection.name})",
    )
    stability = TransitionInvariant(
        lambda s, t, z=witness, x=detection: (not z(s)) or z(t) or not x(t),
        name=f"Stability: ({{{witness.name}}},{{{witness.name} ∨ ¬{detection.name}}})",
        predicates=(witness, detection),
        stutter_true=True,  # Z and X unchanged => ¬Z(s) ∨ Z(t) holds
    )
    return Spec(
        [safeness, progress, stability],
        name=f"'{witness.name} detects {detection.name}'",
    )


def is_detector(
    component: Program,
    witness: Predicate,
    detection: Predicate,
    from_: Predicate,
) -> CheckResult:
    """``witness detects detection in component from from_``: the
    component refines ``Z detects X`` from ``U``."""
    return refines_spec(component, detects_spec(witness, detection), from_)


def is_failsafe_tolerant_detector(
    component: Program,
    faults: FaultClass,
    witness: Predicate,
    detection: Predicate,
    from_: Predicate,
    span: Predicate,
) -> CheckResult:
    """Fail-safe tolerant detector: refines ``Z detects X`` from ``U``
    and keeps Safeness + Stability (the safety part) under the faults
    from the span ``T``."""
    spec = detects_spec(witness, detection)
    what = (
        f"{component.name} is a fail-safe {faults.name}-tolerant detector "
        f"for {spec.name} from {from_.name}"
    )
    base = refines_spec(component, spec, from_)
    ts = faults.system(component, span)
    closed = ts.is_closed(
        span, include_faults=True,
        description=f"{span.name} closed in {component.name} [] {faults.name}",
    )
    under_faults = spec.safety_part().check(
        ts,
        description=(
            f"{component.name} [] {faults.name} refines {spec.safety_part().name} "
            f"from {span.name}"
        ),
    )
    return all_of([base, closed, under_faults], description=what)


def is_masking_tolerant_detector(
    component: Program,
    faults: FaultClass,
    witness: Predicate,
    detection: Predicate,
    from_: Predicate,
    span: Predicate,
) -> CheckResult:
    """Masking tolerant detector: the full ``Z detects X`` specification
    (Safeness, Progress, Stability) survives the faults from ``T``."""
    spec = detects_spec(witness, detection)
    what = (
        f"{component.name} is a masking {faults.name}-tolerant detector "
        f"for {spec.name} from {from_.name}"
    )
    base = refines_spec(component, spec, from_)
    ts = faults.system(component, span)
    closed = ts.is_closed(
        span, include_faults=True,
        description=f"{span.name} closed in {component.name} [] {faults.name}",
    )
    under_faults = spec.check(
        ts,
        description=(
            f"{component.name} [] {faults.name} refines {spec.name} from {span.name}"
        ),
    )
    return all_of([base, closed, under_faults], description=what)


def is_nonmasking_tolerant_detector(
    component: Program,
    faults: FaultClass,
    witness: Predicate,
    detection: Predicate,
    from_: Predicate,
    span: Predicate,
    recovered: Optional[Predicate] = None,
) -> CheckResult:
    """Nonmasking tolerant detector: every fault-perturbed computation has
    a suffix refining ``Z detects X``.

    Certified via a *recovery predicate* (default: ``from_``): the
    perturbed system converges to it, it is closed in the component, and
    the component refines the detector spec from it.
    """
    recovered = recovered or from_
    spec = detects_spec(witness, detection)
    what = (
        f"{component.name} is a nonmasking {faults.name}-tolerant detector "
        f"for {spec.name} from {from_.name}"
    )
    base = refines_spec(component, spec, from_)
    ts = faults.system(component, span)
    closed = ts.is_closed(
        span, include_faults=True,
        description=f"{span.name} closed in {component.name} [] {faults.name}",
    )
    from .fairness import check_leads_to
    from .predicate import TRUE

    converges = check_leads_to(
        ts, TRUE, recovered,
        description=(
            f"{component.name} [] {faults.name} converges to {recovered.name}"
        ),
    )
    recovered_closed = ts.is_closed(
        recovered, include_faults=False,
        description=f"{recovered.name} closed in {component.name}",
    )
    suffix = refines_spec(component, spec, recovered)
    return all_of(
        [base, closed, converges, recovered_closed, suffix], description=what
    )
