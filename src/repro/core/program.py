"""Programs and the paper's three composition operators.

A program (Section 2.1) is a set of variables and a finite set of actions.
This module provides:

- :class:`Program`: variables (with finite domains) + actions, plus the
  state-space utilities the model checker needs;
- parallel composition ``p || q`` (:meth:`Program.parallel`, actions are
  unioned, variables merged);
- restriction ``Z ∧ p`` (:meth:`Program.restrict`, every guard
  strengthened by ``Z``);
- sequential composition ``p ;_Z q`` (:meth:`Program.sequential`, defined
  in the paper as ``p || (Z ∧ q)``);
- :meth:`Program.encapsulates`, an executable check of the paper's
  *encapsulation* relation between a composed program ``p'`` and a base
  program ``p``.

There are deliberately **no initial states** in a program — the paper
argues (Section 2.2.1) that invariants may usefully over-approximate
reachable sets, so "where a computation starts" is always an explicit
predicate argument to the analysis functions.
"""

from __future__ import annotations

import itertools
import weakref
from typing import (
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from .action import Action, _unique_names
from .predicate import Predicate
from .regions import clear_universe_cache, universe_index
from .state import State, Variable, state_space

__all__ = ["Program"]


class Program:
    """A guarded-command program: finite variables + named actions.

    Programs are immutable after construction (compositions build new
    ``Program`` objects), which licenses two per-instance memo caches on
    the model-checking hot path: the materialized full state space
    (:meth:`states`) and the predicate-filtered start sets
    (:meth:`states_satisfying`).  Both are registered process-wide so
    :func:`repro.core.exploration.clear_system_cache` can drop them.
    """

    #: full state spaces above this size are never materialized/cached
    STATE_CACHE_LIMIT = 1 << 20

    #: every Program that is currently holding a state cache
    _cache_holders: "weakref.WeakSet[Program]" = None  # set below

    def __init__(self, variables: Sequence[Variable], actions: Sequence[Action],
                 name: str = "program", symmetry=None):
        names = [v.name for v in variables]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate variable names: {names}")
        _unique_names(list(actions))
        self.variables: Tuple[Variable, ...] = tuple(variables)
        self.actions: Tuple[Action, ...] = tuple(actions)
        self.name = name
        #: declared symmetry group of this program (see repro.core.symmetry),
        #: or None; validated against the variables at declaration time.
        #: Compositions deliberately do not propagate it — a composed
        #: program must re-declare (the composition may break the group).
        self.symmetry = symmetry
        self._domains: Dict[str, Tuple] = {v.name: v.domain for v in variables}
        if symmetry is not None:
            symmetry.validate(self.variables)
        self._state_cache: Optional[Tuple[State, ...]] = None
        #: predicate (by identity) -> tuple of full-space states satisfying it
        self._satisfying_cache: Dict[Predicate, Tuple[State, ...]] = {}

    # -- introspection -----------------------------------------------------
    @property
    def variable_names(self) -> Tuple[str, ...]:
        return tuple(v.name for v in self.variables)

    def variable(self, name: str) -> Variable:
        for v in self.variables:
            if v.name == name:
                return v
        raise KeyError(name)

    def action(self, name: str) -> Action:
        for a in self.actions:
            if a.name == name:
                return a
        raise KeyError(name)

    def state_count(self) -> int:
        count = 1
        for v in self.variables:
            count *= len(v.domain)
        return count

    def states(self) -> Iterator[State]:
        """Enumerate the full state space (Cartesian product of domains).

        For spaces up to :data:`STATE_CACHE_LIMIT` states the enumeration
        is materialized once per program and replayed from the cache —
        tolerance checks sweep the full space several times (start-state
        selection, implication checks), and the product enumeration was
        a measurable share of their cost.  Larger spaces stay lazy.
        """
        if self._state_cache is not None:
            return iter(self._state_cache)
        index = universe_index(self)
        if index is not None:
            # the enumeration is shared process-wide across programs
            # with the same variable signature (see repro.core.regions)
            self._state_cache = index.states
            Program._cache_holders.add(self)
            return iter(self._state_cache)
        return state_space(self.variables)

    def states_satisfying(self, predicate: Predicate) -> List[State]:
        """The full-space states at which ``predicate`` holds (the
        paper's ``p | S`` start set), memoized per predicate object —
        on the *shared* universe index when the space is materializable,
        so same-shaped programs interrogated with a shared predicate
        object (a model's span, say) sweep once between them."""
        cached = self._satisfying_cache.get(predicate)
        if cached is None:
            index = universe_index(self)
            if index is not None:
                cached = index.satisfying(predicate)
            else:
                # filter() drives the scan at C speed; only the
                # predicate function itself runs per state
                cached = tuple(filter(predicate.fn, self.states()))
            self._satisfying_cache[predicate] = cached
            Program._cache_holders.add(self)
        return list(cached)

    def universe(self):
        """The shared full-space :class:`~repro.core.regions.StateIndex`
        for this program's variables (``None`` above the cache limit)."""
        return universe_index(self)

    @classmethod
    def clear_state_caches(cls) -> None:
        """Drop every program's memoized state space and start sets,
        along with the shared full-space indexes they alias (and any
        registered downstream memo — see :meth:`register_cache_clearer`)."""
        for program in list(cls._cache_holders):
            program._state_cache = None
            program._satisfying_cache.clear()
        cls._cache_holders = weakref.WeakSet()
        clear_universe_cache()
        for clearer in cls._cache_clearers:
            clearer()

    _cache_clearers: List[Callable[[], None]] = []

    @classmethod
    def register_cache_clearer(cls, clearer: Callable[[], None]) -> None:
        """Hook a downstream cache into :meth:`clear_state_caches` —
        used by layers (e.g. synthesis memos) that core cannot import."""
        cls._cache_clearers.append(clearer)

    def validate_state(self, state: State) -> None:
        """Raise if ``state`` is not a state of this program."""
        for v in self.variables:
            if v.name not in state:
                raise ValueError(f"state {state!r} missing variable {v.name!r}")
            if state[v.name] not in v.domain:
                raise ValueError(
                    f"state value {state[v.name]!r} outside domain of {v.name!r}"
                )

    # -- operational semantics ---------------------------------------------
    def enabled_actions(self, state: State) -> List[Action]:
        """Actions whose guard holds at ``state`` (Section 2.1 *Enabled*)."""
        return [a for a in self.actions if a.enabled(state)]

    def successors(self, state: State) -> List[Tuple[str, State]]:
        """All ``(action name, next state)`` transitions from ``state``."""
        result: List[Tuple[str, State]] = []
        for action in self.actions:
            for nxt in action.successors(state):
                result.append((action.name, nxt))
        return result

    def is_deadlocked(self, state: State) -> bool:
        """True iff no action is enabled at ``state`` (maximality boundary)."""
        return not any(a.enabled(state) for a in self.actions)

    # -- compositions (Section 2.1.1) ----------------------------------------
    def parallel(self, other: "Program", name: Optional[str] = None) -> "Program":
        """``p || q``: union of actions, merged variables.

        Shared variables must agree on their domains; shared action names
        are an error (the paper requires unique action names).
        """
        merged: Dict[str, Variable] = {v.name: v for v in self.variables}
        for v in other.variables:
            if v.name in merged:
                if merged[v.name].domain != v.domain:
                    raise ValueError(
                        f"variable {v.name!r} has conflicting domains in "
                        f"{self.name!r} and {other.name!r}"
                    )
            else:
                merged[v.name] = v
        return Program(
            variables=list(merged.values()),
            actions=list(self.actions) + list(other.actions),
            name=name or f"({self.name} || {other.name})",
        )

    def __or__(self, other: "Program") -> "Program":
        return self.parallel(other)

    def restrict(self, predicate: Predicate, name: Optional[str] = None) -> "Program":
        """``Z ∧ p``: each action ``g --> st`` becomes ``Z ∧ g --> st``."""
        return Program(
            variables=self.variables,
            actions=[a.restrict(predicate) for a in self.actions],
            name=name or f"({predicate.name} ∧ {self.name})",
        )

    def sequential(self, other: "Program", predicate: Predicate,
                   name: Optional[str] = None) -> "Program":
        """``p ;_Z q`` = ``p || (Z ∧ q)`` (Section 2.1.1)."""
        return self.parallel(
            other.restrict(predicate),
            name=name or f"({self.name} ;[{predicate.name}] {other.name})",
        )

    def renamed(self, name: str) -> "Program":
        return Program(self.variables, self.actions, name=name,
                       symmetry=self.symmetry)

    def with_symmetry(self, symmetry) -> "Program":
        """The same program with ``symmetry`` declared (validated against
        the variables).  Symmetric exploration (``explored_system(...,
        symmetric=True)``) requires a declaration; compositions drop any
        declared group, so composed programs attach theirs here."""
        return Program(self.variables, self.actions, name=self.name,
                       symmetry=symmetry)

    def with_actions(self, actions: Sequence[Action],
                     name: Optional[str] = None) -> "Program":
        """A program over the same variables with different actions."""
        return Program(self.variables, actions, name=name or self.name)

    def with_variables(self, extra: Sequence[Variable],
                       name: Optional[str] = None) -> "Program":
        """A program with additional variables (used when composing with
        components that introduce witness variables)."""
        return Program(
            list(self.variables) + list(extra), self.actions,
            name=name or self.name,
        )

    # -- encapsulation (Section 2.1) ----------------------------------------
    def encapsulates(self, base: "Program",
                     states: Optional[Iterable[State]] = None) -> bool:
        """Executable check of the paper's *encapsulates* relation.

        ``self`` (= ``p'``) encapsulates ``base`` (= ``p``) iff every
        action of ``p'`` that updates variables of ``p`` behaves, on the
        variables of ``p``, exactly like some action of ``p`` whose guard
        it strengthens: for each ``p'``-action ``ac'`` that can change a
        ``p``-variable there must be a ``p``-action ``ac`` such that at
        every state where ``ac'`` is enabled, ``ac`` is enabled and the
        projections of their effects on ``p``'s variables coincide.

        The check is performed over ``states`` (default: the full state
        space of ``self``).
        """
        base_vars = set(base.variable_names)
        if not base_vars <= set(self.variable_names):
            return False  # cannot even contain the base program
        if states is None:
            states = list(self.states())
        else:
            states = list(states)

        for composed_action in self.actions:
            touched = _updates_variables(composed_action, base_vars, states)
            if not touched:
                continue
            if not _embeds_some_base_action(
                composed_action, base, base_vars, states
            ):
                return False
        return True

    def __repr__(self) -> str:
        return (
            f"Program({self.name!r}, {len(self.variables)} vars, "
            f"{len(self.actions)} actions)"
        )


Program._cache_holders = weakref.WeakSet()


def _updates_variables(action: Action, names: set, states: Iterable[State]) -> bool:
    """True iff ``action`` can change any variable in ``names``."""
    for state in states:
        for successor in action.successors(state):
            if any(state[n] != successor[n] for n in names if n in state):
                return True
    return False


def _embeds_some_base_action(
    composed_action: Action,
    base: Program,
    base_vars: set,
    states: Iterable[State],
) -> bool:
    """True iff some base action matches ``composed_action`` on base vars.

    For each base action ``ac`` we test: wherever ``composed_action`` is
    enabled, ``ac`` is enabled and executing either action has the same
    effect on the base variables (using initial-state values, matching the
    paper's ``st || st'`` atomic semantics).
    """
    states = list(states)
    for base_action in base.actions:
        if _matches_everywhere(composed_action, base_action, base_vars, states):
            return True
    return False


def _matches_everywhere(
    composed_action: Action,
    base_action: Action,
    base_vars: set,
    states: Iterable[State],
) -> bool:
    for state in states:
        composed_next = composed_action.successors(state)
        if not composed_next:
            continue
        base_state = state.project(base_vars)
        base_next = base_action.successors(state)
        if not base_next:
            return False  # guard of composed action not a strengthening
        base_projections = {s.project(base_vars) for s in base_next}
        for successor in composed_next:
            if successor.project(base_vars) not in base_projections:
                return False
    return True
