"""Multitolerance: different tolerances to different fault-classes.

The paper closes by crediting the component-based method with
*multitolerant* designs — programs that are, say, masking tolerant to
one fault-class and fail-safe tolerant to another, simultaneously
(Arora & Kulkarni, "Component based design of multitolerance", IEEE TSE
1998).  The definition composes pointwise: ``p`` is multitolerant to a
requirement map ``{F_i: kind_i}`` from ``S`` with spans ``{F_i: T_i}``
iff for each ``i``, ``p`` is ``kind_i`` ``F_i``-tolerant to SPEC from
``S`` with span ``T_i``.

Beyond the pointwise conjunction, :func:`is_multitolerant` also checks
the *combined* perturbation for the strongest requested class on the
union span: when several fault-classes may strike in one run, safety
obligations of every fail-safe/masking requirement are re-checked over
the union of all fault edges from the union of the spans — the
interaction condition that makes multitolerance more than a batch of
independent checks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Tuple

from .faults import FaultClass
from .predicate import Predicate
from .program import Program
from .results import CheckResult, all_of
from .specification import Spec
from .tolerance import is_tolerant

__all__ = ["ToleranceRequirement", "is_multitolerant"]


@dataclass(frozen=True)
class ToleranceRequirement:
    """One row of a multitolerance requirement: a fault-class, the
    tolerance kind required against it, and the certifying span."""

    faults: FaultClass
    kind: str                      #: "failsafe" | "nonmasking" | "masking"
    span: Predicate


def is_multitolerant(
    program: Program,
    spec: Spec,
    invariant: Predicate,
    requirements: Tuple[ToleranceRequirement, ...],
    check_interaction: bool = True,
) -> CheckResult:
    """Check a multitolerance requirement set.

    Each requirement is checked individually; with
    ``check_interaction=True`` (default) the safety obligations of every
    fail-safe/masking requirement are additionally verified against the
    *union* of all fault-classes over the union of all spans —
    computations in which several fault types strike must still never
    violate safety.
    """
    what = (
        f"{program.name} is multitolerant to "
        + ", ".join(f"{r.kind}({r.faults.name})" for r in requirements)
        + f" for {spec.name} from {invariant.name}"
    )
    obligations = [
        is_tolerant(r.kind, program, r.faults, spec, invariant, r.span)
        for r in requirements
    ]

    if check_interaction and len(requirements) > 1:
        union_faults = requirements[0].faults
        for requirement in requirements[1:]:
            union_faults = union_faults.union(requirement.faults)
        union_span = requirements[0].span
        for requirement in requirements[1:]:
            union_span = union_span | requirement.span
        union_span = union_span.rename("T_union")

        ts = union_faults.system(program, union_span)
        obligations.append(
            ts.is_closed(
                union_span, include_faults=True,
                description=f"{union_span.name} closed under all fault-classes",
            )
        )
        needs_safety = [
            r for r in requirements if r.kind in ("failsafe", "masking")
        ]
        if needs_safety:
            obligations.append(
                spec.safety_part().check(
                    ts,
                    description=(
                        f"safety of {spec.name} under the combined "
                        f"fault-classes from {union_span.name}"
                    ),
                )
            )
    return all_of(obligations, description=what)
