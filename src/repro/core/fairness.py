"""Liveness checking under weak fairness.

The paper's computations are *fair* and *maximal* sequences (Section 2.1):
every action that is continuously enabled is eventually executed, and a
finite computation ends only where every guard is false.  The liveness
obligations in the detector and corrector specifications (*Progress*,
*Convergence*) and in `converges to` all have the shape

    leads-to:  whenever ``source`` holds, eventually ``target`` holds

and on a finite transition graph they can be decided exactly:

A leads-to obligation is **violated** iff from some reachable state
satisfying ``source ∧ ¬target`` there is either

1. a path inside ``¬target`` ending in a *deadlock* (no program action
   enabled — a legitimate end of a maximal computation), or
2. a path inside ``¬target`` into a *fair-recurrent* SCC: a strongly
   connected subgraph with at least one internal edge in which, for every
   program action enabled at **all** of its states, some internal edge is
   labelled by that action.  A computation may cycle in such an SCC
   forever without violating weak fairness; conversely, if some action is
   enabled everywhere in the SCC but every one of its edges leaves the
   SCC, any run confined there starves that action and is unfair.

Per the paper's Assumption 2 (finitely many fault occurrences), fairness
and hence recurrence are always judged over **program edges only**.
Fault edges participate in two ways: they extend the set of reachable
states where an obligation can arise, and they may carry a pending
obligation deeper into the avoid-region (a computation may take finitely
many more fault steps before its program-only suffix begins) — so the
forward closure inside ``¬target`` follows fault edges as well.  Fault
edges never count as help toward progress, since a computation is never
required to execute them.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from .exploration import TransitionSystem
from .predicate import Predicate
from .results import CheckResult, Counterexample
from .state import State

__all__ = [
    "strongly_connected_components",
    "fair_recurrent_sccs",
    "check_leads_to",
    "check_converges_to",
    "liveness_violating_states",
]


def strongly_connected_components(
    nodes: Iterable[State],
    edges_from,
) -> List[Set[State]]:
    """Iterative Tarjan SCC over an implicit graph.

    ``edges_from(state)`` must yield successor states (already restricted
    to the node set by the caller).
    """
    nodes = list(nodes)
    index_of: Dict[State, int] = {}
    lowlink: Dict[State, int] = {}
    on_stack: Set[State] = set()
    stack: List[State] = []
    components: List[Set[State]] = []
    counter = [0]

    for root in nodes:
        if root in index_of:
            continue
        work: List[Tuple[State, Iterable[State]]] = [(root, iter(edges_from(root)))]
        index_of[root] = lowlink[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, successors = work[-1]
            advanced = False
            for successor in successors:
                if successor not in index_of:
                    index_of[successor] = lowlink[successor] = counter[0]
                    counter[0] += 1
                    stack.append(successor)
                    on_stack.add(successor)
                    work.append((successor, iter(edges_from(successor))))
                    advanced = True
                    break
                if successor in on_stack:
                    lowlink[node] = min(lowlink[node], index_of[successor])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index_of[node]:
                component: Set[State] = set()
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.add(member)
                    if member == node:
                        break
                components.append(component)
    return components


def fair_recurrent_sccs(
    ts: TransitionSystem,
    region: Set[State],
    edge_filter=None,
) -> List[Set[State]]:
    """SCCs of the program-edge subgraph on ``region`` in which a weakly
    fair computation can remain forever.

    ``edge_filter(source, action_name, target)``, when given, further
    restricts which program edges count as internal to the subgraph (used
    e.g. to search for fair *stuttering* cycles in refinement checks).

    See the module docstring for the characterization.
    """

    def keep(source: State, action_name: str, target: State) -> bool:
        return edge_filter is None or edge_filter(source, action_name, target)

    def internal_successors(state: State) -> List[State]:
        return [
            t
            for a, t in ts.program_edges_from(state)
            if t in region and keep(state, a, t)
        ]

    recurrent: List[Set[State]] = []
    for component in strongly_connected_components(region, internal_successors):
        internal_edges = [
            (s, a, t)
            for s in component
            for a, t in ts.program_edges_from(s)
            if t in component and keep(s, a, t)
        ]
        if not internal_edges:
            continue  # trivial SCC without a self-loop: cannot linger
        internal_labels: FrozenSet[str] = frozenset(a for _, a, _ in internal_edges)
        fair = True
        for action in ts.program.actions:
            if all(action.enabled(s) for s in component):
                if action.name not in internal_labels:
                    fair = False  # continuously enabled but starved inside C
                    break
        if fair:
            recurrent.append(component)
    return recurrent


def check_leads_to(
    ts: TransitionSystem,
    source: Predicate,
    target: Predicate,
    description: Optional[str] = None,
) -> CheckResult:
    """Check ``source leads-to target`` over all fair maximal computations
    of ``ts`` (program edges), from every reachable occurrence of
    ``source`` (including states reached via fault edges)."""
    what = description or (
        f"{source.name} leads-to {target.name} in {ts.program.name}"
    )
    avoid_region: Set[State] = {s for s in ts.states if not target(s)}
    bad_starts = [s for s in ts.states if source(s) and s in avoid_region]
    if not bad_starts:
        return CheckResult.passed(what, details="source region empty or immediate")

    reachable_in_region = _forward_closure(ts, bad_starts, avoid_region)

    # Violation mode 1: a maximal computation dies inside ¬target.
    for state in reachable_in_region:
        if ts.program.is_deadlocked(state):
            path = ts.find_path(
                bad_starts,
                Predicate(lambda s, d=state: s == d, name="deadlock"),
                include_faults=True,
                within=Predicate(
                    lambda s, r=avoid_region: s in r, name=f"¬({target.name})"
                ),
            )
            states, actions = path if path else ((state,), ())
            return CheckResult.failed(
                what,
                counterexample=Counterexample(
                    kind="trace",
                    states=tuple(states),
                    actions=tuple(actions),
                    note=(
                        f"maximal computation reaches deadlock without "
                        f"satisfying {target.name}"
                    ),
                ),
            )

    # Violation mode 2: a fair cycle inside ¬target.
    for component in fair_recurrent_sccs(ts, reachable_in_region):
        witness = next(iter(component))
        path = ts.find_path(
            bad_starts,
            Predicate(lambda s, c=component: s in c, name="fair SCC"),
            include_faults=True,
            within=Predicate(
                lambda s, r=avoid_region: s in r, name=f"¬({target.name})"
            ),
        )
        stem_states, stem_actions = path if path else ((witness,), ())
        cycle_states, cycle_actions = _cycle_through(ts, component, stem_states[-1])
        return CheckResult.failed(
            what,
            counterexample=Counterexample(
                kind="lasso",
                states=tuple(stem_states) + tuple(cycle_states[1:]),
                actions=tuple(stem_actions) + tuple(cycle_actions),
                loop_index=len(stem_states) - 1,
                note=(
                    f"fair computation cycles forever without satisfying "
                    f"{target.name} (SCC of {len(component)} states)"
                ),
            ),
        )

    return CheckResult.passed(what)


def check_converges_to(
    ts: TransitionSystem,
    origin: Predicate,
    goal: Predicate,
    description: Optional[str] = None,
) -> CheckResult:
    """Check the paper's ``origin converges to goal`` specification:
    membership of every computation in ``cl(origin) ∩ cl(goal)`` together
    with *origin leads-to goal* (Section 2.2)."""
    what = description or (
        f"{origin.name} converges to {goal.name} in {ts.program.name}"
    )
    for predicate in (origin, goal):
        closed = ts.is_closed(predicate, include_faults=False)
        if not closed:
            return CheckResult.failed(
                f"{what}: {closed.description}",
                counterexample=closed.counterexample,
            )
    leads = check_leads_to(ts, origin, goal)
    if not leads:
        return CheckResult.failed(
            f"{what}: {leads.description}", counterexample=leads.counterexample
        )
    return CheckResult.passed(what)


def liveness_violating_states(
    ts: TransitionSystem,
    source: Predicate,
    target: Predicate,
) -> Set[State]:
    """The states of ``ts`` from which some fair maximal computation
    violates ``source leads-to target``.

    Used by the synthesis algorithms to *shrink* a candidate invariant:
    a violation core is any deadlock or fair-recurrent SCC inside
    ``¬target``; the danger zone is everything in ``¬target`` that can
    reach a core while staying in ``¬target``; a state is violating iff
    it can reach (via any edges) a ``source``-state inside the danger
    zone.  The violating set is closed under predecessors, so removing
    it from a closed predicate keeps it closed.
    """
    avoid_region: Set[State] = {s for s in ts.states if not target(s)}

    core: Set[State] = set()
    for component in fair_recurrent_sccs(ts, avoid_region):
        core |= component
    for state in avoid_region:
        if ts.program.is_deadlocked(state):
            core.add(state)

    predecessors: Dict[State, List[State]] = {s: [] for s in ts.states}
    for state in ts.states:
        for _, nxt in ts.edges_from(state, include_faults=True):
            if nxt in predecessors:
                predecessors[nxt].append(state)

    # danger: backward closure of the core within ¬target
    danger: Set[State] = set(core)
    frontier = deque(core)
    while frontier:
        state = frontier.popleft()
        for previous in predecessors[state]:
            if previous in avoid_region and previous not in danger:
                danger.add(previous)
                frontier.append(previous)

    bad_sources = {s for s in danger if source(s)}

    violating: Set[State] = set(bad_sources)
    frontier = deque(bad_sources)
    while frontier:
        state = frontier.popleft()
        for previous in predecessors[state]:
            if previous not in violating:
                violating.add(previous)
                frontier.append(previous)
    return violating


# -- internals ---------------------------------------------------------------

def _forward_closure(
    ts: TransitionSystem, sources: Sequence[State], region: Set[State]
) -> Set[State]:
    """States reachable from ``sources`` via program edges staying in
    ``region`` (sources assumed to be in the region)."""
    seen: Set[State] = set()
    frontier = deque(s for s in sources if s in region)
    seen.update(frontier)
    while frontier:
        state = frontier.popleft()
        for _, nxt in ts.edges_from(state, include_faults=True):
            if nxt in region and nxt not in seen:
                seen.add(nxt)
                frontier.append(nxt)
    return seen


def _cycle_through(
    ts: TransitionSystem, component: Set[State], start: State
) -> Tuple[List[State], List[str]]:
    """A cycle inside ``component`` beginning and ending at ``start``.

    ``start`` must belong to the component; the component is strongly
    connected with at least one internal edge, so a cycle exists.
    """
    if start not in component:
        start = next(iter(component))
    # one step out of start, then BFS back to start within the component
    for action_name, nxt in ts.program_edges_from(start):
        if nxt not in component:
            continue
        if nxt == start:
            return [start, start], [action_name]
        back = ts.find_path(
            [nxt],
            Predicate(lambda s, d=start: s == d, name="back"),
            include_faults=False,
            within=Predicate(lambda s, c=component: s in c, name="component"),
        )
        if back is not None:
            states, actions = back
            return [start] + states, [action_name] + actions
    return [start], []
