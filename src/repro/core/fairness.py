"""Liveness checking under weak fairness.

The paper's computations are *fair* and *maximal* sequences (Section 2.1):
every action that is continuously enabled is eventually executed, and a
finite computation ends only where every guard is false.  The liveness
obligations in the detector and corrector specifications (*Progress*,
*Convergence*) and in `converges to` all have the shape

    leads-to:  whenever ``source`` holds, eventually ``target`` holds

and on a finite transition graph they can be decided exactly:

A leads-to obligation is **violated** iff from some reachable state
satisfying ``source ∧ ¬target`` there is either

1. a path inside ``¬target`` ending in a *deadlock* (no program action
   enabled — a legitimate end of a maximal computation), or
2. a path inside ``¬target`` into a *fair-recurrent* SCC: a strongly
   connected subgraph with at least one internal edge in which, for every
   program action enabled at **all** of its states, some internal edge is
   labelled by that action.  A computation may cycle in such an SCC
   forever without violating weak fairness; conversely, if some action is
   enabled everywhere in the SCC but every one of its edges leaves the
   SCC, any run confined there starves that action and is unfair.

Per the paper's Assumption 2 (finitely many fault occurrences), fairness
and hence recurrence are always judged over **program edges only**.
Fault edges participate in two ways: they extend the set of reachable
states where an obligation can arise, and they may carry a pending
obligation deeper into the avoid-region (a computation may take finitely
many more fault steps before its program-only suffix begins) — so the
forward closure inside ``¬target`` follows fault edges as well.  Fault
edges never count as help toward progress, since a computation is never
required to execute them.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from .exploration import TransitionSystem
from .predicate import Predicate
from .regions import (
    Region,
    SystemIndex,
    _data_to_mask,
    _np,
    bits_of_ids,
    first_bit,
    iter_bits,
    paused_gc,
    system_index,
)
from .results import CheckResult, Counterexample
from .state import State

__all__ = [
    "strongly_connected_components",
    "fair_recurrent_sccs",
    "check_leads_to",
    "check_converges_to",
    "liveness_violating_states",
]


def strongly_connected_components(
    nodes: Iterable[State],
    edges_from,
) -> List[Set[State]]:
    """Iterative Tarjan SCC over an implicit graph.

    ``edges_from(state)`` must yield successor states (already restricted
    to the node set by the caller).
    """
    nodes = list(nodes)
    index_of: Dict[State, int] = {}
    lowlink: Dict[State, int] = {}
    on_stack: Set[State] = set()
    stack: List[State] = []
    components: List[Set[State]] = []
    counter = [0]

    for root in nodes:
        if root in index_of:
            continue
        work: List[Tuple[State, Iterable[State]]] = [(root, iter(edges_from(root)))]
        index_of[root] = lowlink[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, successors = work[-1]
            advanced = False
            for successor in successors:
                if successor not in index_of:
                    index_of[successor] = lowlink[successor] = counter[0]
                    counter[0] += 1
                    stack.append(successor)
                    on_stack.add(successor)
                    work.append((successor, iter(edges_from(successor))))
                    advanced = True
                    break
                if successor in on_stack:
                    lowlink[node] = min(lowlink[node], index_of[successor])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index_of[node]:
                component: Set[State] = set()
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.add(member)
                    if member == node:
                        break
                components.append(component)
    return components


def fair_recurrent_sccs(
    ts: TransitionSystem,
    region,
    edge_filter=None,
) -> List[Set[State]]:
    """SCCs of the program-edge subgraph on ``region`` in which a weakly
    fair computation can remain forever.

    ``region`` may be a set of states or a
    :class:`~repro.core.regions.Region` over the system's index.
    ``edge_filter(source, action_name, target)``, when given, further
    restricts which program edges count as internal to the subgraph (used
    e.g. to search for fair *stuttering* cycles in refinement checks).

    See the module docstring for the characterization.  Decided over the
    system's dense index: iterative Tarjan on integer ids, memoized
    per-action enabledness bit arrays for the starvation test.  States
    in ``region`` that the system never explored have no edges, so they
    can only form trivial SCCs and are skipped outright.
    """
    index = system_index(ts)
    if isinstance(region, Region):
        region_bits = region.bits
    else:
        region_bits = index.region_of(region).bits
    components = _fair_recurrent_component_ids(
        ts, index, region_bits, edge_filter
    )
    states = index.states
    return [{states[u] for u in component} for component in components]


def _fair_recurrent_component_ids(
    ts: TransitionSystem,
    index: SystemIndex,
    region_bits: int,
    edge_filter=None,
) -> List[List[int]]:
    """Id-level core of :func:`fair_recurrent_sccs`.

    On a symmetry quotient the starvation test is *orbit-granular*:
    canonicalization re-sorts replica blocks along quotient edges, so
    the process waiting for action ``IB2.2`` in the full graph may be
    "process 1" at one quotient representative and "process 3" at the
    next — no single action stays continuously enabled even where the
    full graph starves one.  The weak-fairness obligation therefore
    attaches to each declared *action-name orbit* (see
    :meth:`~repro.core.symmetry.Symmetry.orbit_of`): an SCC is unfair
    when some orbit has a member enabled at every component state and
    no internal edge is labelled by any member.  A starved action in
    the full graph projects to exactly that pattern, so every unfair
    full-graph SCC is rejected here too; the converse direction (an
    orbit enabled everywhere only by alternating members) is an
    approximation in the missed-violation direction, validated
    empirically by the parity suite — the same trade the SCC-granular
    full-graph test already makes.
    """
    n = index.n
    region_data = region_bits.to_bytes((n + 7) >> 3, "little")
    plabeled = index.plabeled
    states = index.states

    if edge_filter is None:
        psucc = index.psucc
        def internal(u: int) -> List[int]:
            return [
                v for v in psucc[u] if region_data[v >> 3] & (1 << (v & 7))
            ]
    else:
        def internal(u: int) -> List[int]:
            source = states[u]
            return [
                v
                for a, v in plabeled[u]
                if region_data[v >> 3] & (1 << (v & 7))
                and edge_filter(source, a, states[v])
            ]

    symmetry = ts.symmetry
    if symmetry is None:
        obligations: List[Tuple[FrozenSet[str], Tuple]] = [
            (frozenset((action.name,)), (action,))
            for action in ts.program.actions
        ]
    else:
        grouped: Dict[FrozenSet[str], List] = {}
        for action in ts.program.actions:
            grouped.setdefault(symmetry.orbit_of(action.name), []).append(action)
        obligations = [
            (orbit, tuple(actions)) for orbit, actions in grouped.items()
        ]

    with paused_gc():
        core = None
        if edge_filter is None:
            core = _cycle_core(index, region_data, n)
        if core is not None:
            # every node Tarjan could place in a non-trivial SCC (or a
            # self-loop) survives the trim, so restricting both the
            # roots and the adjacency to the core drops only trivial
            # components — which are filtered below anyway
            region_data = _np.packbits(core, bitorder="little").tobytes()
            node_ids = _np.flatnonzero(core).tolist()
        else:
            node_ids = list(iter_bits(region_bits, n))
        components = _tarjan_ids(node_ids, internal)
        if edge_filter is None:
            vetted = _vet_components_csr(index, components, obligations)
            if vetted is not None:
                return vetted

        recurrent: List[List[int]] = []
        for component in components:
            members = set(component)
            internal_labels: Set[str] = set()
            for u in component:
                if edge_filter is None:
                    for a, v in plabeled[u]:
                        if v in members:
                            internal_labels.add(a)
                else:
                    source = states[u]
                    for a, v in plabeled[u]:
                        if v in members and edge_filter(source, a, states[v]):
                            internal_labels.add(a)
            if not internal_labels:
                continue  # trivial SCC without a self-loop: cannot linger
            fair = True
            for names, actions in obligations:
                if not internal_labels.isdisjoint(names):
                    continue  # some orbit member executed inside C
                if len(actions) == 1:
                    enabled = index.enabled_data(actions[0])
                    starved = all(
                        enabled[u >> 3] & (1 << (u & 7)) for u in component
                    )
                else:
                    datas = [index.enabled_data(a) for a in actions]
                    starved = all(
                        any(d[u >> 3] & (1 << (u & 7)) for d in datas)
                        for u in component
                    )
                if starved:
                    fair = False  # continuously enabled but starved inside C
                    break
            if fair:
                recurrent.append(component)
        return recurrent


def _cycle_core(index: SystemIndex, region_data: bytes, n: int):
    """Boolean mask of the region nodes that can lie on a program-edge
    cycle within the region — or ``None`` without CSR/numpy support.

    Iteratively peels nodes with no internal successor or no internal
    predecessor (the classic trim step of FW-BW SCC algorithms) in
    whole-graph ``bincount`` passes.  Non-trivial SCC members and
    self-loop nodes always keep an internal edge in both directions, so
    the trim is exact: it removes precisely the nodes Tarjan would have
    placed in trivial, self-loop-free components.  Convergent regions —
    the dominant shape in stabilization certificates — trim to a small
    fraction of the region in a few passes."""
    csr = index._edge_csr(False)
    if csr is None or _np is None:
        return None
    indptr, dst, _act, _names = csr
    alive = _data_to_mask(region_data, n)
    src = _np.repeat(_np.arange(n, dtype=_np.int64), _np.diff(indptr))
    inside = alive[src] & alive[dst]
    src = src[inside]
    dst = dst[inside]
    count = int(alive.sum())
    while True:
        live = alive[src] & alive[dst]
        out_deg = _np.bincount(src[live], minlength=n)
        in_deg = _np.bincount(dst[live], minlength=n)
        alive &= (out_deg > 0) & (in_deg > 0)
        next_count = int(alive.sum())
        if next_count == count:
            return alive
        count = next_count


def _vet_components_csr(
    index: SystemIndex,
    components: List[List[int]],
    obligations,
) -> Optional[List[List[int]]]:
    """Array-level fairness vetting of Tarjan components.

    Replaces the per-SCC Python loops (internal-label collection and the
    per-obligation starvation probes) with a handful of whole-graph numpy
    passes over the program-edge CSR: one labelling pass classifies every
    edge by (source component, action) at once, and each obligation's
    starvation test becomes a single ``bincount`` of enabled members per
    component.  Returns ``None`` when the exploration engine left no
    columnar edge arrays behind (the caller then runs the reference
    loops) — semantics are identical either way."""
    csr = index._edge_csr(False)
    if csr is None or _np is None:
        return None
    indptr, dst, act, names = csr
    ncomp = len(components)
    comp = _np.full(index.n, -1, dtype=_np.int64)
    for ci, nodes in enumerate(components):
        comp[nodes] = ci
    src_comp = _np.repeat(comp, _np.diff(indptr))
    internal_edge = (src_comp >= 0) & (src_comp == comp[dst])
    pair = src_comp[internal_edge] * len(names) + act[internal_edge]
    labels: List[Set[str]] = [set() for _ in range(ncomp)]
    for key in _np.unique(pair).tolist():
        labels[key // len(names)].add(names[key % len(names)])

    member_ids = _np.flatnonzero(comp >= 0)
    member_comp = comp[member_ids]
    sizes = _np.bincount(member_comp, minlength=ncomp)
    starved_cache: Dict[int, object] = {}

    def starved(oi: int, actions) -> "object":
        mask = starved_cache.get(oi)
        if mask is None:
            enabled = _data_to_mask(index.enabled_data(actions[0]), index.n)
            for action in actions[1:]:
                enabled |= _data_to_mask(index.enabled_data(action), index.n)
            count = _np.bincount(
                member_comp, weights=enabled[member_ids], minlength=ncomp
            )
            mask = starved_cache[oi] = count == sizes
        return mask

    recurrent: List[List[int]] = []
    for ci, component in enumerate(components):
        internal_labels = labels[ci]
        if not internal_labels:
            continue  # trivial SCC without a self-loop: cannot linger
        fair = True
        for oi, (names_set, actions) in enumerate(obligations):
            if not internal_labels.isdisjoint(names_set):
                continue  # some orbit member executed inside C
            if starved(oi, actions)[ci]:
                fair = False  # continuously enabled but starved inside C
                break
        if fair:
            recurrent.append(component)
    return recurrent


def _tarjan_ids(nodes: List[int], edges_from) -> List[List[int]]:
    """Iterative Tarjan SCC over integer ids (same algorithm as
    :func:`strongly_connected_components`, minus State hashing)."""
    index_of: Dict[int, int] = {}
    lowlink: Dict[int, int] = {}
    on_stack: Set[int] = set()
    stack: List[int] = []
    components: List[List[int]] = []
    counter = 0

    for root in nodes:
        if root in index_of:
            continue
        work: List[Tuple[int, Iterable[int]]] = [(root, iter(edges_from(root)))]
        index_of[root] = lowlink[root] = counter
        counter += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, successors = work[-1]
            advanced = False
            for successor in successors:
                if successor not in index_of:
                    index_of[successor] = lowlink[successor] = counter
                    counter += 1
                    stack.append(successor)
                    on_stack.add(successor)
                    work.append((successor, iter(edges_from(successor))))
                    advanced = True
                    break
                if successor in on_stack:
                    if index_of[successor] < lowlink[node]:
                        lowlink[node] = index_of[successor]
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                if lowlink[node] < lowlink[parent]:
                    lowlink[parent] = lowlink[node]
            if lowlink[node] == index_of[node]:
                component: List[int] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                components.append(component)
    return components


def check_leads_to(
    ts: TransitionSystem,
    source: Predicate,
    target: Predicate,
    description: Optional[str] = None,
) -> CheckResult:
    """Check ``source leads-to target`` over all fair maximal computations
    of ``ts`` (program edges), from every reachable occurrence of
    ``source`` (including states reached via fault edges)."""
    what = description or (
        f"{source.name} leads-to {target.name} in {ts.program.name}"
    )
    index = system_index(ts)
    avoid_bits = index.full_bits & ~index.region_bits(target)
    start_bits = index.region_bits(source) & avoid_bits
    if not start_bits:
        return CheckResult.passed(what, details="source region empty or immediate")

    reach_bits = index.forward_closure_bits(start_bits, avoid_bits)
    index_states = index.states

    # Violation mode 1: a maximal computation dies inside ¬target.
    dead_bits = reach_bits & index.deadlock_bits
    if dead_bits:
        state = index_states[first_bit(dead_bits)]
        bad_starts = [index_states[i] for i in iter_bits(start_bits, index.n)]
        avoid_region = {
            index_states[i] for i in iter_bits(avoid_bits, index.n)
        }
        path = ts.find_path(
            bad_starts,
            Predicate(lambda s, d=state: s == d, name="deadlock"),
            include_faults=True,
            within=Predicate(
                lambda s, r=avoid_region: s in r, name=f"¬({target.name})"
            ),
        )
        states, actions = path if path else ((state,), ())
        return CheckResult.failed(
            what,
            counterexample=Counterexample(
                kind="trace",
                states=tuple(states),
                actions=tuple(actions),
                note=(
                    f"maximal computation reaches deadlock without "
                    f"satisfying {target.name}"
                ),
            ),
        )

    # Violation mode 2: a fair cycle inside ¬target.
    for component_ids in _fair_recurrent_component_ids(ts, index, reach_bits):
        component = {index_states[u] for u in component_ids}
        witness = next(iter(component))
        bad_starts = [index_states[i] for i in iter_bits(start_bits, index.n)]
        avoid_region = {
            index_states[i] for i in iter_bits(avoid_bits, index.n)
        }
        path = ts.find_path(
            bad_starts,
            Predicate(lambda s, c=component: s in c, name="fair SCC"),
            include_faults=True,
            within=Predicate(
                lambda s, r=avoid_region: s in r, name=f"¬({target.name})"
            ),
        )
        stem_states, stem_actions = path if path else ((witness,), ())
        cycle_states, cycle_actions = _cycle_through(ts, component, stem_states[-1])
        return CheckResult.failed(
            what,
            counterexample=Counterexample(
                kind="lasso",
                states=tuple(stem_states) + tuple(cycle_states[1:]),
                actions=tuple(stem_actions) + tuple(cycle_actions),
                loop_index=len(stem_states) - 1,
                note=(
                    f"fair computation cycles forever without satisfying "
                    f"{target.name} (SCC of {len(component)} states)"
                ),
            ),
        )

    return CheckResult.passed(what)


def check_converges_to(
    ts: TransitionSystem,
    origin: Predicate,
    goal: Predicate,
    description: Optional[str] = None,
) -> CheckResult:
    """Check the paper's ``origin converges to goal`` specification:
    membership of every computation in ``cl(origin) ∩ cl(goal)`` together
    with *origin leads-to goal* (Section 2.2)."""
    what = description or (
        f"{origin.name} converges to {goal.name} in {ts.program.name}"
    )
    for predicate in (origin, goal):
        closed = ts.is_closed(predicate, include_faults=False)
        if not closed:
            return CheckResult.failed(
                f"{what}: {closed.description}",
                counterexample=closed.counterexample,
            )
    leads = check_leads_to(ts, origin, goal)
    if not leads:
        return CheckResult.failed(
            f"{what}: {leads.description}", counterexample=leads.counterexample
        )
    return CheckResult.passed(what)


def liveness_violating_states(
    ts: TransitionSystem,
    source: Predicate,
    target: Predicate,
) -> Set[State]:
    """The states of ``ts`` from which some fair maximal computation
    violates ``source leads-to target``.

    Used by the synthesis algorithms to *shrink* a candidate invariant:
    a violation core is any deadlock or fair-recurrent SCC inside
    ``¬target``; the danger zone is everything in ``¬target`` that can
    reach a core while staying in ``¬target``; a state is violating iff
    it can reach (via any edges) a ``source``-state inside the danger
    zone.  The violating set is closed under predecessors, so removing
    it from a closed predicate keeps it closed.

    Both backward closures run as bitset worklists over the system
    index's precomputed predecessor lists.
    """
    index = system_index(ts)
    n = index.n
    avoid_bits = index.full_bits & ~index.region_bits(target)
    avoid_data = avoid_bits.to_bytes((n + 7) >> 3, "little")

    core_ids: List[int] = []
    for component in _fair_recurrent_component_ids(ts, index, avoid_bits):
        core_ids.extend(component)
    core_ids.extend(iter_bits(avoid_bits & index.deadlock_bits, n))

    predecessors = index.apred

    # danger: backward closure of the core within ¬target
    danger = bytearray((n + 7) >> 3)
    for i in core_ids:
        danger[i >> 3] |= 1 << (i & 7)
    frontier = deque(core_ids)
    while frontier:
        v = frontier.popleft()
        for u in predecessors[v]:
            k, b = u >> 3, 1 << (u & 7)
            if not danger[k] & b and avoid_data[k] & b:
                danger[k] |= b
                frontier.append(u)

    danger_bits = int.from_bytes(danger, "little")
    bad_source_bits = danger_bits & index.region_bits(source)

    violating = bytearray(bad_source_bits.to_bytes((n + 7) >> 3, "little"))
    frontier = deque(iter_bits(bad_source_bits, n))
    while frontier:
        v = frontier.popleft()
        for u in predecessors[v]:
            k, b = u >> 3, 1 << (u & 7)
            if not violating[k] & b:
                violating[k] |= b
                frontier.append(u)
    index_states = index.states
    return {
        index_states[i]
        for i in iter_bits(int.from_bytes(violating, "little"), n)
    }


# -- internals ---------------------------------------------------------------

def _forward_closure(
    ts: TransitionSystem, sources: Sequence[State], region: Set[State]
) -> Set[State]:
    """States reachable from ``sources`` via program edges staying in
    ``region`` (sources assumed to be in the region)."""
    seen: Set[State] = set()
    frontier = deque(s for s in sources if s in region)
    seen.update(frontier)
    while frontier:
        state = frontier.popleft()
        for _, nxt in ts.edges_from(state, include_faults=True):
            if nxt in region and nxt not in seen:
                seen.add(nxt)
                frontier.append(nxt)
    return seen


def _cycle_through(
    ts: TransitionSystem, component: Set[State], start: State
) -> Tuple[List[State], List[str]]:
    """A cycle inside ``component`` beginning and ending at ``start``.

    ``start`` must belong to the component; the component is strongly
    connected with at least one internal edge, so a cycle exists.
    """
    if start not in component:
        start = next(iter(component))
    # one step out of start, then BFS back to start within the component
    for action_name, nxt in ts.program_edges_from(start):
        if nxt not in component:
            continue
        if nxt == start:
            return [start, start], [action_name]
        back = ts.find_path(
            [nxt],
            Predicate(lambda s, d=start: s == d, name="back"),
            include_faults=False,
            within=Predicate(lambda s, c=component: s in c, name="component"),
        )
        if back is not None:
            states, actions = back
            return [start] + states, [action_name] + actions
    return [start], []
