"""States, variables, and state spaces.

The paper defines a *program* over a set of variables, each with a
predefined nonempty domain, and a *state* as a value for each variable
(Section 2.1).  This module makes those definitions executable:

- :class:`Variable` declares a name and a finite domain.
- :class:`Schema` is an interned, sorted tuple of variable names shared
  by every state over the same variables, carrying the name→index map
  that makes state access O(1).
- :class:`State` is an immutable, hashable assignment of values to
  variable names, represented as a values-tuple against a shared
  :class:`Schema`.  Immutability lets states serve as graph nodes and
  set members throughout the library.
- :class:`StateInterner` canonicalizes value-equal states to one object
  so that equality during exploration is (mostly) pointer equality.
- :func:`state_space` enumerates the full (finite) Cartesian state space
  of a collection of variables.
- :meth:`State.project` implements the paper's *projection* of a state of
  ``p'`` on ``p`` (Section 2.2.1): keep only the named variables.

Why the schema representation: every check in Sections 2–5 quantifies
over the reachable transition graph, so ``State.__getitem__`` (inside
every guard and predicate) and ``State.assign`` (inside every action
statement) are the hot path of the whole library.  Sharing one interned
schema per variable set means a state is a single values-tuple — O(1)
lookups through the schema's index map, assignment as a shallow tuple
copy with no dict rebuild or re-sort, and a hash precomputed at
construction.  The mapping/kwargs constructor is retained unchanged, so
programs written against the original dict-of-items representation run
unmodified.

Domains must be finite for the model-checking machinery to terminate;
they may contain any hashable values (ints, strings, tuples, frozensets,
or the :data:`BOTTOM` sentinel used by several example programs).
"""

from __future__ import annotations

import itertools
import operator
from typing import (
    Dict,
    FrozenSet,
    Hashable,
    Iterable,
    Iterator,
    List,
    Mapping,
    Sequence,
    Tuple,
)

__all__ = [
    "BOTTOM",
    "Bottom",
    "Variable",
    "Schema",
    "State",
    "StateInterner",
    "state_space",
]


class Bottom:
    """Singleton sentinel for the paper's undefined value ``⊥``.

    Several example programs (memory access, TMR, Byzantine agreement) use
    ``⊥`` to mean "not yet assigned".  A dedicated singleton keeps it
    distinct from every ordinary domain value, including ``None``.
    """

    _instance = None

    def __new__(cls) -> "Bottom":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "⊥"

    def __reduce__(self):
        return (Bottom, ())


BOTTOM = Bottom()


class Variable:
    """A program variable with a predefined, nonempty, finite domain.

    Parameters
    ----------
    name:
        Unique variable name within a program.
    domain:
        Iterable of the values the variable may take.  Must be nonempty;
        duplicates are removed while preserving order.
    """

    __slots__ = ("name", "domain")

    def __init__(self, name: str, domain: Iterable[Hashable]):
        values: Tuple[Hashable, ...] = tuple(dict.fromkeys(domain))
        if not values:
            raise ValueError(f"variable {name!r} must have a nonempty domain")
        self.name = name
        self.domain = values

    def __contains__(self, value: Hashable) -> bool:
        return value in self.domain

    def __repr__(self) -> str:
        return f"Variable({self.name!r}, domain={list(self.domain)!r})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Variable):
            return NotImplemented
        return self.name == other.name and self.domain == other.domain

    def __hash__(self) -> int:
        return hash((self.name, self.domain))


class Schema:
    """The interned, sorted variable-name tuple shared by all states over
    the same variables.

    Obtain instances with :meth:`Schema.of`; there is exactly one
    ``Schema`` object per distinct name set in a process, so states over
    the same variables share a single schema (and schema comparison is
    pointer comparison).  The schema carries the name→index map that
    backs O(1) :meth:`State.__getitem__` / :meth:`State.__contains__`.
    """

    __slots__ = ("names", "index", "_hash", "_projections")

    _pool: Dict[Tuple[str, ...], "Schema"] = {}

    def __init__(self, names: Tuple[str, ...]):
        self.names = names
        self.index: Dict[str, int] = {
            name: position for position, name in enumerate(names)
        }
        self._hash = hash(names)
        #: cache of projection plans: frozenset(names) -> (schema, indices)
        self._projections: Dict[
            FrozenSet[str], Tuple["Schema", Tuple[int, ...]]
        ] = {}

    @classmethod
    def of(cls, names: Iterable[str]) -> "Schema":
        """The unique schema for ``names`` (sorted and interned)."""
        key = tuple(names)
        schema = cls._pool.get(key)
        if schema is None:
            canonical = tuple(sorted(key))
            schema = cls._pool.get(canonical)
            if schema is None:
                schema = cls(canonical)
                cls._pool[canonical] = schema
            if key != canonical:
                # remember the unsorted spelling too, so repeated
                # construction from the same insertion order skips the sort
                cls._pool[key] = schema
        return schema

    def __hash__(self) -> int:
        return self._hash

    # identity equality (the pool guarantees one instance per name set)

    def projection_plan(
        self, names: Iterable[str]
    ) -> Tuple["Schema", Tuple[int, ...]]:
        """The (sub-schema, value indices) pair realizing a projection
        onto ``names`` — cached per schema because refinement checks
        project every explored state onto the same variable subset."""
        key = frozenset(names)
        plan = self._projections.get(key)
        if plan is None:
            kept = tuple(n for n in self.names if n in key)
            indices = tuple(self.index[n] for n in kept)
            plan = (Schema.of(kept), indices)
            self._projections[key] = plan
        return plan

    def __reduce__(self):
        return (Schema.of, (self.names,))

    def __repr__(self) -> str:
        return f"Schema{self.names!r}"


def _state_of(schema: Schema, values: Tuple[Hashable, ...]) -> "State":
    """Fast internal constructor: values already in schema order.

    The hash is computed lazily (see :meth:`State.__hash__`): full-space
    enumeration builds orders of magnitude more states than ever enter a
    hash table, so hashing eagerly would be mostly wasted work.
    """
    state = object.__new__(State)
    state._schema = schema
    state._values = values
    state._hash = None
    return state


class State(Mapping[str, Hashable]):
    """An immutable assignment of values to variable names.

    ``State`` behaves as a read-only mapping and supports three styles of
    access::

        s = State(x=1, y=0)
        s["x"]            # mapping access
        s.assign(x=2)     # functional update -> new State
        s.project(["x"])  # projection on a subset of variables

    States compare equal iff they assign the same values to the same
    variables, and they hash consistently, so they can be used as nodes in
    transition graphs and as members of predicates-as-sets.

    Internally a state is a values-tuple against an interned
    :class:`Schema` (see the module docstring); the mapping/kwargs
    constructor normalizes into that representation, so states built
    from dicts and states built by the fast paths are indistinguishable.
    """

    __slots__ = ("_schema", "_values", "_hash")

    def __init__(self, mapping: Mapping[str, Hashable] = None, **values: Hashable):
        if mapping is not None:
            combined: Mapping[str, Hashable] = dict(mapping)
            combined.update(values)
        else:
            combined = values
        schema = Schema.of(combined)
        self._schema = schema
        self._values: Tuple[Hashable, ...] = tuple(
            combined[name] for name in schema.names
        )
        self._hash = None

    # -- schema view -------------------------------------------------------
    @property
    def schema(self) -> Schema:
        return self._schema

    @property
    def values_tuple(self) -> Tuple[Hashable, ...]:
        """The values in schema (sorted-name) order."""
        return self._values

    # -- Mapping protocol ------------------------------------------------
    def __getitem__(self, name: str) -> Hashable:
        try:
            return self._values[self._schema.index[name]]
        except KeyError:
            raise KeyError(name) from None

    def __iter__(self) -> Iterator[str]:
        return iter(self._schema.names)

    def __len__(self) -> int:
        return len(self._values)

    def __contains__(self, name: object) -> bool:
        return name in self._schema.index

    def items(self):
        return tuple(zip(self._schema.names, self._values))

    # -- functional updates ----------------------------------------------
    def assign(self, **updates: Hashable) -> "State":
        """Return a new state with ``updates`` applied.

        Raises ``KeyError`` if an update names a variable absent from the
        state: silently introducing variables is almost always a bug in a
        program action.
        """
        index = self._schema.index
        values = self._values
        if len(updates) == 1:
            # single-variable updates are the overwhelmingly common
            # action shape; splice the tuple directly
            [(name, value)] = updates.items()
            position = index.get(name)
            if position is None:
                raise KeyError(
                    f"cannot assign unknown variable {name!r}; "
                    f"state variables are {list(self._schema.names)}"
                )
            return _state_of(
                self._schema,
                values[:position] + (value,) + values[position + 1:],
            )
        mutable = list(values)
        for name, value in updates.items():
            position = index.get(name)
            if position is None:
                raise KeyError(
                    f"cannot assign unknown variable {name!r}; "
                    f"state variables are {list(self._schema.names)}"
                )
            mutable[position] = value
        return _state_of(self._schema, tuple(mutable))

    def assign_one(self, name: str, value: Hashable) -> "State":
        """:meth:`assign` for exactly one variable, without the kwargs
        packing — the hot shape of deterministic statements."""
        position = self._schema.index.get(name)
        if position is None:
            raise KeyError(
                f"cannot assign unknown variable {name!r}; "
                f"state variables are {list(self._schema.names)}"
            )
        values = self._values
        return _state_of(
            self._schema,
            values[:position] + (value,) + values[position + 1:],
        )

    def assign_each(
        self, name: str, values: Iterable[Hashable]
    ) -> Tuple["State", ...]:
        """All states obtained by assigning each of ``values`` to ``name``.

        Equivalent to ``tuple(self.assign(name=v) for v in values)`` but
        the schema lookup and tuple splitting happen once, not per value
        — this is the hot path of nondeterministic statements that range
        over a variable's domain (Byzantine decision changes, reads of
        unwritten memory)."""
        position = self._schema.index.get(name)
        if position is None:
            raise KeyError(
                f"cannot assign unknown variable {name!r}; "
                f"state variables are {list(self._schema.names)}"
            )
        schema = self._schema
        before = self._values[:position]
        after = self._values[position + 1:]
        return tuple(
            [_state_of(schema, before + (value,) + after) for value in values]
        )

    def extend(self, **new_variables: Hashable) -> "State":
        """Return a new state with additional variables.

        Unlike :meth:`assign`, this *adds* variables; it raises if a name
        already exists, to keep the two operations unambiguous.
        """
        index = self._schema.index
        for name in new_variables:
            if name in index:
                raise KeyError(f"variable {name!r} already present")
        combined = dict(zip(self._schema.names, self._values))
        combined.update(new_variables)
        return State(combined)

    def project(self, names: Iterable[str]) -> "State":
        """Projection of this state on the given variable names.

        Implements the paper's projection of a state of ``p'`` on ``p``:
        the state obtained by considering only the variables of ``p``.
        """
        schema, indices = self._schema.projection_plan(names)
        values = self._values
        return _state_of(schema, tuple(values[i] for i in indices))

    # -- dunder ------------------------------------------------------------
    def __hash__(self) -> int:
        found = self._hash
        if found is None:
            found = self._hash = hash((self._schema._hash, self._values))
        return found

    def __eq__(self, other: object) -> bool:
        if other is self:
            return True
        if isinstance(other, State):
            # schemas are interned: same variables <=> same schema object
            return (
                self._schema is other._schema
                and self._values == other._values
            )
        if isinstance(other, Mapping):
            return dict(self.items()) == dict(other)
        return NotImplemented

    def __reduce__(self):
        return (_state_of, (self._schema, self._values))

    def __repr__(self) -> str:
        body = ", ".join(
            f"{k}={v!r}" for k, v in zip(self._schema.names, self._values)
        )
        return f"State({body})"


class StateInterner:
    """Canonicalizes value-equal states to a single object.

    Exploration passes every successor through :meth:`canonical`, so the
    states stored in a transition system are pointer-distinct exactly
    when they are value-distinct — hash-table probes then short-circuit
    on identity and repeated successors cost one dict lookup instead of
    a fresh allocation held forever.

    The table is owned by whoever is exploring (not a process-global),
    so its lifetime — and the memory it pins — ends with the exploration
    that needed it.
    """

    __slots__ = ("_pool",)

    def __init__(self, seed: Iterable[State] = ()):
        self._pool: Dict[State, State] = {}
        for state in seed:
            self._pool.setdefault(state, state)

    def canonical(self, state: State) -> State:
        """The unique representative equal to ``state`` (inserting it if
        this is the first time the value is seen)."""
        found = self._pool.get(state)
        if found is None:
            self._pool[state] = state
            return state
        return found

    def canonical_many(self, states: Iterable[State]) -> List[State]:
        """Bulk :meth:`canonical`: representatives in input order.

        The pool probe is hoisted out of the per-state call, so the
        level-synchronous exploration engines can intern a whole
        frontier expansion in one pass instead of paying a method frame
        per successor.
        """
        pool = self._pool
        get = pool.get
        out: List[State] = []
        append = out.append
        for state in states:
            found = get(state)
            if found is None:
                pool[state] = found = state
            append(found)
        return out

    def __len__(self) -> int:
        return len(self._pool)

    def __contains__(self, state: State) -> bool:
        return state in self._pool


def state_space(variables: Sequence[Variable]) -> Iterator[State]:
    """Enumerate every state over ``variables`` (Cartesian product).

    The order is deterministic: the product is taken in the order the
    variables are given, each domain in its declared order.  Callers that
    only need reachable states should prefer
    :meth:`repro.core.exploration.TransitionSystem` which explores lazily.

    States are built through the schema fast path: one shared schema,
    one permutation computed up front, and a plain values-tuple per
    state — no per-state dict or sort.
    """
    names = [v.name for v in variables]
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate variable names in {names}")
    domains = [v.domain for v in variables]
    schema = Schema.of(names)
    position = {name: i for i, name in enumerate(names)}
    permutation = tuple(position[name] for name in schema.names)
    if permutation == tuple(range(len(names))):
        # variables already in schema order: product tuples are the values
        for combo in itertools.product(*domains):
            yield _state_of(schema, combo)
    else:
        reorder = operator.itemgetter(*permutation)
        for combo in itertools.product(*domains):
            yield _state_of(schema, reorder(combo))
