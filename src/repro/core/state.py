"""States, variables, and state spaces.

The paper defines a *program* over a set of variables, each with a
predefined nonempty domain, and a *state* as a value for each variable
(Section 2.1).  This module makes those definitions executable:

- :class:`Variable` declares a name and a finite domain.
- :class:`State` is an immutable, hashable assignment of values to
  variable names.  Immutability lets states serve as graph nodes and set
  members throughout the library.
- :func:`state_space` enumerates the full (finite) Cartesian state space
  of a collection of variables.
- :meth:`State.project` implements the paper's *projection* of a state of
  ``p'`` on ``p`` (Section 2.2.1): keep only the named variables.

Domains must be finite for the model-checking machinery to terminate;
they may contain any hashable values (ints, strings, tuples, frozensets,
or the :data:`BOTTOM` sentinel used by several example programs).
"""

from __future__ import annotations

import itertools
from typing import Dict, Hashable, Iterable, Iterator, Mapping, Sequence, Tuple

__all__ = ["BOTTOM", "Bottom", "Variable", "State", "state_space"]


class Bottom:
    """Singleton sentinel for the paper's undefined value ``⊥``.

    Several example programs (memory access, TMR, Byzantine agreement) use
    ``⊥`` to mean "not yet assigned".  A dedicated singleton keeps it
    distinct from every ordinary domain value, including ``None``.
    """

    _instance = None

    def __new__(cls) -> "Bottom":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "⊥"

    def __reduce__(self):
        return (Bottom, ())


BOTTOM = Bottom()


class Variable:
    """A program variable with a predefined, nonempty, finite domain.

    Parameters
    ----------
    name:
        Unique variable name within a program.
    domain:
        Iterable of the values the variable may take.  Must be nonempty;
        duplicates are removed while preserving order.
    """

    __slots__ = ("name", "domain")

    def __init__(self, name: str, domain: Iterable[Hashable]):
        values: Tuple[Hashable, ...] = tuple(dict.fromkeys(domain))
        if not values:
            raise ValueError(f"variable {name!r} must have a nonempty domain")
        self.name = name
        self.domain = values

    def __contains__(self, value: Hashable) -> bool:
        return value in self.domain

    def __repr__(self) -> str:
        return f"Variable({self.name!r}, domain={list(self.domain)!r})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Variable):
            return NotImplemented
        return self.name == other.name and self.domain == other.domain

    def __hash__(self) -> int:
        return hash((self.name, self.domain))


class State(Mapping[str, Hashable]):
    """An immutable assignment of values to variable names.

    ``State`` behaves as a read-only mapping and supports three styles of
    access::

        s = State(x=1, y=0)
        s["x"]            # mapping access
        s.assign(x=2)     # functional update -> new State
        s.project(["x"])  # projection on a subset of variables

    States compare equal iff they assign the same values to the same
    variables, and they hash consistently, so they can be used as nodes in
    transition graphs and as members of predicates-as-sets.
    """

    __slots__ = ("_items", "_hash")

    def __init__(self, mapping: Mapping[str, Hashable] = None, **values: Hashable):
        combined: Dict[str, Hashable] = {}
        if mapping is not None:
            combined.update(mapping)
        combined.update(values)
        self._items: Tuple[Tuple[str, Hashable], ...] = tuple(
            sorted(combined.items(), key=lambda kv: kv[0])
        )
        self._hash = hash(self._items)

    # -- Mapping protocol ------------------------------------------------
    def __getitem__(self, name: str) -> Hashable:
        for key, value in self._items:
            if key == name:
                return value
        raise KeyError(name)

    def __iter__(self) -> Iterator[str]:
        return (key for key, _ in self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __contains__(self, name: object) -> bool:
        return any(key == name for key, _ in self._items)

    # -- functional updates ----------------------------------------------
    def assign(self, **updates: Hashable) -> "State":
        """Return a new state with ``updates`` applied.

        Raises ``KeyError`` if an update names a variable absent from the
        state: silently introducing variables is almost always a bug in a
        program action.
        """
        current = dict(self._items)
        for name in updates:
            if name not in current:
                raise KeyError(
                    f"cannot assign unknown variable {name!r}; "
                    f"state variables are {sorted(current)}"
                )
        current.update(updates)
        return State(current)

    def extend(self, **new_variables: Hashable) -> "State":
        """Return a new state with additional variables.

        Unlike :meth:`assign`, this *adds* variables; it raises if a name
        already exists, to keep the two operations unambiguous.
        """
        current = dict(self._items)
        for name in new_variables:
            if name in current:
                raise KeyError(f"variable {name!r} already present")
        current.update(new_variables)
        return State(current)

    def project(self, names: Iterable[str]) -> "State":
        """Projection of this state on the given variable names.

        Implements the paper's projection of a state of ``p'`` on ``p``:
        the state obtained by considering only the variables of ``p``.
        """
        wanted = set(names)
        return State({k: v for k, v in self._items if k in wanted})

    # -- dunder ------------------------------------------------------------
    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: object) -> bool:
        if isinstance(other, State):
            return self._items == other._items
        if isinstance(other, Mapping):
            return dict(self._items) == dict(other)
        return NotImplemented

    def __repr__(self) -> str:
        body = ", ".join(f"{k}={v!r}" for k, v in self._items)
        return f"State({body})"


def state_space(variables: Sequence[Variable]) -> Iterator[State]:
    """Enumerate every state over ``variables`` (Cartesian product).

    The order is deterministic: the product is taken in the order the
    variables are given, each domain in its declared order.  Callers that
    only need reachable states should prefer
    :meth:`repro.core.exploration.TransitionSystem` which explores lazily.
    """
    names = [v.name for v in variables]
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate variable names in {names}")
    domains = [v.domain for v in variables]
    for combo in itertools.product(*domains):
        yield State(dict(zip(names, combo)))
