"""State predicates with a boolean algebra.

The paper works pervasively with *state predicates* — boolean expressions
over program variables — and identifies each predicate with the set of
states in which it holds (Section 2.1).  :class:`Predicate` captures both
views:

- intensionally, a predicate wraps a function ``State -> bool``;
- extensionally, :meth:`Predicate.from_states` builds a predicate from an
  explicit set of states, and :meth:`Predicate.states_in` evaluates a
  predicate over an iterable of states.

Predicates compose with the operators the paper uses: ``&`` (conjunction),
``|`` (disjunction), ``~`` (negation), and :meth:`implies`.  Every
predicate carries a human-readable name so that check results and
counterexamples remain legible.
"""

from __future__ import annotations

from typing import Callable, FrozenSet, Iterable, Iterator, Sequence, Set

from .state import Schema, State, _state_of

__all__ = ["Predicate", "TRUE", "FALSE", "var_eq", "var_ne", "var_in"]


class Predicate:
    """A state predicate: a named boolean function of a :class:`State`.

    Parameters
    ----------
    fn:
        Function evaluating the predicate at a state.
    name:
        Human-readable rendering, used in reprs, certificates, and
        counterexample explanations.
    """

    __slots__ = ("fn", "name", "values_builder")

    def __init__(
        self,
        fn: Callable[[State], bool],
        name: str = "pred",
        values_builder: Callable = None,
    ):
        self.fn = fn
        self.name = name
        #: Optional schema compiler: ``values_builder(schema.index)``
        #: returns an evaluator over raw values-tuples equivalent to
        #: ``fn`` on states of that schema.  Single-schema region sweeps
        #: (:meth:`repro.core.regions.StateIndex.region_bits`) use it to
        #: skip the per-state schema dispatch the ``fn`` wrapper needs.
        self.values_builder = values_builder

    # -- evaluation --------------------------------------------------------
    def __call__(self, state: State) -> bool:
        return bool(self.fn(state))

    def holds_everywhere(self, states: Iterable[State]) -> bool:
        """True iff the predicate holds at every given state."""
        return all(self(s) for s in states)

    def holds_somewhere(self, states: Iterable[State]) -> bool:
        """True iff the predicate holds at some given state."""
        return any(self(s) for s in states)

    def states_in(self, states: Iterable[State]) -> Iterator[State]:
        """Yield the states (from ``states``) at which the predicate holds."""
        return (s for s in states if self(s))

    # -- algebra -------------------------------------------------------------
    # combinators close over the operand *functions*, not the Predicate
    # objects: composed guards are evaluated once per (state, action)
    # pair during exploration, and the extra __call__ frame per operand
    # was measurable there.
    def __and__(self, other: "Predicate") -> "Predicate":
        return Predicate(
            lambda s, a=self.fn, b=other.fn: a(s) and b(s),
            name=f"({self.name} ∧ {other.name})",
        )

    def __or__(self, other: "Predicate") -> "Predicate":
        return Predicate(
            lambda s, a=self.fn, b=other.fn: a(s) or b(s),
            name=f"({self.name} ∨ {other.name})",
        )

    def __invert__(self) -> "Predicate":
        return Predicate(lambda s, a=self.fn: not a(s), name=f"¬{self.name}")

    def implies(self, other: "Predicate") -> "Predicate":
        """The predicate ``self ⇒ other`` (pointwise implication)."""
        return Predicate(
            lambda s, a=self.fn, b=other.fn: (not a(s)) or b(s),
            name=f"({self.name} ⇒ {other.name})",
        )

    def rename(self, name: str) -> "Predicate":
        """Return the same predicate under a new display name."""
        return Predicate(self.fn, name=name, values_builder=self.values_builder)

    def compile_for(self, schema: Schema) -> Callable[[Sequence], bool]:
        """An evaluator over raw values sequences of ``schema``.

        Schema-compiled predicates go through :attr:`values_builder`
        directly; others fall back to wrapping the values in a
        :class:`State`.  Either way the returned callable accepts any
        sequence in schema order (tuple or mutable list), which is what
        the region sweeps and the monitoring runtime's incremental
        evaluation both feed it.
        """
        if self.values_builder is not None:
            return self.values_builder(schema.index)
        fn = self.fn
        def evaluate(values, _schema=schema, _fn=fn):
            return bool(_fn(_state_of(_schema, tuple(values))))
        return evaluate

    # -- extensional view ------------------------------------------------
    @staticmethod
    def from_states(states: Iterable[State], name: str = "set") -> "Predicate":
        """Extensional predicate: true exactly on the given states."""
        frozen: FrozenSet[State] = frozenset(states)
        return Predicate(lambda s, ss=frozen: s in ss, name=name)

    def implied_everywhere_by(
        self, other: "Predicate", states: Iterable[State]
    ) -> bool:
        """True iff ``other ⇒ self`` holds at every state in ``states``."""
        return all(self(s) for s in states if other(s))

    def equivalent_on(self, other: "Predicate", states: Iterable[State]) -> bool:
        """True iff the two predicates agree on every state in ``states``."""
        return all(self(s) == other(s) for s in states)

    def __repr__(self) -> str:
        return f"Predicate({self.name})"


TRUE = Predicate(lambda s: True, name="true")
FALSE = Predicate(lambda s: False, name="false")


# the variable-comparison factories carry a values_builder so that
# region sweeps and detector banks evaluate them on raw values tuples
# without the State wrapper

def var_eq(name: str, value: object) -> Predicate:
    """Predicate ``name == value``."""
    return Predicate(
        lambda s: s[name] == value,
        name=f"{name}={value!r}",
        values_builder=lambda index, n=name, v=value: (
            lambda values, i=index[n]: values[i] == v
        ),
    )


def var_ne(name: str, value: object) -> Predicate:
    """Predicate ``name != value``."""
    return Predicate(
        lambda s: s[name] != value,
        name=f"{name}≠{value!r}",
        values_builder=lambda index, n=name, v=value: (
            lambda values, i=index[n]: values[i] != v
        ),
    )


def var_in(name: str, values: Iterable[object]) -> Predicate:
    """Predicate ``name ∈ values``."""
    allowed: Set[object] = set(values)
    return Predicate(
        lambda s: s[name] in allowed,
        name=f"{name}∈{sorted(map(repr, allowed))}",
        values_builder=lambda index, n=name, a=allowed: (
            lambda values, i=index[n]: values[i] in a
        ),
    )
