"""State predicates with a boolean algebra.

The paper works pervasively with *state predicates* — boolean expressions
over program variables — and identifies each predicate with the set of
states in which it holds (Section 2.1).  :class:`Predicate` captures both
views:

- intensionally, a predicate wraps a function ``State -> bool``;
- extensionally, :meth:`Predicate.from_states` builds a predicate from an
  explicit set of states, and :meth:`Predicate.states_in` evaluates a
  predicate over an iterable of states.

Predicates compose with the operators the paper uses: ``&`` (conjunction),
``|`` (disjunction), ``~`` (negation), and :meth:`implies`.  Every
predicate carries a human-readable name so that check results and
counterexamples remain legible.
"""

from __future__ import annotations

from typing import Callable, FrozenSet, Iterable, Iterator, Sequence, Set

from .state import Schema, State, _state_of

try:
    import numpy as _np
except ImportError:  # pragma: no cover - environment-dependent
    _np = None

__all__ = ["Predicate", "EvaluatorMemo", "TRUE", "FALSE",
           "var_eq", "var_ne", "var_in"]


def _compose_values(a, b, combine: str):
    """Compose two ``values_builder`` compilers under and/or (``None``
    when either operand is not schema-compilable)."""
    if a is None or b is None:
        return None
    if combine == "and":
        return lambda index, _a=a, _b=b: (
            lambda values, fa=_a(index), fb=_b(index): fa(values) and fb(values)
        )
    return lambda index, _a=a, _b=b: (
        lambda values, fa=_a(index), fb=_b(index): fa(values) or fb(values)
    )


def _compose_columns(a, b, combine: str):
    """Compose two ``columns_builder`` compilers under elementwise
    and/or over boolean mask arrays."""
    if a is None or b is None:
        return None
    if combine == "and":
        return lambda layout, _a=a, _b=b: (
            lambda cols, fa=_a(layout), fb=_b(layout): fa(cols) & fb(cols)
        )
    return lambda layout, _a=a, _b=b: (
        lambda cols, fa=_a(layout), fb=_b(layout): fa(cols) | fb(cols)
    )


class Predicate:
    """A state predicate: a named boolean function of a :class:`State`.

    Parameters
    ----------
    fn:
        Function evaluating the predicate at a state.
    name:
        Human-readable rendering, used in reprs, certificates, and
        counterexample explanations.
    """

    __slots__ = ("fn", "name", "values_builder", "columns_builder")

    def __init__(
        self,
        fn: Callable[[State], bool],
        name: str = "pred",
        values_builder: Callable = None,
        columns_builder: Callable = None,
    ):
        self.fn = fn
        self.name = name
        #: Optional schema compiler: ``values_builder(schema.index)``
        #: returns an evaluator over raw values-tuples equivalent to
        #: ``fn`` on states of that schema.  Single-schema region sweeps
        #: (:meth:`repro.core.regions.StateIndex.region_bits`) use it to
        #: skip the per-state schema dispatch the ``fn`` wrapper needs.
        self.values_builder = values_builder
        #: Optional columnar compiler: ``columns_builder(layout)`` (a
        #: :class:`repro.core.kernels.Layout`) returns an evaluator
        #: mapping a ``(vars, N)`` rank-column matrix — the encoding the
        #: batch exploration engine leaves on a system as
        #: ``_state_cols`` — to a length-``N`` boolean mask, equivalent
        #: to mapping ``fn`` over the decoded states.  Region sweeps use
        #: it to evaluate the predicate over every state in a handful of
        #: numpy operations instead of N Python calls.
        self.columns_builder = columns_builder

    # -- evaluation --------------------------------------------------------
    def __call__(self, state: State) -> bool:
        return bool(self.fn(state))

    def holds_everywhere(self, states: Iterable[State]) -> bool:
        """True iff the predicate holds at every given state."""
        return all(self(s) for s in states)

    def holds_somewhere(self, states: Iterable[State]) -> bool:
        """True iff the predicate holds at some given state."""
        return any(self(s) for s in states)

    def states_in(self, states: Iterable[State]) -> Iterator[State]:
        """Yield the states (from ``states``) at which the predicate holds."""
        return (s for s in states if self(s))

    # -- algebra -------------------------------------------------------------
    # combinators close over the operand *functions*, not the Predicate
    # objects: composed guards are evaluated once per (state, action)
    # pair during exploration, and the extra __call__ frame per operand
    # was measurable there.
    def __and__(self, other: "Predicate") -> "Predicate":
        return Predicate(
            lambda s, a=self.fn, b=other.fn: a(s) and b(s),
            name=f"({self.name} ∧ {other.name})",
            values_builder=_compose_values(
                self.values_builder, other.values_builder, "and"
            ),
            columns_builder=_compose_columns(
                self.columns_builder, other.columns_builder, "and"
            ),
        )

    def __or__(self, other: "Predicate") -> "Predicate":
        return Predicate(
            lambda s, a=self.fn, b=other.fn: a(s) or b(s),
            name=f"({self.name} ∨ {other.name})",
            values_builder=_compose_values(
                self.values_builder, other.values_builder, "or"
            ),
            columns_builder=_compose_columns(
                self.columns_builder, other.columns_builder, "or"
            ),
        )

    def __invert__(self) -> "Predicate":
        vb = self.values_builder
        cb = self.columns_builder
        return Predicate(
            lambda s, a=self.fn: not a(s),
            name=f"¬{self.name}",
            values_builder=None if vb is None else (
                lambda index, _a=vb: (
                    lambda values, fa=_a(index): not fa(values)
                )
            ),
            columns_builder=None if cb is None else (
                lambda layout, _a=cb: (
                    lambda cols, fa=_a(layout): ~fa(cols)
                )
            ),
        )

    def implies(self, other: "Predicate") -> "Predicate":
        """The predicate ``self ⇒ other`` (pointwise implication)."""
        return Predicate(
            lambda s, a=self.fn, b=other.fn: (not a(s)) or b(s),
            name=f"({self.name} ⇒ {other.name})",
            values_builder=_compose_values(
                None if self.values_builder is None else (
                    lambda index, _a=self.values_builder: (
                        lambda values, fa=_a(index): not fa(values)
                    )
                ),
                other.values_builder, "or",
            ),
            columns_builder=_compose_columns(
                None if self.columns_builder is None else (
                    lambda layout, _a=self.columns_builder: (
                        lambda cols, fa=_a(layout): ~fa(cols)
                    )
                ),
                other.columns_builder, "or",
            ),
        )

    def rename(self, name: str) -> "Predicate":
        """Return the same predicate under a new display name."""
        return Predicate(
            self.fn, name=name,
            values_builder=self.values_builder,
            columns_builder=self.columns_builder,
        )

    def compile_for(self, schema: Schema) -> Callable[[Sequence], bool]:
        """An evaluator over raw values sequences of ``schema``.

        Schema-compiled predicates go through :attr:`values_builder`
        directly; others fall back to wrapping the values in a
        :class:`State`.  Either way the returned callable accepts any
        sequence in schema order (tuple or mutable list), which is what
        the region sweeps and the monitoring runtime's incremental
        evaluation both feed it.
        """
        if self.values_builder is not None:
            return self.values_builder(schema.index)
        fn = self.fn
        def evaluate(values, _schema=schema, _fn=fn):
            return bool(_fn(_state_of(_schema, tuple(values))))
        return evaluate

    # -- extensional view ------------------------------------------------
    @staticmethod
    def from_states(states: Iterable[State], name: str = "set") -> "Predicate":
        """Extensional predicate: true exactly on the given states."""
        frozen: FrozenSet[State] = frozenset(states)
        return Predicate(lambda s, ss=frozen: s in ss, name=name)

    def implied_everywhere_by(
        self, other: "Predicate", states: Iterable[State]
    ) -> bool:
        """True iff ``other ⇒ self`` holds at every state in ``states``."""
        return all(self(s) for s in states if other(s))

    def equivalent_on(self, other: "Predicate", states: Iterable[State]) -> bool:
        """True iff the two predicates agree on every state in ``states``."""
        return all(self(s) == other(s) for s in states)

    def __repr__(self) -> str:
        return f"Predicate({self.name})"


class EvaluatorMemo(dict):
    """A compiled-evaluator cache a predicate closure may carry.

    Model predicates that compile a per-schema evaluator on first use
    keep the compiled plans in one of these instead of a plain ``dict``:
    content fingerprinting (:mod:`repro.store.keys`) treats an
    ``EvaluatorMemo`` closure cell as an opaque, empty marker, so the
    cache filling up never changes the predicate's content key.  A plain
    ``dict`` in a closure is fingerprinted by value — correct for
    configuration, key-drifting for caches."""

    __slots__ = ()


TRUE = Predicate(lambda s: True, name="true")
FALSE = Predicate(lambda s: False, name="false")


# the variable-comparison factories carry a values_builder so that
# region sweeps and detector banks evaluate them on raw values tuples
# without the State wrapper, and a columns_builder so that region
# sweeps over columnar-explored systems vectorize over rank columns

def _eq_columns(name: str, value: object):
    def build(layout):
        i = layout.index[name]
        # a value outside the declared domain matches no rank: rank -1
        # never occurs in a column, giving the correct all-False mask
        r = layout.ranks[i].get(value, -1)
        return lambda cols: cols[i] == r
    return build


def _ne_columns(name: str, value: object):
    def build(layout):
        i = layout.index[name]
        r = layout.ranks[i].get(value, -1)
        return lambda cols: cols[i] != r
    return build


def _in_columns(name: str, allowed: Set[object]):
    def build(layout):
        i = layout.index[name]
        lut = _np.zeros(layout.sizes[i], dtype=bool)
        for value, rank in layout.ranks[i].items():
            if value in allowed:
                lut[rank] = True
        return lambda cols: lut[cols[i]]
    return build


def var_eq(name: str, value: object) -> Predicate:
    """Predicate ``name == value``."""
    return Predicate(
        lambda s: s[name] == value,
        name=f"{name}={value!r}",
        values_builder=lambda index, n=name, v=value: (
            lambda values, i=index[n]: values[i] == v
        ),
        columns_builder=_eq_columns(name, value),
    )


def var_ne(name: str, value: object) -> Predicate:
    """Predicate ``name != value``."""
    return Predicate(
        lambda s: s[name] != value,
        name=f"{name}≠{value!r}",
        values_builder=lambda index, n=name, v=value: (
            lambda values, i=index[n]: values[i] != v
        ),
        columns_builder=_ne_columns(name, value),
    )


def var_in(name: str, values: Iterable[object]) -> Predicate:
    """Predicate ``name ∈ values``."""
    allowed: Set[object] = set(values)
    return Predicate(
        lambda s: s[name] in allowed,
        name=f"{name}∈{sorted(map(repr, allowed))}",
        values_builder=lambda index, n=name, a=allowed: (
            lambda values, i=index[n]: values[i] in a
        ),
        columns_builder=None if _np is None else _in_columns(name, allowed),
    )
