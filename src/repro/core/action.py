"""Guarded-command actions.

An action (Section 2.1) has a unique name and the form::

    <name> :: <guard>  -->  <statement>

The guard is a boolean expression over program variables (a
:class:`~repro.core.predicate.Predicate` here) and the statement atomically
updates zero or more variables.

Statements may be *deterministic* (one successor state) or
*nondeterministic* (a set of successor states).  Nondeterminism is needed
to model Byzantine behaviour — the paper's ``BYZ.j`` action lets a
Byzantine process "change its decision arbitrarily" — so an action's
semantics here is a function from a state to the tuple of possible next
states.

Helper constructors:

- :func:`assign` builds the common "set these variables to these values /
  expressions" statement.
- :func:`choose` builds a nondeterministic statement from alternatives.
- :meth:`Action.restrict` implements the paper's ``Z ∧ ac`` notation:
  strengthening the guard of an action by a state predicate.
"""

from __future__ import annotations

import operator
import weakref
from typing import (
    Callable,
    Dict,
    Hashable,
    Iterable,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from .predicate import Predicate, TRUE
from .state import State

__all__ = ["Statement", "Action", "assign", "choose", "skip"]

#: A statement maps a state to one successor (deterministic) or to an
#: iterable of successors (nondeterministic).
Statement = Callable[[State], Union[State, Iterable[State]]]


def assign(**updates: Union[Hashable, Callable[[State], Hashable]]) -> Statement:
    """Deterministic multiple-assignment statement.

    Values may be constants or callables evaluated on the *initial* state,
    matching the paper's atomic-update semantics (all right-hand sides read
    the pre-state)::

        assign(x=1, y=lambda s: s["x"] + 1)   # y gets old x + 1
    """

    if len(updates) == 1:
        # single-variable updates are the overwhelmingly common action
        # shape; resolve the name once and skip the kwargs packing
        [(name, value)] = updates.items()
        if callable(value):
            def statement(state: State) -> State:
                return state.assign_one(name, value(state))
        else:
            def statement(state: State) -> State:
                return state.assign_one(name, value)
        return statement

    def statement(state: State) -> State:
        resolved: Dict[str, Hashable] = {}
        for name, value in updates.items():
            resolved[name] = value(state) if callable(value) else value
        return state.assign(**resolved)

    return statement


def choose(*alternatives: Statement) -> Statement:
    """Nondeterministic choice among statements.

    Executing the action may produce any successor produced by any
    alternative.  Used for Byzantine actions and abstract environments.
    """

    def statement(state: State) -> Tuple[State, ...]:
        successors = []
        for alternative in alternatives:
            result = alternative(state)
            if isinstance(result, State):
                successors.append(result)
            else:
                successors.extend(result)
        return tuple(successors)

    return statement


def skip() -> Statement:
    """The statement that changes nothing (a stutter step)."""
    return lambda state: state


class Action:
    """A named guarded command.

    Parameters
    ----------
    name:
        Unique action name within a program.
    guard:
        Predicate enabling the action (Section 2.1 *Enabled*).
    statement:
        Deterministic or nondeterministic statement (see module docs).
    """

    __slots__ = ("name", "guard", "statement", "reads", "writes", "plan",
                 "_successors", "_class_memo", "_base", "_restriction",
                 "__weakref__")

    #: per-action successor memo stops growing past this many states
    SUCCESSOR_CACHE_LIMIT = 1 << 18

    #: every live action, so :meth:`clear_successor_caches` can reach the
    #: per-action memos (weak references: registration does not extend
    #: any action's lifetime)
    _instances: "weakref.WeakSet[Action]" = None  # set below

    def __init__(
        self,
        name: str,
        guard: Predicate,
        statement: Statement,
        reads: Optional[Iterable[str]] = None,
        writes: Optional[Iterable[str]] = None,
        plan=None,
    ):
        self.name = name
        self.guard = guard
        self.statement = statement
        #: Optional :class:`repro.core.kernels.Plan` — a flat positional
        #: description of the guard and assignment that batch kernels
        #: compile into whole-frontier evaluators.  Like ``reads`` and
        #: ``writes``, the plan is a *claim*: it must implement exactly
        #: the guard/statement semantics (kernel/interpreted parity is
        #: pinned by tests).  Actions without a plan simply take the
        #: interpreted ``successors`` path everywhere.
        self.plan = plan
        #: Optional frame declaration.  ``reads`` must cover every
        #: variable the guard or the statement's right-hand sides
        #: consult; ``writes`` every variable the statement may change.
        #: When both are declared, two states that agree outside
        #: ``writes - reads`` provably have identical successor sets, so
        #: the successor memo collapses them to one statement evaluation
        #: (a big win for actions that overwrite a large-domain variable
        #: they never read, e.g. nondeterministic domain sweeps).  An
        #: incorrect declaration silently corrupts the transition
        #: relation — declare only what the action text makes obvious.
        self.reads = frozenset(reads) if reads is not None else None
        self.writes = frozenset(writes) if writes is not None else None
        #: state -> tuple of successors.  Guards and statements are pure
        #: functions of the state (guarded-command semantics), so the
        #: transition relation of an action never changes and the
        #: synthesis/verification passes that sweep the same state space
        #: several times can replay it.  The cache dies with the action.
        self._successors: Dict[State, Tuple[State, ...]] = {}
        #: schema -> (key getter, {key: successors}); see reads/writes
        self._class_memo: Optional[Dict[object, Tuple]] = (
            {} if self.reads is not None and self.writes is not None
            else None
        )
        #: set by :meth:`restrict`: the unrestricted action and the
        #: restricting predicate, letting ``successors`` consult the
        #: base action's memo instead of re-running the statement
        self._base: "Action" = None
        self._restriction: Predicate = None
        Action._instances.add(self)

    def enabled(self, state: State) -> bool:
        """True iff the guard holds at ``state``."""
        # calling the predicate's function directly skips one call frame;
        # guards run once per (state, action) pair during exploration
        return bool(self.guard.fn(state))

    def successors(self, state: State) -> Tuple[State, ...]:
        """All states reachable by executing this action at ``state``.

        Returns the empty tuple when the action is disabled.  A
        deterministic statement yields a 1-tuple.  Results are memoized
        per state (actions are pure, see ``__init__``).
        """
        cache = self._successors
        found = cache.get(state)
        if found is not None:
            return found
        if self._base is not None:
            # restricted action: ``(Z ∧ g) --> st`` produces exactly the
            # base action's successors where Z holds and none elsewhere,
            # so reuse the base memo instead of re-running the statement
            result = (
                self._base.successors(state)
                if self._restriction.fn(state)
                else ()
            )
        elif self._class_memo is not None:
            result = self._class_successors(state)
        elif not self.guard.fn(state):
            result: Tuple[State, ...] = ()
        else:
            raw = self.statement(state)
            result = (raw,) if isinstance(raw, State) else tuple(raw)
        if len(cache) < self.SUCCESSOR_CACHE_LIMIT:
            cache[state] = result
        return result

    def _class_successors(self, state: State) -> Tuple[State, ...]:
        """Successor computation through the reads/writes declaration.

        States that agree on every variable outside ``writes - reads``
        have the same successor set: the overwritten variables do not
        influence the guard or the written values (they are not read)
        and do not survive into the successors (they are written)."""
        schema = state.schema
        plan = self._class_memo.get(schema)
        if plan is None:
            masked = self.writes - self.reads
            kept = tuple(
                i for i, name in enumerate(schema.names)
                if name not in masked
            )
            if len(kept) == len(schema.names):
                plan = (None, None)     # nothing masked: no sharing here
            else:
                plan = (operator.itemgetter(*kept) if kept else None, {})
            self._class_memo[schema] = plan
        getter, table = plan
        if table is None:
            if not self.guard.fn(state):
                return ()
            raw = self.statement(state)
            return (raw,) if isinstance(raw, State) else tuple(raw)
        key = getter(state.values_tuple) if getter is not None else ()
        found = table.get(key)
        if found is None:
            if not self.guard.fn(state):
                found = ()
            else:
                raw = self.statement(state)
                found = (raw,) if isinstance(raw, State) else tuple(raw)
            table[key] = found
        return found

    def restrict(self, predicate: Predicate) -> "Action":
        """The paper's ``Z ∧ ac``: the action ``Z ∧ g --> st``."""
        restricted = Action(
            name=self.name,
            guard=predicate & self.guard,
            statement=self.statement,
        )
        restricted._base = self
        restricted._restriction = predicate
        return restricted

    def renamed(self, name: str) -> "Action":
        """A copy of this action under a different name."""
        return Action(
            name=name, guard=self.guard, statement=self.statement,
            reads=self.reads, writes=self.writes, plan=self.plan,
        )

    def preserves(self, predicate: Predicate, states: Iterable[State]) -> bool:
        """Section 2.3 *Preserves*: executing the action in any state (from
        ``states``) where ``predicate`` holds yields only states where it
        holds."""
        for state in states:
            if not predicate(state):
                continue
            for successor in self.successors(state):
                if not predicate(successor):
                    return False
        return True

    @classmethod
    def clear_successor_caches(cls) -> None:
        """Drop every live action's successor and equivalence-class
        memos.  These are per-action (not process-global), so
        ``clear_system_cache`` cannot reach them; benchmark cold-start
        paths call this through
        :func:`repro.core.exploration.clear_all_caches`."""
        for action in list(cls._instances):
            action._successors.clear()
            if action._class_memo is not None:
                action._class_memo.clear()

    def __repr__(self) -> str:
        return f"Action({self.name} :: {self.guard.name} --> ...)"


Action._instances = weakref.WeakSet()


def _unique_names(actions: Sequence[Action]) -> None:
    names = [a.name for a in actions]
    if len(set(names)) != len(names):
        seen, dupes = set(), set()
        for name in names:
            (dupes if name in seen else seen).add(name)
        raise ValueError(f"duplicate action names: {sorted(dupes)}")
