"""Refinement: programs against specifications and against programs.

Section 2.2.1 defines ``p' refines SPEC from S`` as: *S is closed in p'*,
and every computation of ``p'`` starting in ``S`` projects into ``SPEC``.
On finite-state programs with component-form specifications this is
decidable, and :func:`refines_spec` decides it by exploring the reachable
transition system from the states satisfying ``S``.

``p' refines p from S`` (program-to-program refinement) is richer: the
projection of every ``p'``-computation on ``p``'s variables must itself
be a *computation* of ``p`` — i.e. every projected step is a step of
``p``, the projected sequence is maximal, and it is fair.
:func:`refines_program` decides this with four sub-checks:

1. **closure** — S is closed in ``p'``;
2. **simulation** — every reachable ``p'``-step from S either leaves
   ``p``'s variables unchanged (a stutter; only allowed when some step of
   ``p'`` will later change them, see 4) or projects to a step of some
   ``p``-action enabled at the projected state;
3. **maximality** — ``p'`` never deadlocks in a state whose projection
   still enables a ``p``-action (the projected sequence would fail
   p-maximality);
4. **non-divergence and projected fairness** — no fair computation of
   ``p'`` stutters forever while a ``p``-action remains enabled, and in
   every fair-recurrent SCC of ``p'`` each ``p``-action enabled
   throughout is actually simulated inside the SCC.  Both are decided at
   SCC granularity with the weak-fairness characterization of
   :mod:`repro.core.fairness`.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Set, Tuple

from .exploration import TransitionSystem, explored_system
from .fairness import fair_recurrent_sccs
from .predicate import Predicate
from .regions import system_index
from .program import Program
from .results import CheckResult, Counterexample, all_of
from .specification import Spec
from .state import State

__all__ = ["start_states_of", "system_from", "refines_spec", "refines_program",
           "violates_spec"]


def _certificates():
    """The certificate-store verdict layer, or ``None`` when no store is
    active (or the store package failed to import) — callers then simply
    compute.  Imported lazily so the core has no hard dependency on
    :mod:`repro.store`."""
    try:
        from ..store import backend as store_backend

        if store_backend.active_store() is None:
            return None
        from ..store import certificates

        return certificates
    except Exception:
        return None


def start_states_of(program: Program, predicate: Predicate) -> List[State]:
    """All states of ``program`` satisfying ``predicate`` (the paper's
    ``p | S`` start set), enumerated over the full state space (and
    memoized per (program, predicate) — see ``Program.states_satisfying``)."""
    return program.states_satisfying(predicate)


def system_from(
    program: Program,
    from_: Predicate,
    fault_actions: Sequence = (),
    max_states: int = 2_000_000,
    symmetric: bool = False,
) -> TransitionSystem:
    """Build the reachable transition system of ``program [] faults`` from
    the states satisfying ``from_`` (memoized; see :func:`explored_system`).

    ``symmetric=True`` builds the quotient under the program's declared
    symmetry; the caller must ensure ``from_`` is a union of orbits."""
    return explored_system(
        program,
        start_states_of(program, from_),
        fault_actions=fault_actions,
        max_states=max_states,
        symmetric=symmetric,
    )


def refines_spec(
    program: Program,
    spec: Spec,
    from_: Predicate,
    fault_actions: Sequence = (),
    ts: Optional[TransitionSystem] = None,
    description: Optional[str] = None,
    symmetric: bool = False,
) -> CheckResult:
    """Decide ``program refines spec from from_`` (Section 2.2.1).

    When ``fault_actions`` is nonempty this decides refinement of the
    composed system ``program [] F`` — safety components are checked over
    program *and* fault edges, liveness over program edges only
    (Assumption 2: finitely many fault occurrences).

    A prebuilt ``ts`` may be supplied to avoid re-exploration; it must
    have been built from ``from_`` with the same fault actions.

    ``symmetric=True`` decides the check over the quotient system; the
    verdict equals the full-system one provided ``spec`` and ``from_``
    are invariant under the declared group (the tolerance checkers
    validate this before opting in).
    """
    what = description or (
        f"{program.name}"
        + (" [] F" if fault_actions else "")
        + f" refines {spec.name} from {from_.name}"
    )
    if ts is not None:
        return _refines_spec_body(
            program, spec, from_, fault_actions, symmetric, what, ts=ts
        )

    def compute() -> CheckResult:
        return _refines_spec_body(
            program, spec, from_, fault_actions, symmetric, what
        )

    certs = None if symmetric else _certificates()
    if certs is None:
        return compute()
    try:
        family = certs.ObligationFamily(
            "refines_spec", program, tuple(fault_actions), [from_],
            spec=spec, extra=what,
        )
    except Exception:
        return compute()
    return certs.cached_obligation(family, compute)


def _refines_spec_body(
    program: Program,
    spec: Spec,
    from_: Predicate,
    fault_actions: Sequence,
    symmetric: bool,
    what: str,
    ts: Optional[TransitionSystem] = None,
) -> CheckResult:
    if ts is None:
        ts = system_from(program, from_, fault_actions, symmetric=symmetric)
    closed = ts.is_closed(from_, include_faults=False,
                          description=f"{from_.name} closed in {program.name}")
    if not closed:
        return CheckResult.failed(f"{what}: {closed.description}",
                                  counterexample=closed.counterexample)
    body = spec.check(ts, description=what)
    return body


def violates_spec(
    program: Program,
    spec: Spec,
    from_: Predicate,
    fault_actions: Sequence = (),
) -> CheckResult:
    """The paper's *violates*: passes iff refinement does **not** hold.

    The returned result's counterexample (when available from the failed
    refinement check) is attached as the witness of violation.
    """
    refinement = refines_spec(program, spec, from_, fault_actions)
    if refinement.ok:
        return CheckResult.failed(
            f"{program.name} violates {spec.name} from {from_.name}",
            details="program actually refines the specification",
        )
    return CheckResult(
        ok=True,
        description=f"{program.name} violates {spec.name} from {from_.name}",
        details=refinement.description,
        counterexample=refinement.counterexample,
    )


def refines_program(
    refined: Program,
    base: Program,
    from_: Predicate,
    allow_stuttering: bool = True,
    check_fairness: bool = True,
    ts: Optional[TransitionSystem] = None,
) -> CheckResult:
    """Decide ``refined refines base from from_`` (program refinement).

    See the module docstring for exactly what is checked.  ``refined``
    must contain every variable of ``base``.
    """
    what = f"{refined.name} refines {base.name} from {from_.name}"
    base_vars = set(base.variable_names)
    missing = base_vars - set(refined.variable_names)
    if missing:
        return CheckResult.failed(
            what, details=f"refined program lacks base variables {sorted(missing)}"
        )

    if ts is None:
        ts = system_from(refined, from_)

    closed = ts.is_closed(from_, include_faults=False)
    if not closed:
        return CheckResult.failed(f"{what}: closure", counterexample=closed.counterexample)

    # 2. simulation of every projected step
    for source in ts.states:
        base_source = source.project(base_vars)
        for action_name, target in ts.program_edges_from(source):
            base_target = target.project(base_vars)
            if base_target == base_source:
                if allow_stuttering:
                    continue
                return CheckResult.failed(
                    what,
                    counterexample=Counterexample(
                        kind="transition", states=(source, target),
                        actions=(action_name,),
                        note="stuttering step not allowed",
                    ),
                )
            if not _is_base_step(base, base_source, base_target):
                return CheckResult.failed(
                    what,
                    counterexample=Counterexample(
                        kind="transition", states=(source, target),
                        actions=(action_name,),
                        note=(
                            f"projected step {base_source!r} -> {base_target!r} "
                            f"is not a step of {base.name}"
                        ),
                    ),
                )

    # 3. maximality of the projection
    for state in ts.states:
        if ts.program.is_deadlocked(state):
            projected = state.project(base_vars)
            enabled = [a.name for a in base.actions if a.enabled(projected)]
            if enabled:
                return CheckResult.failed(
                    what,
                    counterexample=Counterexample(
                        kind="state", states=(state,),
                        note=(
                            f"{refined.name} deadlocks but base actions "
                            f"{enabled} are enabled in the projection "
                            f"(projected computation not maximal)"
                        ),
                    ),
                )

    if check_fairness:
        fairness = _check_projected_liveness(ts, base, base_vars, what)
        if not fairness:
            return fairness

    return CheckResult.passed(what)


# -- internals ---------------------------------------------------------------

def _is_base_step(base: Program, source: State, target: State) -> bool:
    """True iff some action of ``base`` can take ``source`` to ``target``."""
    for action in base.actions:
        if target in action.successors(source):
            return True
    return False


def _check_projected_liveness(
    ts: TransitionSystem, base: Program, base_vars: Set[str], what: str
) -> CheckResult:
    """Maximality and fairness of the projection, at SCC granularity.

    A fair computation of the refined program can linger forever exactly
    in the fair-recurrent SCCs of its transition graph.  For each such
    SCC ``C`` the projected state sequence must still be a fair maximal
    computation of the base program, which fails in two ways:

    1. **divergence past a deadlock** — the projection of ``C`` is a
       single base state ``u`` at which no base action is enabled: the
       projected sequence repeats a deadlocked state forever, which no
       execution of the base program produces (an infinite repetition of
       ``u`` requires a base action that maps ``u`` to ``u``);
    2. **unfair projection** — some base action is enabled at the
       projection of *every* state of ``C`` yet no internal edge of ``C``
       can be explained as an execution of that action (note that an edge
       whose projection leaves the base state unchanged *does* simulate a
       base action that can self-loop there).

    The test is at SCC granularity: a fair run confined to a strict
    subset of an SCC is attributed to the SCC as a whole.  This is exact
    whenever enabledness of each base action is uniform across the SCC —
    which holds in all programs in this library — and is otherwise a
    sound violation-finding approximation (documented in DESIGN.md).
    """
    region = system_index(ts).full_region()
    for component in fair_recurrent_sccs(ts, region):
        projections = {s.project(base_vars) for s in component}
        if len(projections) == 1:
            (projected,) = projections
            if not any(a.enabled(projected) for a in base.actions):
                witness = next(iter(component))
                return CheckResult.failed(
                    what,
                    counterexample=Counterexample(
                        kind="lasso", states=(witness,), loop_index=0,
                        note=(
                            "projection stutters forever at a state where "
                            f"{base.name} is deadlocked (projected sequence "
                            "is not maximal)"
                        ),
                    ),
                )
        internal = [
            (s, a, t)
            for s in component
            for a, t in ts.program_edges_from(s)
            if t in component
        ]
        for base_action in base.actions:
            if not all(
                base_action.enabled(s.project(base_vars)) for s in component
            ):
                continue
            simulated = any(
                t.project(base_vars)
                in base_action.successors(s.project(base_vars))
                for s, _, t in internal
            )
            if not simulated:
                witness = next(iter(component))
                return CheckResult.failed(
                    what,
                    counterexample=Counterexample(
                        kind="lasso", states=(witness,), loop_index=0,
                        note=(
                            f"base action {base_action.name!r} continuously "
                            f"enabled in projection but never simulated in a "
                            f"fair cycle (projection unfair)"
                        ),
                    ),
                )
    return CheckResult.passed(what)
