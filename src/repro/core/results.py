"""Check results: certificates and counterexamples.

Every verification entry point in this library returns a
:class:`CheckResult` rather than a bare boolean.  A passing result carries
a human-readable description of *what was established*; a failing result
carries a :class:`Counterexample` explaining *why* — a bad state, a bad
transition, a finite trace, or a lasso (stem + fair cycle) for liveness
violations.

This mirrors the paper's methodological stance: invariants and tolerance
claims are only useful when accompanied by the evidence that justifies
them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence, Tuple

from .state import State

__all__ = ["Counterexample", "CheckResult", "all_of"]


@dataclass(frozen=True)
class Counterexample:
    """Evidence that a check failed.

    Attributes
    ----------
    kind:
        One of ``"state"``, ``"transition"``, ``"trace"``, ``"lasso"``.
    states:
        The states involved.  For a lasso this is the stem followed by the
        cycle (the cycle portion is ``states[loop_index:]``).
    actions:
        Action names labelling the steps between consecutive states (one
        shorter than ``states`` for traces, empty for state evidence).
    loop_index:
        For lassos, index in ``states`` where the cycle begins.
    note:
        Free-form explanation.
    """

    kind: str
    states: Tuple[State, ...]
    actions: Tuple[str, ...] = ()
    loop_index: Optional[int] = None
    note: str = ""

    def __str__(self) -> str:
        lines = [f"counterexample ({self.kind}): {self.note}".rstrip()]
        for i, state in enumerate(self.states):
            marker = " ↻" if self.loop_index is not None and i == self.loop_index else ""
            lines.append(f"  [{i}]{marker} {state!r}")
            if i < len(self.actions):
                lines.append(f"      --{self.actions[i]}-->")
        return "\n".join(lines)


@dataclass(frozen=True)
class CheckResult:
    """Outcome of a verification check.

    Truthy iff the check passed; failing results explain themselves via
    ``counterexample`` and ``details``.
    """

    ok: bool
    description: str
    details: str = ""
    counterexample: Optional[Counterexample] = None

    def __bool__(self) -> bool:
        return self.ok

    @staticmethod
    def passed(description: str, details: str = "") -> "CheckResult":
        return CheckResult(ok=True, description=description, details=details)

    @staticmethod
    def failed(
        description: str,
        counterexample: Optional[Counterexample] = None,
        details: str = "",
    ) -> "CheckResult":
        return CheckResult(
            ok=False,
            description=description,
            details=details,
            counterexample=counterexample,
        )

    def expect(self) -> "CheckResult":
        """Raise ``AssertionError`` with full evidence if the check failed.

        Convenient in examples and benchmarks where a failure should abort
        loudly rather than be silently ignored.
        """
        if not self.ok:
            raise AssertionError(str(self))
        return self

    def __str__(self) -> str:
        status = "PASS" if self.ok else "FAIL"
        parts = [f"[{status}] {self.description}"]
        if self.details:
            parts.append(f"  {self.details}")
        if self.counterexample is not None:
            parts.append(str(self.counterexample))
        return "\n".join(parts)


def all_of(results: Iterable[CheckResult], description: str = "all checks") -> CheckResult:
    """Conjoin results: passes iff every result passes; reports the first
    failure verbatim (with its counterexample)."""
    materialized: Sequence[CheckResult] = list(results)
    for result in materialized:
        if not result.ok:
            return CheckResult(
                ok=False,
                description=f"{description}: {result.description}",
                details=result.details,
                counterexample=result.counterexample,
            )
    detail_lines = "; ".join(r.description for r in materialized)
    return CheckResult.passed(description, details=detail_lines)
