"""Dense state indexing and big-int bitset regions.

Every verification verdict in this library reduces to fixpoints over
sets of states — the largest closed safe subset (``gfp``), the
fault-unsafe region ``ms`` (Theorem 3.3), forward/backward reachability
closures, and the fair-SCC analysis behind Progress and Convergence.
Computing those fixpoints over ``set[State]`` re-hashes full state
objects on every membership test and rescans the whole universe on
every pass.  This module supplies the representation the fixpoints run
on instead:

- :class:`StateIndex` assigns dense integer ids to a fixed, finite
  state universe (either a program's full state space, shared
  process-wide across programs with identical variable signatures, or
  the reachable states of one :class:`TransitionSystem`), and exposes
  CSR-style per-action successor adjacency over those ids — a tuple of
  id-tuples, one row per state, memoized per action object;
- :class:`Region` is a subset of an index's states backed by one
  arbitrary-precision Python int used as a bitset: union /
  intersection / difference / complement and popcount are single
  O(words) big-int operations at C speed, membership is an O(1) byte
  probe, and iteration touches only the set bits;
- :class:`SystemIndex` is the per-:class:`TransitionSystem` variant
  (cached on the system object), with successor and predecessor
  adjacency split by program vs. fault edges, recorded deadlocks, and
  memoized per-predicate satisfying regions and per-action enabledness
  regions;
- the worklist fixpoints themselves: :func:`backward_closure_ids`,
  :func:`largest_closed_subset_bits` — O(V+E) over precomputed
  predecessor lists instead of O(V²·A) universe rescans.

Invalidation: all objects here describe immutable inputs (programs,
actions, and transition systems are never mutated after construction),
so nothing can go stale.  The process-wide universe table is dropped by
:func:`clear_universe_cache`, which `Program.clear_state_caches` (and
hence ``exploration.clear_system_cache``) calls; a ``SystemIndex`` dies
with its transition system.  See ``docs/performance.md``.
"""

from __future__ import annotations

import gc
from collections import deque
from contextlib import contextmanager
from typing import (
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from .predicate import Predicate, TRUE
from .state import State, Variable, state_space

try:
    import numpy as _np
except ImportError:  # pragma: no cover - environment-dependent
    _np = None

__all__ = [
    "Region",
    "StateIndex",
    "SystemIndex",
    "bits_of_ids",
    "iter_bits",
    "first_bit",
    "paused_gc",
    "universe_index",
    "system_index",
    "clear_universe_cache",
]


@contextmanager
def paused_gc():
    """Suspend generational GC for a bulk-allocation pass.

    A large explored system keeps hundreds of thousands of gc-tracked
    objects (States, labelled-edge tuples) alive; every young-generation
    overflow during a bulk tuple/list build triggers collections that
    rescan that standing graph, multiplying the build's cost several
    times over.  The passes wrapped here allocate no reference cycles,
    so deferring collection is safe.  Nesting is harmless — an inner
    pause sees GC already disabled and leaves re-enabling to the
    outermost exit."""
    was_enabled = gc.isenabled()
    if was_enabled:
        gc.disable()
    try:
        yield
    finally:
        if was_enabled:
            gc.enable()


# -- bit twiddling ------------------------------------------------------------

def bits_of_ids(ids: Iterable[int], n: int) -> int:
    """Pack integer ids into a bitset (built via a bytearray, so the
    construction is O(n/8 + len(ids)), never quadratic big-int shifts)."""
    buf = bytearray((n + 7) >> 3)
    for i in ids:
        buf[i >> 3] |= 1 << (i & 7)
    return int.from_bytes(buf, "little")


def iter_bits(bits: int, n: int) -> Iterator[int]:
    """Yield the set bit positions of ``bits`` in ascending order.

    Two regimes, picked by density.  Sparse masks (at most half the
    positions set — the common shape in fixpoint worklists, frontier
    sets, and counterexample probes) peel bits directly off the big int
    via ``bits & -bits`` / ``bit_length``: O(popcount) iterations with
    no O(n/8) snapshot of mostly-empty bytes.  Dense masks fall back to
    scanning a byte snapshot, which touches each byte once instead of
    re-normalizing an enormous int per extracted bit.
    """
    if bits.bit_count() * 2 <= n:
        while bits:
            low = bits & -bits
            yield low.bit_length() - 1
            bits ^= low
        return
    data = bits.to_bytes((n + 7) >> 3, "little")
    for base, byte in enumerate(data):
        if byte:
            base8 = base << 3
            while byte:
                low = byte & -byte
                yield base8 + low.bit_length() - 1
                byte ^= low


def first_bit(bits: int) -> int:
    """Position of the lowest set bit (``bits`` must be nonzero)."""
    return (bits & -bits).bit_length() - 1


def _unpack_bits(bits: int, n: int):
    """Big-int bitset -> numpy boolean mask of length ``n``."""
    return _np.unpackbits(
        _np.frombuffer(
            bits.to_bytes((n + 7) >> 3, "little"), dtype=_np.uint8
        ),
        bitorder="little",
    )[:n].astype(bool)


def _pack_bits(mask) -> int:
    """numpy boolean mask -> big-int bitset."""
    return int.from_bytes(
        _np.packbits(mask, bitorder="little").tobytes(), "little"
    )


def _data_to_mask(data: bytes, n: int):
    """Little-endian bitset bytes -> numpy boolean mask of length ``n``."""
    return _np.unpackbits(
        _np.frombuffer(data, dtype=_np.uint8), bitorder="little"
    )[:n].astype(bool)


#: adjacency of one action over an index: (per-state tuples of successor
#: ids, sparse map of state id -> successors that fall outside the index)
ActionEdges = Tuple[Tuple[Tuple[int, ...], ...], Dict[int, Tuple[State, ...]]]


class Region:
    """A subset of a :class:`StateIndex`'s states as a big-int bitset.

    Immutable; the boolean operators build new regions over the same
    index.  ``len`` is a popcount, ``in`` is a byte probe on a lazily
    materialized byte view of the bits.
    """

    __slots__ = ("index", "bits", "_data")

    def __init__(self, index: "StateIndex", bits: int):
        self.index = index
        self.bits = bits
        self._data: Optional[bytes] = None

    # -- algebra (single big-int ops, O(words)) ---------------------------
    def __and__(self, other: "Region") -> "Region":
        return Region(self.index, self.bits & other.bits)

    def __or__(self, other: "Region") -> "Region":
        return Region(self.index, self.bits | other.bits)

    def __sub__(self, other: "Region") -> "Region":
        return Region(self.index, self.bits & ~other.bits)

    def __invert__(self) -> "Region":
        return Region(self.index, self.index.full_bits & ~self.bits)

    def __len__(self) -> int:
        return self.bits.bit_count()

    def __bool__(self) -> bool:
        return self.bits != 0

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Region)
            and self.index is other.index
            and self.bits == other.bits
        )

    def __hash__(self) -> int:
        return hash((id(self.index), self.bits))

    # -- membership and iteration ----------------------------------------
    def data(self) -> bytes:
        """The bits as little-endian bytes (cached; used for O(1) probes)."""
        if self._data is None:
            self._data = self.bits.to_bytes((self.index.n + 7) >> 3, "little")
        return self._data

    def __contains__(self, state: State) -> bool:
        i = self.index.id_of.get(state)
        if i is None:
            return False
        return bool(self.data()[i >> 3] & (1 << (i & 7)))

    def ids(self) -> Iterator[int]:
        return iter_bits(self.bits, self.index.n)

    def states(self) -> Iterator[State]:
        states = self.index.states
        return (states[i] for i in self.ids())

    def to_set(self) -> set:
        return set(self.states())

    def to_predicate(self, name: str = "region") -> Predicate:
        return Predicate.from_states(self.states(), name=name)

    def __repr__(self) -> str:
        return f"Region({len(self)}/{self.index.n} states)"


class StateIndex:
    """Dense integer ids over a fixed universe of states.

    ``states`` is deduplicated in first-seen order; ``id_of`` inverts
    it.  Satisfying sets, satisfying regions, and per-action adjacency
    are memoized by object identity (predicates and actions are
    immutable, so identity keys can never go stale).
    """

    __slots__ = (
        "states", "n", "full_bits", "_id_of",
        "_satisfying", "_region_bits", "_edges",
        "_schema", "_id_of_values", "_layout", "_cols",
    )

    def __init__(
        self,
        states: Iterable[State],
        _distinct: bool = False,
        layout=None,
    ):
        """``_distinct=True`` promises the states are already unique
        (e.g. a Cartesian-product enumeration) and skips the dedup pass
        — hashing tens of thousands of ``State`` objects is a measurable
        share of index construction.

        ``layout`` is an optional :class:`repro.core.kernels.Layout`
        covering every indexed state; when given, predicates carrying a
        ``columns_builder`` sweep a lazily built rank-column matrix in a
        few numpy operations instead of one Python call per state."""
        states = tuple(states)
        if not _distinct:
            states = tuple(dict.fromkeys(states))
        self.states: Tuple[State, ...] = states
        self.n = len(states)
        self.full_bits = (1 << self.n) - 1
        self._id_of: Optional[Dict[State, int]] = None
        self._satisfying: Dict[Predicate, Tuple[State, ...]] = {}
        self._region_bits: Dict[Predicate, int] = {}
        self._edges: Dict[object, ActionEdges] = {}
        # When every state shares one (interned) schema, successors can
        # be resolved through a values-tuple table, skipping the
        # Python-level State.__hash__/__eq__ of a fresh successor object.
        schema = states[0].schema if states else None
        if schema is not None and all(s.schema is schema for s in states):
            self._schema = schema
        else:
            self._schema = None
        self._id_of_values: Optional[Dict[Tuple, int]] = None
        self._layout = layout if self._schema is not None else None
        #: lazily built (vars, n) rank-column matrix in id order
        self._cols = None

    def _columns(self):
        """The rank-column matrix of the indexed states (lazy), or
        ``None`` when no layout was supplied or numpy is absent."""
        layout = self._layout
        if layout is None or _np is None:
            return None
        cols = self._cols
        if cols is None:
            try:
                cols = layout.columns_from_states(self.states)
            except KeyError:
                # a state value escaped its declared domain; columnar
                # sweeps cannot represent it
                self._layout = None
                return None
            self._cols = cols
        return cols

    @property
    def id_of(self) -> Dict[State, int]:
        """``State -> id`` (built lazily: the hot paths key by values
        tuple and never need it)."""
        mapping = self._id_of
        if mapping is None:
            mapping = self._id_of = {
                s: i for i, s in enumerate(self.states)
            }
        return mapping

    def _values_table(self) -> Optional[Dict[Tuple, int]]:
        """``values_tuple -> id`` for single-schema indices (lazy)."""
        if self._schema is None:
            return None
        table = self._id_of_values
        if table is None:
            table = self._id_of_values = {
                s.values_tuple: i for i, s in enumerate(self.states)
            }
        return table

    # -- predicates -------------------------------------------------------
    def satisfying(self, predicate: Predicate) -> Tuple[State, ...]:
        """The universe states where ``predicate`` holds (memoized per
        predicate object; the module-level ``TRUE`` needs no sweep).

        Routed through :meth:`region_bits` so one fused sweep fills the
        states *and* bits memos — whichever is asked for first."""
        cached = self._satisfying.get(predicate)
        if cached is None:
            if predicate is TRUE:
                cached = self._satisfying[predicate] = self.states
            else:
                self.region_bits(predicate)
                cached = self._satisfying[predicate]
        return cached

    def region_bits(self, predicate: Predicate) -> int:
        cached = self._region_bits.get(predicate)
        if cached is None:
            if predicate is TRUE:
                cached = self.full_bits
            elif (
                predicate.columns_builder is not None
                and self._columns() is not None
            ):
                # columnar sweep: evaluate over rank columns in a few
                # vector operations, then derive both memos
                mask = predicate.columns_builder(self._layout)(self._columns())
                states = self.states
                self._satisfying[predicate] = tuple(
                    states[i] for i in _np.flatnonzero(mask).tolist()
                )
                cached = _pack_bits(mask)
            else:
                # one fused sweep fills both memos without id lookups
                buf = bytearray((self.n + 7) >> 3)
                hits: List[State] = []
                builder = predicate.values_builder
                if builder is not None and self._schema is not None:
                    # schema-compiled predicate on a single-schema
                    # index: compile once, sweep raw values-tuples
                    vfn = builder(self._schema.index)
                    for i, s in enumerate(self.states):
                        if vfn(s._values):
                            buf[i >> 3] |= 1 << (i & 7)
                            hits.append(s)
                else:
                    fn = predicate.fn
                    for i, s in enumerate(self.states):
                        if fn(s):
                            buf[i >> 3] |= 1 << (i & 7)
                            hits.append(s)
                self._satisfying[predicate] = tuple(hits)
                cached = int.from_bytes(buf, "little")
            self._region_bits[predicate] = cached
        return cached

    def region(self, predicate: Predicate) -> Region:
        return Region(self, self.region_bits(predicate))

    def region_of(self, states: Iterable[State]) -> Region:
        """A region from explicit states (ignoring any outside the index)."""
        id_of = self.id_of
        ids = (id_of[s] for s in states if s in id_of)
        return Region(self, bits_of_ids(ids, self.n))

    def full_region(self) -> Region:
        return Region(self, self.full_bits)

    # -- adjacency --------------------------------------------------------
    def action_edges(self, action) -> ActionEdges:
        """Per-state successor ids of ``action`` over this index.

        Successors that fall outside the index (possible when the index
        covers only part of a program's space) are returned in the
        sparse side table so fixpoints can treat them exactly.  Memoized
        per action object; ``action.successors`` is itself memoized, so
        rebuilding an index costs dictionary hits, not guard evaluation.
        """
        cached = self._edges.get(action)
        if cached is None:
            schema = self._schema
            id_of_values = self._values_table()
            id_of = self.id_of if schema is None else None
            rows: List[Tuple[int, ...]] = []
            extern: Dict[int, Tuple[State, ...]] = {}
            successors = action.successors
            # actions with a reads/writes frame declaration return the
            # *same* successor tuple for every state of an equivalence
            # class, so translation to ids is memoized by tuple identity
            # (``keep`` pins the keyed tuples for the loop's duration)
            translated: Dict[int, Tuple[Tuple[int, ...], Tuple[State, ...]]] = {}
            keep: List[Tuple[State, ...]] = []
            # direct slot reads (State._schema / State._values) — this
            # loop touches every successor the model can produce and the
            # property indirection was measurable
            for i, state in enumerate(self.states):
                nxts = successors(state)
                if not nxts:
                    rows.append(())
                    continue
                hit = translated.get(id(nxts))
                if hit is None:
                    row: List[int] = []
                    out: List[State] = []
                    for nxt in nxts:
                        if nxt._schema is schema:
                            j = id_of_values.get(nxt._values)
                        elif id_of is not None:
                            j = id_of.get(nxt)
                        else:
                            # single-schema index: a different schema means
                            # the successor cannot be one of our states
                            j = None
                        if j is None:
                            out.append(nxt)
                        else:
                            row.append(j)
                    hit = (tuple(row), tuple(out))
                    translated[id(nxts)] = hit
                    keep.append(nxts)
                rows.append(hit[0])
                if hit[1]:
                    extern[i] = hit[1]
            cached = (tuple(rows), extern)
            self._edges[action] = cached
        return cached

    def derive_restricted_edges(
        self, restricted, base, allowed_data: bytes
    ) -> ActionEdges:
        """Seed the adjacency of ``restricted`` (= ``Z ∧ base``) from the
        base action's rows gated by the bit array of ``Z``.

        ``Z ∧ g --> st`` has exactly the base action's successors at
        states where ``Z`` holds and none elsewhere, so the synthesis
        pipeline can install restricted adjacency without re-running a
        single guard or statement.
        """
        cached = self._edges.get(restricted)
        if cached is None:
            rows, extern = self.action_edges(base)
            cached = (
                tuple(
                    row if allowed_data[u >> 3] & (1 << (u & 7)) else ()
                    for u, row in enumerate(rows)
                ),
                {
                    u: out
                    for u, out in extern.items()
                    if allowed_data[u >> 3] & (1 << (u & 7))
                },
            )
            self._edges[restricted] = cached
        return cached

    def predecessor_lists(
        self, actions: Sequence
    ) -> List[List[int]]:
        """Merged predecessor adjacency (lists of source ids per target
        id) over the given actions' edges within the index."""
        preds: List[List[int]] = [[] for _ in range(self.n)]
        for action in actions:
            rows, _ = self.action_edges(action)
            for u, row in enumerate(rows):
                for v in row:
                    preds[v].append(u)
        return preds

    def __repr__(self) -> str:
        return f"StateIndex({self.n} states)"


# -- worklist fixpoints -------------------------------------------------------

def backward_closure_ids(
    preds: List[List[int]],
    seed_data: bytearray,
    seed_ids: Iterable[int],
    within_data: Optional[bytes] = None,
) -> bytearray:
    """Close ``seed`` under predecessors (optionally confined to
    ``within``), mutating and returning ``seed_data``.

    ``seed_data`` must already have the seed bits set; ``seed_ids`` are
    the ids to start the worklist from.  O(V+E) — each edge is looked at
    once, via the precomputed predecessor lists.
    """
    worklist = deque(seed_ids)
    while worklist:
        v = worklist.popleft()
        for u in preds[v]:
            k, b = u >> 3, 1 << (u & 7)
            if seed_data[k] & b:
                continue
            if within_data is not None and not within_data[k] & b:
                continue
            seed_data[k] |= b
            worklist.append(u)
    return seed_data


def largest_closed_subset_bits(
    index: StateIndex,
    actions: Sequence,
    good_bits: int,
    transition_checks: Sequence[Callable[[State, State], bool]] = (),
) -> int:
    """The largest subset of ``good_bits`` closed under ``actions`` whose
    internal transitions all pass ``transition_checks``.

    This is the greatest fixpoint behind ``largest_invariant_for_safety``
    as a backward worklist: seed the removed set with ¬good, states with
    a transition failing a check, and states with a successor escaping
    the index; then propagate removal along predecessor edges (a state
    is removed as soon as any successor is).  Each edge is scanned once.
    """
    n = index.n
    states = index.states
    removed = bytearray((n + 7) >> 3)
    worklist: deque = deque()
    for i in iter_bits(index.full_bits & ~good_bits, n):
        removed[i >> 3] |= 1 << (i & 7)
        worklist.append(i)

    preds: List[List[int]] = [[] for _ in range(n)]
    for action in actions:
        rows, extern = index.action_edges(action)
        for u, row in enumerate(rows):
            for v in row:
                preds[v].append(u)
            if transition_checks and row:
                source = states[u]
                for v in row:
                    if not all(
                        check(source, states[v])
                        for check in transition_checks
                    ):
                        k, b = u >> 3, 1 << (u & 7)
                        if not removed[k] & b:
                            removed[k] |= b
                            worklist.append(u)
                        break
        for u in extern:
            # a successor outside the index can never be in the subset
            k, b = u >> 3, 1 << (u & 7)
            if not removed[k] & b:
                removed[k] |= b
                worklist.append(u)

    backward_closure_ids(preds, removed, list(worklist))
    return index.full_bits & ~int.from_bytes(removed, "little")


# -- per-system index ---------------------------------------------------------

class SystemIndex:
    """Dense ids plus split adjacency for one :class:`TransitionSystem`.

    Ids follow the system's deterministic BFS discovery order, so
    "first set bit" matches "first state an order-sensitive sweep of
    ``ts.states`` would have found" — counterexamples are unchanged.
    Built lazily field by field; cached on the system object by
    :func:`system_index` (transition systems are immutable, so the
    index can never go stale and dies with the system).
    """

    __slots__ = (
        "ts", "states", "id_of", "n", "full_bits",
        "_plabeled", "_flabeled", "_psucc", "_apred", "_deadlock_bits",
        "_satisfying", "_region_bits", "_region_data", "_enabled_data",
        "_shared_schema", "_csr", "_enabled_by_name",
    )

    def __init__(self, ts):
        self.ts = ts
        self.states: Tuple[State, ...] = tuple(ts.states)
        # level-synchronous exploration accumulates the dense-id
        # adjacency (and the id map) as it assembles each frontier
        # level; adopt it rather than re-deriving ids per edge
        rows = getattr(ts, "_labeled_rows", None)
        if rows is not None:
            prows, frows, id_of = rows
            self._plabeled = tuple(prows)
            self._flabeled = tuple(frows)
            self.id_of: Dict[State, int] = id_of
        else:
            self._plabeled = None
            self._flabeled = None
            self.id_of = {s: i for i, s in enumerate(self.states)}
        self.n = len(self.states)
        self.full_bits = (1 << self.n) - 1
        #: per-state deduplicated program successor ids
        self._psucc: Optional[Tuple[Tuple[int, ...], ...]] = None
        #: predecessor lists over *all* (program + fault) edges
        self._apred: Optional[List[List[int]]] = None
        self._deadlock_bits: Optional[int] = None
        self._satisfying: Dict[Predicate, Tuple[State, ...]] = {}
        self._region_bits: Dict[Predicate, int] = {}
        self._region_data: Dict[Predicate, bytes] = {}
        self._enabled_data: Dict[object, bytes] = {}
        #: the one Schema every state shares (False = mixed, None = not
        #: yet computed); schema-compiled predicate sweeps need it
        self._shared_schema = None
        #: include_faults -> (indptr, dst, act, names) columnar edge
        #: views (see :meth:`_edge_csr`)
        self._csr: Dict[bool, Optional[tuple]] = {}
        #: action name -> enabled bitmap derived from recorded program
        #: edges in one sweep (valid for planned actions only)
        self._enabled_by_name: Optional[Dict[str, bytearray]] = None

    # -- adjacency (lazy) --------------------------------------------------
    @property
    def plabeled(self) -> Tuple[Tuple[Tuple[str, int], ...], ...]:
        if self._plabeled is None:
            id_of = self.id_of
            ts = self.ts
            self._plabeled = tuple(
                tuple((a, id_of[t]) for a, t in ts.program_edges_from(s))
                for s in self.states
            )
        return self._plabeled

    @property
    def flabeled(self) -> Tuple[Tuple[Tuple[str, int], ...], ...]:
        if self._flabeled is None:
            id_of = self.id_of
            ts = self.ts
            self._flabeled = tuple(
                tuple((a, id_of[t]) for a, t in ts.fault_edges_from(s))
                for s in self.states
            )
        return self._flabeled

    @property
    def psucc(self) -> Tuple[Tuple[int, ...], ...]:
        """Deduplicated program-successor ids per state (SCC fodder).

        The CSR program rows are plabeled's rows verbatim, so slicing a
        flat ``dst`` list through ``indptr`` yields the same successor
        sequences without a Python-level pass over every edge tuple."""
        if self._psucc is None:
            with paused_gc():
                csr = self._edge_csr(False)
                if csr is not None:
                    indptr = csr[0].tolist()
                    dst = csr[1].tolist()
                    self._psucc = tuple(
                        tuple(dict.fromkeys(dst[indptr[u]:indptr[u + 1]]))
                        for u in range(self.n)
                    )
                else:
                    self._psucc = tuple(
                        tuple(dict.fromkeys(t for _, t in row))
                        for row in self.plabeled
                    )
        return self._psucc

    @property
    def apred(self) -> List[List[int]]:
        """Predecessor lists over program and fault edges."""
        if self._apred is None:
            with paused_gc():
                preds: List[List[int]] = [[] for _ in range(self.n)]
                for u, row in enumerate(self.plabeled):
                    for _, v in row:
                        preds[v].append(u)
                for u, row in enumerate(self.flabeled):
                    for _, v in row:
                        preds[v].append(u)
                self._apred = preds
        return self._apred

    @property
    def deadlock_bits(self) -> int:
        """States with no program edge — per the recorded-edge convention
        of ``TransitionSystem.deadlock_states``, exactly the states where
        no program action is enabled."""
        if self._deadlock_bits is None:
            self._deadlock_bits = bits_of_ids(
                (u for u, row in enumerate(self.plabeled) if not row), self.n
            )
        return self._deadlock_bits

    # -- predicates --------------------------------------------------------
    def _schema(self):
        """The schema shared by every indexed state, or ``False``."""
        shared = self._shared_schema
        if shared is None:
            states = self.states
            shared = states[0]._schema if states else False
            if shared is not False:
                for state in states:
                    if state._schema is not shared:
                        shared = False
                        break
            self._shared_schema = shared
        return shared

    def _columns(self):
        """The ``(layout, rank-column matrix)`` pair the columnar
        exploration engine left on the system, or ``None`` (absent for
        interpreted/bucket explorations and store-reassembled graphs)."""
        state_cols = getattr(self.ts, "_state_cols", None)
        if state_cols is None or _np is None:
            return None
        if state_cols[1].shape[1] != self.n:  # pragma: no cover - defensive
            return None
        return state_cols

    def satisfying(self, predicate: Predicate) -> Tuple[State, ...]:
        cached = self._satisfying.get(predicate)
        if cached is None:
            if predicate is TRUE:
                cached = self.states
            else:
                bits = self._region_bits.get(predicate)
                if bits is None and predicate.columns_builder is not None:
                    pair = self._columns()
                    if pair is not None:
                        layout, cols = pair
                        mask = predicate.columns_builder(layout)(cols)
                        bits = _pack_bits(mask)
                        self._region_bits[predicate] = bits
                if bits is not None:
                    # derive from the (columnar or previously computed)
                    # bitset: ascending id order equals state order
                    states = self.states
                    cached = tuple(
                        states[i] for i in iter_bits(bits, self.n)
                    )
                else:
                    # schema-compiled predicates sweep raw values-tuples,
                    # skipping the per-state State wrapper dispatch
                    evaluate = None
                    if predicate.values_builder is not None:
                        schema = self._schema()
                        if schema is not False:
                            evaluate = predicate.values_builder(schema.index)
                    if evaluate is not None:
                        cached = tuple(
                            s for s in self.states if evaluate(s._values)
                        )
                    else:
                        cached = tuple(filter(predicate.fn, self.states))
            self._satisfying[predicate] = cached
        return cached

    def region_bits(self, predicate: Predicate) -> int:
        cached = self._region_bits.get(predicate)
        if cached is None:
            if predicate is TRUE:
                cached = self.full_bits
            elif (
                predicate.columns_builder is not None
                and predicate not in self._satisfying
                and self._columns() is not None
            ):
                layout, cols = self._columns()
                cached = _pack_bits(
                    predicate.columns_builder(layout)(cols)
                )
            else:
                id_of = self.id_of
                cached = bits_of_ids(
                    (id_of[s] for s in self.satisfying(predicate)), self.n
                )
            self._region_bits[predicate] = cached
        return cached

    def region_data(self, predicate: Predicate) -> bytes:
        cached = self._region_data.get(predicate)
        if cached is None:
            cached = self.region_bits(predicate).to_bytes(
                (self.n + 7) >> 3, "little"
            )
            self._region_data[predicate] = cached
        return cached

    def region_of(self, states: Iterable[State]) -> Region:
        id_of = self.id_of
        ids = (id_of[s] for s in states if s in id_of)
        return Region(self, bits_of_ids(ids, self.n))  # type: ignore[arg-type]

    def full_region(self) -> Region:
        return Region(self, self.full_bits)  # type: ignore[arg-type]

    def enabled_data(self, action) -> bytes:
        """Bit array of states where ``action``'s guard holds (memoized
        per action object).

        Planned program actions skip the guard sweep entirely: a plan
        certifies the action is a deterministic assignment, so its guard
        holds at a state exactly when exploration recorded an edge
        labelled by it — and one pass over the recorded program edges
        yields the bitmaps of *every* such action at once."""
        cached = self._enabled_data.get(action)
        if cached is None:
            if (
                getattr(action, "plan", None) is not None
                and action.name not in self.ts.fault_action_names
            ):
                by_name = self._enabled_by_name
                if by_name is None:
                    by_name = {}
                    for i, row in enumerate(self.plabeled):
                        bit = 1 << (i & 7)
                        for a, _ in row:
                            buf = by_name.get(a)
                            if buf is None:
                                buf = by_name[a] = bytearray(
                                    (self.n + 7) >> 3
                                )
                            buf[i >> 3] |= bit
                    self._enabled_by_name = by_name
                recorded = by_name.get(action.name)
                cached = (
                    bytes(recorded) if recorded is not None
                    else bytes((self.n + 7) >> 3)
                )
            else:
                buf = bytearray((self.n + 7) >> 3)
                guard = action.guard.fn
                for i, state in enumerate(self.states):
                    if guard(state):
                        buf[i >> 3] |= 1 << (i & 7)
                cached = bytes(buf)
            self._enabled_data[action] = cached
        return cached

    # -- columnar edge views ----------------------------------------------
    def _edge_csr(self, include_faults: bool):
        """Edge arrays ``(indptr, dst, act, names)`` sorted by (source,
        program-before-fault, declaration order) — exactly the order the
        scalar sweeps visit edges — or ``None`` when the exploration
        engine did not leave columnar arrays behind.  ``indptr[u]`` to
        ``indptr[u+1]`` delimits state ``u``'s edges; ``names[act[j]]``
        labels edge ``j``."""
        cached = self._csr.get(include_faults)
        if cached is None and include_faults not in self._csr:
            cached = None
            arrays = getattr(self.ts, "_edge_arrays", None)
            if arrays is not None and _np is not None:
                (p_src, p_dst, p_act), (f_src, f_dst, f_act), names_p, \
                    names_f = arrays
                if include_faults and f_src.shape[0]:
                    order = _np.argsort(
                        _np.concatenate((p_src * 2, f_src * 2 + 1)),
                        kind="stable",
                    )
                    src = _np.concatenate((p_src, f_src))[order]
                    dst = _np.concatenate((p_dst, f_dst))[order]
                    act = _np.concatenate(
                        (p_act, f_act + len(names_p))
                    )[order]
                else:
                    src, dst, act = p_src, p_dst, p_act
                indptr = _np.searchsorted(
                    src, _np.arange(self.n + 1, dtype=_np.int64)
                )
                cached = (indptr, dst, act, names_p + names_f)
            self._csr[include_faults] = cached
        return cached

    def first_escaping_edge(
        self, region_bits: int, include_faults: bool
    ) -> Optional[Tuple[int, str, int]]:
        """The first recorded edge whose source lies in the region and
        whose target does not, as ``(source id, action name, target
        id)`` — ``None`` when the region is closed.  "First" follows the
        scalar sweep order (ascending source id, program rows before
        fault rows), so counterexamples are engine-independent."""
        csr = self._edge_csr(include_faults)
        if csr is not None:
            indptr, dst, act, names = csr
            region = _unpack_bits(region_bits, self.n)
            bad = _np.repeat(region, _np.diff(indptr)) & ~region[dst]
            if not bad.any():
                return None
            j = int(_np.argmax(bad))
            u = int(_np.searchsorted(indptr, j, side="right")) - 1
            return u, names[int(act[j])], int(dst[j])
        data = region_bits.to_bytes((self.n + 7) >> 3, "little")
        for u in iter_bits(region_bits, self.n):
            rows = self.plabeled[u]
            if include_faults:
                rows += self.flabeled[u]
            for a, v in rows:
                if not data[v >> 3] & (1 << (v & 7)):
                    return u, a, v
        return None

    # -- closures ----------------------------------------------------------
    def forward_closure_bits(
        self, start_bits: int, within_bits: int, include_faults: bool = True
    ) -> int:
        """States reachable from ``start ∩ within`` along edges staying in
        ``within`` (program edges, plus fault edges by default)."""
        n = self.n
        csr = self._edge_csr(include_faults)
        if csr is not None:
            indptr_l = csr[0].tolist()
            dst = csr[1]
            within = _unpack_bits(within_bits, n)
            seen = _unpack_bits(start_bits, n) & within
            frontier = _np.flatnonzero(seen)
            while frontier.size:
                parts = [
                    dst[indptr_l[u]:indptr_l[u + 1]]
                    for u in frontier.tolist()
                ]
                vs = _np.concatenate(parts)
                fresh = _np.unique(vs[~seen[vs] & within[vs]])
                seen[fresh] = True
                frontier = fresh
            return _pack_bits(seen)
        within_data = within_bits.to_bytes((n + 7) >> 3, "little")
        seen = bytearray((n + 7) >> 3)
        worklist = deque()
        for i in iter_bits(start_bits & within_bits, n):
            seen[i >> 3] |= 1 << (i & 7)
            worklist.append(i)
        plabeled = self.plabeled
        flabeled = self.flabeled if include_faults else None
        while worklist:
            u = worklist.popleft()
            rows = plabeled[u] if flabeled is None else plabeled[u] + flabeled[u]
            for _, v in rows:
                k, b = v >> 3, 1 << (v & 7)
                if seen[k] & b or not within_data[k] & b:
                    continue
                seen[k] |= b
                worklist.append(v)
        return int.from_bytes(seen, "little")

    def __repr__(self) -> str:
        return f"SystemIndex({self.n} states)"


# -- caches -------------------------------------------------------------------

#: variable signature -> shared full-space StateIndex.  Two programs with
#: the same (name, domain) tuple sequence enumerate the same state space
#: in the same order, so they share one index — and with it the
#: enumeration cost and every per-predicate satisfying sweep done with a
#: shared predicate object (e.g. a model's span used by both its
#: fail-safe and masking variants).
_UNIVERSE_CACHE: Dict[Tuple, StateIndex] = {}
_UNIVERSE_CACHE_MAXSIZE = 32


def universe_index(program) -> Optional[StateIndex]:
    """The shared full-state-space index for ``program``, or ``None``
    when the space exceeds ``Program.STATE_CACHE_LIMIT`` (such spaces
    are never materialized — callers must fall back to lazy scans)."""
    if program.state_count() > program.STATE_CACHE_LIMIT:
        return None
    signature = tuple((v.name, v.domain) for v in program.variables)
    index = _UNIVERSE_CACHE.get(signature)
    if index is None:
        with paused_gc():
            # bulk-allocating a full state space under a standing graph
            # otherwise triggers generational collections that rescan
            # everything already explored
            states = tuple(state_space(program.variables))
            layout = None
            if states and _np is not None:
                from . import kernels as _kernels
                layout = _kernels.layout_for(
                    states[0].schema, program._domains
                )
            index = StateIndex(states, _distinct=True, layout=layout)
        _UNIVERSE_CACHE[signature] = index
        if len(_UNIVERSE_CACHE) > _UNIVERSE_CACHE_MAXSIZE:
            _UNIVERSE_CACHE.pop(next(iter(_UNIVERSE_CACHE)))
    return index


def clear_universe_cache() -> None:
    """Drop every shared full-space index (and with them all memoized
    satisfying sets and adjacency rows built on top)."""
    _UNIVERSE_CACHE.clear()


def system_index(ts) -> SystemIndex:
    """The (lazily built, cached) :class:`SystemIndex` of ``ts``."""
    index = getattr(ts, "_region_index", None)
    if index is None:
        index = SystemIndex(ts)
        ts._region_index = index
    return index
