"""Invariants and detection predicates.

Two calculations underpin both the theory (Section 3.2) and the synthesis
methods (the companion work [4]):

1. **Invariant computation.**  An invariant of ``p`` for SPEC is a
   predicate ``S`` such that ``p`` refines SPEC from ``S``.  One
   canonical invariant is the set of states reachable from designated
   start states (:func:`reachable_invariant`); the paper notes that
   *larger* invariants are often methodologically preferable, and
   :func:`largest_invariant_for_safety` computes the largest predicate
   from which a safety specification is refined (greatest fixpoint:
   remove bad states and states with an escaping transition until
   stable).

2. **Weakest detection predicates.**  Theorem 3.3 shows that for each
   action there exists a predicate from which executing the action
   maintains SPEC; :func:`weakest_detection_predicate` computes the
   *weakest* one for transition-level safety specs: the set of states
   where the state itself is unobjectionable and every successor the
   action can produce keeps the specification.  Detection predicates are
   closed under disjunction and weakening-into (if ``X ⇒ sf`` and ``sf``
   is a detection predicate, so is ``X``) — properties the test suite
   validates directly.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional, Sequence, Set

from .action import Action
from .exploration import TransitionSystem, explored_system
from .predicate import Predicate
from .program import Program
from .regions import Region, StateIndex, largest_closed_subset_bits, universe_index
from .specification import Spec, StateInvariant, TransitionInvariant
from .state import State

__all__ = [
    "reachable_invariant",
    "largest_invariant_for_safety",
    "weakest_detection_predicate",
    "is_detection_predicate",
]


def reachable_invariant(
    program: Program,
    start_states: Iterable[State],
    name: str = "reach",
) -> Predicate:
    """The predicate "reachable from ``start_states`` under ``program``".

    Always closed in the program, hence an invariant candidate.
    """
    ts = explored_system(program, tuple(start_states))
    return Predicate.from_states(ts.states, name=name)


def _safety_checks(spec: Spec):
    """Extract (state predicate, transition relation) checkers from the
    safety components of a component-form spec."""
    state_checks: List[Callable[[State], bool]] = []
    transition_checks: List[Callable[[State, State], bool]] = []
    for component in spec.components:
        if isinstance(component, StateInvariant):
            # raw predicate function: these checks run per state per
            # sweep in every synthesis pass, so skip the __call__ frame
            state_checks.append(component.predicate.fn)
        elif isinstance(component, TransitionInvariant):
            transition_checks.append(component.relation)
        elif component.kind == "safety":  # pragma: no cover - future kinds
            raise TypeError(
                f"unsupported safety component {type(component).__name__}"
            )
    return state_checks, transition_checks


def _successors_allowed(
    state: State,
    successors: Iterable[State],
    state_checks: Sequence[Callable[[State], bool]],
    transition_checks: Sequence[Callable[[State, State], bool]],
    forbidden=None,
) -> bool:
    """The "every successor is allowed" scan shared by the detection-
    predicate calculations here and by ``synthesis/weakest.py``: every
    successor must be an allowed state, reached by an allowed
    transition, and (when ``forbidden`` is given — any container with
    membership) outside the forbidden region."""
    for successor in successors:
        if forbidden is not None and successor in forbidden:
            return False
        if not all(check(successor) for check in state_checks):
            return False
        if not all(check(state, successor) for check in transition_checks):
            return False
    return True


def largest_invariant_for_safety(
    program: Program,
    spec: Spec,
    name: Optional[str] = None,
) -> Predicate:
    """Greatest fixpoint: the largest predicate ``S`` such that ``S`` is
    closed in ``program`` and every computation from ``S`` satisfies the
    safety part of ``spec``.

    Computed over the full state space: start from the states that are
    not themselves bad, then remove states having some transition that
    is bad or leaves the current set.  (Transitions *leaving* the
    candidate set must be removed because closure of ``S`` is part of
    the paper's definition of refinement from ``S``.)  The fixpoint runs
    as a backward bitset worklist over the program's indexed adjacency —
    O(V+E) — instead of rescanning the candidate set until stable.
    """
    state_checks, transition_checks = _safety_checks(spec.safety_part())
    index = universe_index(program) or StateIndex(program.states())
    good_bits = _passing_bits(index, state_checks)
    closed_bits = largest_closed_subset_bits(
        index, program.actions, good_bits, transition_checks
    )
    return Region(index, closed_bits).to_predicate(
        name or f"gfp_safe({spec.name})"
    )


def _passing_bits(index: StateIndex, state_checks) -> int:
    """Bits of the index states passing every state check."""
    if not state_checks:
        return index.full_bits
    buf = bytearray((index.n + 7) >> 3)
    for i, state in enumerate(index.states):
        if all(check(state) for check in state_checks):
            buf[i >> 3] |= 1 << (i & 7)
    return int.from_bytes(buf, "little")


def weakest_detection_predicate(
    action: Action,
    spec: Spec,
    states: Iterable[State],
    name: Optional[str] = None,
) -> Predicate:
    """The weakest detection predicate of ``action`` for the safety part
    of ``spec`` (Theorem 3.3 / the *detection predicate* definition).

    A state belongs iff it is not itself bad and every successor the
    action can produce from it is an allowed state reached by an allowed
    transition.  States where the action is disabled belong trivially
    (executing a disabled action is a no-op in guarded-command
    semantics, so it vacuously maintains the specification).
    """
    state_checks, transition_checks = _safety_checks(spec.safety_part())
    good: List[State] = []
    for state in states:
        if not all(check(state) for check in state_checks):
            continue
        if _successors_allowed(
            state, action.successors(state), state_checks, transition_checks
        ):
            good.append(state)
    return Predicate.from_states(
        good, name=name or f"wdp({action.name},{spec.name})"
    )


def is_detection_predicate(
    predicate: Predicate,
    action: Action,
    spec: Spec,
    states: Iterable[State],
) -> bool:
    """True iff executing ``action`` in any state satisfying ``predicate``
    maintains the safety part of ``spec``."""
    state_checks, transition_checks = _safety_checks(spec.safety_part())
    for state in states:
        if not predicate(state):
            continue
        if not all(check(state) for check in state_checks):
            return False
        if not _successors_allowed(
            state, action.successors(state), state_checks, transition_checks
        ):
            return False
    return True
