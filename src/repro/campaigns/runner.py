"""The campaign engine: N seeded trials of one scenario.

A :class:`Scenario` packages a network factory with the two global
predicates that define the paper's tolerance classes for it (safety and
legitimacy) and a :class:`~repro.campaigns.schedules.ScheduleSpec`
bounding what faults a trial may suffer.  A :class:`Campaign` runs
``trials`` independent trials, each with:

- its own derived RNG seeds (one for the network, one for the fault
  schedule) — the whole campaign is a pure function of the master seed;
- two :class:`~repro.sim.monitors.PredicateMonitor` observers whose
  transitions stream into the JSONL log;
- a per-trial wall-clock timeout, enforced between event batches;
- crash containment: a trial that raises is recorded with
  ``outcome="error"`` and the campaign continues — a failing trial is
  data, not a crash.

This is chaos testing in the detectors/correctors vocabulary: rather
than certifying tolerance over *all* computations (the model checker's
job, :mod:`repro.core`), a campaign samples the fault-schedule space
and reports how often each tolerance class was actually observed.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, IO, List, Optional

from ..sim.monitors import GlobalPredicate, PredicateMonitor
from ..sim.network import Network
from .classify import TrialMetrics, campaign_verdict, classify_trial
from .report import CampaignLog, format_verdict, summarize
from .schedules import ScheduleSpec, random_schedule

__all__ = [
    "ScenarioInstance",
    "Scenario",
    "TrialRecord",
    "CampaignResult",
    "Campaign",
    "TrialTimeout",
]

#: trace-event kinds that are fault occurrences (channel reconfigurations
#: — loss bursts starting/ending — leave no trace event; their planned
#: windows are logged with the schedule at trial start)
FAULT_EVENT_KINDS = ("crash", "restart", "corrupt", "tamper")


class TrialTimeout(Exception):
    """A trial exceeded its wall-clock budget."""


@dataclass
class ScenarioInstance:
    """One trial's freshly-built world: the network plus the two
    predicates classified against.  Predicates may be stateful closures
    (e.g. progress detectors comparing successive samples), which is
    why instances are rebuilt per trial."""

    network: Network
    safety: GlobalPredicate
    legitimacy: GlobalPredicate


@dataclass(frozen=True)
class Scenario:
    """A campaign-able workload: factory + predicates + fault envelope."""

    name: str
    description: str
    build: Callable[[int], ScenarioInstance]   #: seed -> fresh instance
    spec: ScheduleSpec
    horizon: float
    sample_period: float = 0.5


@dataclass(frozen=True)
class TrialRecord:
    """One trial's outcome, as retained in the campaign result."""

    trial: int
    network_seed: int
    schedule_seed: int
    metrics: TrialMetrics
    sim_time: float = 0.0
    error: Optional[str] = None

    @property
    def outcome(self) -> str:
        return self.metrics.outcome


@dataclass
class CampaignResult:
    """All trials plus the aggregate summary."""

    scenario: str
    trials: List[TrialRecord]
    summary: Dict[str, Any]

    @property
    def verdict(self) -> str:
        return self.summary["verdict"]

    def outcomes(self) -> List[str]:
        return [record.outcome for record in self.trials]

    def format(self) -> str:
        return format_verdict(self.summary)


def derive_seed(master: int, trial: int, role: int) -> int:
    """Deterministic per-trial seed derivation (no global randomness):
    distinct (trial, role) pairs get distinct streams for any master."""
    return (master * 1_000_003 + trial * 2 + role) & 0x7FFFFFFF


class Campaign:
    """Run ``trials`` independent seeded trials of ``scenario``.

    ``budget`` / ``horizon`` override the scenario's defaults;
    ``trial_timeout`` is a per-trial wall-clock limit in seconds
    (None = unlimited); ``stream`` receives the JSONL event log.
    """

    #: events simulated between wall-clock timeout checks
    BATCH_EVENTS = 4096

    def __init__(
        self,
        scenario: Scenario,
        trials: int = 20,
        seed: int = 0,
        budget: Optional[int] = None,
        horizon: Optional[float] = None,
        trial_timeout: Optional[float] = None,
        stream: Optional[IO[str]] = None,
    ):
        self.scenario = scenario
        self.trials = trials
        self.seed = seed
        self.horizon = horizon if horizon is not None else scenario.horizon
        spec = scenario.spec.with_horizon(self.horizon)
        if budget is not None:
            spec = spec.with_budget(budget)
        self.spec = spec
        self.trial_timeout = trial_timeout
        self.log = CampaignLog(stream)

    # -- driving ---------------------------------------------------------------
    def run(self) -> CampaignResult:
        self.log.emit(
            "campaign_start",
            scenario=self.scenario.name,
            description=self.scenario.description,
            trials=self.trials,
            seed=self.seed,
            horizon=self.horizon,
            budget=self.spec.budget,
            fault_kinds=list(self.spec.kinds()),
        )
        records: List[TrialRecord] = []
        for trial in range(self.trials):
            records.append(self._run_one(trial))
        verdict = campaign_verdict([r.outcome for r in records])
        summary = summarize(
            self.scenario.name, verdict, [r.metrics for r in records]
        )
        self.log.emit("campaign_end", summary=summary)
        self.log.close()
        return CampaignResult(
            scenario=self.scenario.name, trials=records, summary=summary
        )

    def _run_one(self, trial: int) -> TrialRecord:
        network_seed = derive_seed(self.seed, trial, 0)
        schedule_seed = derive_seed(self.seed, trial, 1)
        started = time.perf_counter()
        try:
            record = self._run_trial(trial, network_seed, schedule_seed)
        except TrialTimeout:
            record = TrialRecord(
                trial=trial,
                network_seed=network_seed,
                schedule_seed=schedule_seed,
                metrics=TrialMetrics(outcome="timeout"),
                error=f"exceeded trial timeout of {self.trial_timeout}s",
            )
        except Exception as exc:  # crash containment: a failing trial is data
            record = TrialRecord(
                trial=trial,
                network_seed=network_seed,
                schedule_seed=schedule_seed,
                metrics=TrialMetrics(outcome="error"),
                error=f"{type(exc).__name__}: {exc}",
            )
        wall_ms = (time.perf_counter() - started) * 1000.0
        self.log.emit(
            "trial_end",
            trial=trial,
            **record.metrics.as_dict(),
            sim_time=record.sim_time,
            error=record.error,
            wall_ms=round(wall_ms, 3),
        )
        return record

    def _run_trial(
        self, trial: int, network_seed: int, schedule_seed: int
    ) -> TrialRecord:
        instance = self.scenario.build(network_seed)
        network = instance.network
        schedule = random_schedule(self.spec, schedule_seed)
        self.log.emit(
            "trial_start",
            trial=trial,
            network_seed=network_seed,
            schedule_seed=schedule_seed,
            faults=schedule.describe(),
        )
        schedule.arm(network)

        def observer(monitor_name: str):
            def on_transition(at: float, value: bool) -> None:
                self.log.emit(
                    "transition",
                    trial=trial,
                    monitor=monitor_name,
                    time=at,
                    value=value,
                )

            return on_transition

        safety = PredicateMonitor(
            network,
            instance.safety,
            period=self.scenario.sample_period,
            horizon=self.horizon,
            name="safety",
            on_transition=observer("safety"),
        )
        legitimacy = PredicateMonitor(
            network,
            instance.legitimacy,
            period=self.scenario.sample_period,
            horizon=self.horizon,
            name="legitimacy",
            on_transition=observer("legitimacy"),
        )

        sim_time = self._drive(network)
        for event in network.events():
            if event.kind in FAULT_EVENT_KINDS:
                self.log.emit(
                    "fault",
                    trial=trial,
                    time=event.time,
                    kind=event.kind,
                    process=event.process,
                )
        metrics = classify_trial(safety, legitimacy, schedule.onset_times())
        return TrialRecord(
            trial=trial,
            network_seed=network_seed,
            schedule_seed=schedule_seed,
            metrics=metrics,
            sim_time=sim_time,
        )

    def _drive(self, network: Network) -> float:
        """Run to the horizon in batches, enforcing the wall-clock
        timeout between batches (the kernel itself is uninterruptible)."""
        deadline = (
            time.perf_counter() + self.trial_timeout
            if self.trial_timeout is not None
            else None
        )
        while True:
            now = network.run(until=self.horizon, max_events=self.BATCH_EVENTS)
            if now >= self.horizon or network.simulator.pending() == 0:
                return now
            if deadline is not None and time.perf_counter() > deadline:
                raise TrialTimeout()
