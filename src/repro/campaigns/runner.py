"""The campaign engine: N seeded trials of one scenario.

A :class:`Scenario` packages a network factory with the two global
predicates that define the paper's tolerance classes for it (safety and
legitimacy) and a :class:`~repro.campaigns.schedules.ScheduleSpec`
bounding what faults a trial may suffer.  A :class:`Campaign` runs
``trials`` independent trials, each with:

- its own derived RNG seeds (one for the network, one for the fault
  schedule) — the whole campaign is a pure function of the master seed;
- two :class:`~repro.sim.monitors.PredicateMonitor` observers whose
  transitions stream into the JSONL log;
- a per-trial wall-clock timeout, enforced between event batches;
- crash containment: a trial that raises is recorded with
  ``outcome="error"`` and the campaign continues — a failing trial is
  data, not a crash.

This is chaos testing in the detectors/correctors vocabulary: rather
than certifying tolerance over *all* computations (the model checker's
job, :mod:`repro.core`), a campaign samples the fault-schedule space
and reports how often each tolerance class was actually observed.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Any, Callable, Dict, IO, List, Optional, Tuple

from ..sim.monitors import GlobalPredicate, PredicateMonitor
from ..sim.network import Network
from .classify import TrialMetrics, campaign_verdict, classify_trial
from .report import CampaignLog, format_verdict, summarize
from .schedules import ScheduleSpec, random_schedule

__all__ = [
    "ScenarioInstance",
    "Scenario",
    "TrialRecord",
    "CampaignResult",
    "Campaign",
    "TrialTimeout",
]

#: trace-event kinds that are fault occurrences (channel reconfigurations
#: — loss bursts starting/ending — leave no trace event; their planned
#: windows are logged with the schedule at trial start)
FAULT_EVENT_KINDS = ("crash", "restart", "corrupt", "tamper")


class TrialTimeout(Exception):
    """A trial exceeded its wall-clock budget."""


@dataclass
class ScenarioInstance:
    """One trial's freshly-built world: the network plus the two
    predicates classified against.  Predicates may be stateful closures
    (e.g. progress detectors comparing successive samples), which is
    why instances are rebuilt per trial."""

    network: Network
    safety: GlobalPredicate
    legitimacy: GlobalPredicate


@dataclass(frozen=True)
class Scenario:
    """A campaign-able workload: factory + predicates + fault envelope."""

    name: str
    description: str
    build: Callable[[int], ScenarioInstance]   #: seed -> fresh instance
    spec: ScheduleSpec
    horizon: float
    sample_period: float = 0.5


@dataclass(frozen=True)
class TrialRecord:
    """One trial's outcome, as retained in the campaign result."""

    trial: int
    network_seed: int
    schedule_seed: int
    metrics: TrialMetrics
    sim_time: float = 0.0
    error: Optional[str] = None

    @property
    def outcome(self) -> str:
        return self.metrics.outcome


@dataclass
class CampaignResult:
    """All trials plus the aggregate summary."""

    scenario: str
    trials: List[TrialRecord]
    summary: Dict[str, Any]

    @property
    def verdict(self) -> str:
        return self.summary["verdict"]

    def outcomes(self) -> List[str]:
        return [record.outcome for record in self.trials]

    def format(self) -> str:
        return format_verdict(self.summary)


def derive_seed(master: int, trial: int, role: int) -> int:
    """Deterministic per-trial seed derivation (no global randomness):
    distinct (trial, role) pairs get distinct streams for any master."""
    return (master * 1_000_003 + trial * 2 + role) & 0x7FFFFFFF


class Campaign:
    """Run ``trials`` independent seeded trials of ``scenario``.

    ``budget`` / ``horizon`` override the scenario's defaults;
    ``trial_timeout`` is a per-trial wall-clock limit in seconds
    (None = unlimited); ``stream`` receives the JSONL event log;
    ``workers > 1`` fans the trials out over a process pool.

    **Parallel determinism.**  Each trial's seeds are a pure function of
    ``(master seed, trial index)`` and each trial buffers its events
    privately; buffers are replayed into the main log in trial order on
    both the serial and parallel paths.  A campaign therefore produces
    identical verdicts, counts, and event streams (modulo wall-clock
    fields) for any worker count.
    """

    #: events simulated between wall-clock timeout checks
    BATCH_EVENTS = 4096

    def __init__(
        self,
        scenario: Scenario,
        trials: int = 20,
        seed: int = 0,
        budget: Optional[int] = None,
        horizon: Optional[float] = None,
        trial_timeout: Optional[float] = None,
        stream: Optional[IO[str]] = None,
        workers: int = 1,
    ):
        self.scenario = scenario
        self.trials = trials
        self.seed = seed
        self.horizon = horizon if horizon is not None else scenario.horizon
        spec = scenario.spec.with_horizon(self.horizon)
        if budget is not None:
            spec = spec.with_budget(budget)
        self.spec = spec
        self.trial_timeout = trial_timeout
        self.log = CampaignLog(stream)
        self.workers = max(1, int(workers))

    # -- driving ---------------------------------------------------------------
    def run(self) -> CampaignResult:
        self.log.emit(
            "campaign_start",
            scenario=self.scenario.name,
            description=self.scenario.description,
            trials=self.trials,
            seed=self.seed,
            horizon=self.horizon,
            budget=self.spec.budget,
            fault_kinds=list(self.spec.kinds()),
        )
        if self.workers > 1 and self.trials > 1:
            records = self._run_trials_parallel()
        else:
            records = self._run_trials_serial()
        verdict = campaign_verdict([r.outcome for r in records])
        summary = summarize(
            self.scenario.name, verdict, [r.metrics for r in records]
        )
        self.log.emit("campaign_end", summary=summary)
        self.log.close()
        return CampaignResult(
            scenario=self.scenario.name, trials=records, summary=summary
        )

    def _run_trials_serial(self) -> List[TrialRecord]:
        records: List[TrialRecord] = []
        for trial in range(self.trials):
            record, events = self._buffered_trial(trial)
            records.append(record)
            self._replay(events)
        return records

    def _run_trials_parallel(self) -> List[TrialRecord]:
        options = {
            "trials": self.trials,
            "seed": self.seed,
            "budget": self.spec.budget,
            "horizon": self.horizon,
            "trial_timeout": self.trial_timeout,
        }
        records: List[TrialRecord] = []
        with ProcessPoolExecutor(
            max_workers=min(self.workers, self.trials),
            initializer=_worker_init,
            initargs=(
                _scenario_payload(self.scenario), options, _store_spec()
            ),
        ) as pool:
            futures = [
                pool.submit(_worker_trial, trial)
                for trial in range(self.trials)
            ]
            # collect in submission (= trial) order: the log replay and
            # the record list are then independent of worker scheduling
            for future in futures:
                record, events = future.result()
                records.append(record)
                self._replay(events)
        return records

    def _buffered_trial(
        self, trial: int
    ) -> Tuple[TrialRecord, List[Dict[str, Any]]]:
        """Run one trial with its events captured in a private buffer."""
        buffer = CampaignLog(None)
        record = self._run_one(trial, buffer)
        return record, buffer.events

    def _replay(self, events: List[Dict[str, Any]]) -> None:
        for event in events:
            payload = dict(event)
            kind = payload.pop("event")
            self.log.emit(kind, **payload)

    def _run_one(self, trial: int, log: CampaignLog) -> TrialRecord:
        network_seed = derive_seed(self.seed, trial, 0)
        schedule_seed = derive_seed(self.seed, trial, 1)
        started = time.perf_counter()
        try:
            record = self._run_trial(trial, network_seed, schedule_seed, log)
        except TrialTimeout:
            record = TrialRecord(
                trial=trial,
                network_seed=network_seed,
                schedule_seed=schedule_seed,
                metrics=TrialMetrics(outcome="timeout"),
                error=f"exceeded trial timeout of {self.trial_timeout}s",
            )
        except Exception as exc:  # crash containment: a failing trial is data
            record = TrialRecord(
                trial=trial,
                network_seed=network_seed,
                schedule_seed=schedule_seed,
                metrics=TrialMetrics(outcome="error"),
                error=f"{type(exc).__name__}: {exc}",
            )
        wall_ms = (time.perf_counter() - started) * 1000.0
        log.emit(
            "trial_end",
            trial=trial,
            **record.metrics.as_dict(),
            sim_time=record.sim_time,
            error=record.error,
            wall_ms=round(wall_ms, 3),
        )
        return record

    def _run_trial(
        self, trial: int, network_seed: int, schedule_seed: int,
        log: CampaignLog,
    ) -> TrialRecord:
        instance = self.scenario.build(network_seed)
        network = instance.network
        schedule = random_schedule(self.spec, schedule_seed)
        log.emit(
            "trial_start",
            trial=trial,
            network_seed=network_seed,
            schedule_seed=schedule_seed,
            faults=schedule.describe(),
        )
        schedule.arm(network)

        def observer(monitor_name: str):
            def on_transition(at: float, value: bool) -> None:
                log.emit(
                    "transition",
                    trial=trial,
                    monitor=monitor_name,
                    time=at,
                    value=value,
                )

            return on_transition

        safety = PredicateMonitor(
            network,
            instance.safety,
            period=self.scenario.sample_period,
            horizon=self.horizon,
            name="safety",
            on_transition=observer("safety"),
        )
        legitimacy = PredicateMonitor(
            network,
            instance.legitimacy,
            period=self.scenario.sample_period,
            horizon=self.horizon,
            name="legitimacy",
            on_transition=observer("legitimacy"),
        )

        sim_time = self._drive(network)
        for event in network.events():
            if event.kind in FAULT_EVENT_KINDS:
                log.emit(
                    "fault",
                    trial=trial,
                    time=event.time,
                    kind=event.kind,
                    process=event.process,
                )
        metrics = classify_trial(safety, legitimacy, schedule.onset_times())
        return TrialRecord(
            trial=trial,
            network_seed=network_seed,
            schedule_seed=schedule_seed,
            metrics=metrics,
            sim_time=sim_time,
        )

    def _drive(self, network: Network) -> float:
        """Run to the horizon in batches, enforcing the wall-clock
        timeout between batches (the kernel itself is uninterruptible)."""
        deadline = (
            time.perf_counter() + self.trial_timeout
            if self.trial_timeout is not None
            else None
        )
        while True:
            now = network.run(until=self.horizon, max_events=self.BATCH_EVENTS)
            if now >= self.horizon or network.simulator.pending() == 0:
                return now
            if deadline is not None and time.perf_counter() > deadline:
                raise TrialTimeout()


# -- process-pool workers ------------------------------------------------------
#
# Each worker process reconstructs the campaign once (pool initializer)
# and then runs whole trials by index.  Because every per-trial seed is a
# pure function of (master seed, trial index), a trial computes the same
# verdict and event buffer in any process; the parent replays the
# buffers in trial order, so the JSONL stream is independent of the
# worker count and of OS scheduling.

_WORKER_CAMPAIGN: Optional[Campaign] = None


def _scenario_payload(scenario: Scenario):
    """How to ship ``scenario`` to a worker: registered scenarios go by
    name (robust even for scenarios holding non-picklable state), other
    scenarios are pickled directly (their ``build`` must then be a
    module-level callable)."""
    from .scenarios import SCENARIOS

    if SCENARIOS.get(scenario.name) is scenario:
        return ("registry", scenario.name)
    return ("object", scenario)


def _store_spec() -> Optional[str]:
    """The parent's certificate-store spec, for worker inheritance
    (None when no store is active or the store is process-local)."""
    try:
        from ..store import backend as store_backend

        return store_backend.active_spec()
    except Exception:
        return None


def _worker_init(
    scenario_payload, options: Dict[str, Any],
    store_spec: Optional[str] = None,
) -> None:
    global _WORKER_CAMPAIGN
    if store_spec is not None:
        try:
            from ..store import backend as store_backend

            store_backend.set_active_store(store_spec)
        except Exception:
            pass
    kind, value = scenario_payload
    if kind == "registry":
        from .scenarios import get_scenario

        scenario = get_scenario(value)
    else:
        scenario = value
    _WORKER_CAMPAIGN = Campaign(scenario, stream=None, workers=1, **options)


def _worker_trial(trial: int):
    assert _WORKER_CAMPAIGN is not None, "worker pool not initialized"
    return _WORKER_CAMPAIGN._buffered_trial(trial)
