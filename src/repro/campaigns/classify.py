"""Per-trial outcome classification in the paper's vocabulary.

Section 2 of the paper defines three tolerance classes by which part of
the problem specification survives the fault-class:

- **masking** — both safety and liveness are preserved: every fault is
  masked from the specification's point of view;
- **fail-safe** — safety is preserved but liveness may be lost: the
  program may stop making progress, yet never does the wrong thing;
- **nonmasking** — liveness is preserved (the program converges back to
  its invariant) but safety may be violated meanwhile.

A campaign trial observes two predicates through
:class:`~repro.sim.monitors.PredicateMonitor`:

- the **safety** predicate (e.g. "at most one token", "voter output is
  correct") — its violation marks the trial non-fail-safe;
- the **legitimacy** predicate (the invariant / "everything is well"
  states) — whether the run *ends* inside it marks convergence.

:func:`classify_trial` maps the two booleans onto the four outcomes
(``masking`` / ``failsafe`` / ``nonmasking`` / ``intolerant``) and
computes the quantitative measurements the benchmarks report: detection
latency (fault to first observed perturbation), convergence time (last
fault to the start of the final legitimate interval) and availability
(fraction of samples spent legitimate).  :func:`campaign_verdict` rolls
per-trial outcomes up to a campaign-level tolerance claim.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, Sequence

from ..sim.monitors import PredicateMonitor

__all__ = [
    "OUTCOMES",
    "TrialMetrics",
    "classify_outcome",
    "classify_trial",
    "campaign_verdict",
]

#: trial outcomes, strongest tolerance first (error/timeout are
#: bookkeeping outcomes, not tolerance classes)
OUTCOMES = ("masking", "failsafe", "nonmasking", "intolerant", "error", "timeout")


@dataclass(frozen=True)
class TrialMetrics:
    """Everything one trial contributes to the campaign roll-up."""

    outcome: str                          #: one of :data:`OUTCOMES`
    safety_ok: Optional[bool] = None      #: safety never observed violated
    converged: Optional[bool] = None      #: run ended legitimate
    detection_latency: Optional[float] = None
    convergence_time: Optional[float] = None
    availability: float = 0.0
    faults_injected: int = 0

    def as_dict(self) -> Dict[str, Any]:
        return {
            "outcome": self.outcome,
            "safety_ok": self.safety_ok,
            "converged": self.converged,
            "detection_latency": self.detection_latency,
            "convergence_time": self.convergence_time,
            "availability": self.availability,
            "faults_injected": self.faults_injected,
        }


def classify_outcome(safety_ok: bool, converged: bool) -> str:
    """The Section-2 lattice: which part of the specification survived."""
    if safety_ok and converged:
        return "masking"
    if safety_ok:
        return "failsafe"
    if converged:
        return "nonmasking"
    return "intolerant"


def classify_trial(
    safety: PredicateMonitor,
    legitimacy: PredicateMonitor,
    fault_times: Sequence[float],
) -> TrialMetrics:
    """Classify one completed trial from its two monitors.

    ``fault_times`` are the injector onset instants (possibly empty for
    a fault-free control trial).
    """
    safety_ok = all(value for _, value in safety.samples)
    convergence_at = legitimacy.convergence_time()
    converged = convergence_at is not None

    last_fault = max(fault_times) if fault_times else None

    detection_latency = _detection_latency(legitimacy, safety, fault_times)

    convergence: Optional[float] = None
    if converged:
        if last_fault is None:
            convergence = 0.0
        else:
            # recovery time: from the last fault to the start of the
            # final continuously-legitimate interval (0 if legitimacy
            # was never perturbed after the last fault).
            convergence = max(0.0, convergence_at - last_fault)

    return TrialMetrics(
        outcome=classify_outcome(safety_ok, converged),
        safety_ok=safety_ok,
        converged=converged,
        detection_latency=detection_latency,
        convergence_time=convergence,
        availability=legitimacy.fraction_true(),
        faults_injected=len(fault_times),
    )


def _detection_latency(
    legitimacy: PredicateMonitor,
    safety: PredicateMonitor,
    fault_times: Sequence[float],
) -> Optional[float]:
    """Time from a fault to the first observed perturbation it caused.

    The monitored predicates play the role of the paper's detectors: a
    perturbation is "detected" at the first sample, at or after some
    fault's onset, where legitimacy (or safety) is observed false.  The
    latency is measured from the latest fault onset not after that
    sample — the fault the observation witnesses.  ``None`` when no
    fault was injected or no perturbation was ever observed.
    """
    if not fault_times:
        return None
    first_fault = min(fault_times)
    observed: Optional[float] = None
    for time, value in sorted(safety.samples + legitimacy.samples):
        if time >= first_fault and not value:
            observed = time
            break
    if observed is None:
        return None
    culprit = max(t for t in fault_times if t <= observed)
    return observed - culprit


def campaign_verdict(outcomes: Sequence[str]) -> Dict[str, Any]:
    """Roll per-trial outcomes up to a campaign-level claim.

    The verdict is the strongest tolerance class consistent with every
    *completed* trial (errors and timeouts are excluded from the
    tolerance claim but reported alongside it):

    - every trial masking → ``masking``;
    - safety held in every trial → ``failsafe``;
    - every trial converged → ``nonmasking``;
    - otherwise → ``none``.
    """
    counts = {outcome: 0 for outcome in OUTCOMES}
    for outcome in outcomes:
        counts[outcome] = counts.get(outcome, 0) + 1
    completed = [o for o in outcomes if o not in ("error", "timeout")]

    if not completed:
        verdict = "none"
    elif all(o == "masking" for o in completed):
        verdict = "masking"
    elif all(o in ("masking", "failsafe") for o in completed):
        verdict = "failsafe"
    elif all(o in ("masking", "nonmasking") for o in completed):
        verdict = "nonmasking"
    else:
        verdict = "none"

    return {
        "verdict": verdict,
        "counts": counts,
        "trials": len(outcomes),
        "completed": len(completed),
    }
