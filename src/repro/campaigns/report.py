"""Structured campaign telemetry: JSONL event log + aggregate summary.

Every campaign emits a replayable event stream (one JSON object per
line) through a :class:`CampaignLog`:

- ``campaign_start`` — scenario, trial count, master seed, spec;
- ``trial_start`` — trial index, derived seeds, planned fault schedule;
- ``fault`` — each injected fault with its simulation timestamp;
- ``transition`` — each observed predicate flip (monitor name, time,
  value), captured via ``PredicateMonitor.on_transition``;
- ``trial_end`` — outcome and metrics;
- ``campaign_end`` — the aggregate summary.

Determinism contract: with a fixed scenario, seed and trial count, the
stream is identical run to run *except* for wall-clock fields, which
all live under keys starting with ``"wall"`` — strip those and the logs
compare equal (the test suite asserts this).

The aggregate summary reports percentile latencies via
:func:`percentile` (nearest-rank; no numpy dependency).
"""

from __future__ import annotations

import json
from typing import Any, Dict, IO, Iterable, Iterator, List, Optional, Sequence

__all__ = [
    "SCHEMA_VERSION",
    "CampaignLog",
    "read_events",
    "load_summary",
    "percentile",
    "summarize",
    "format_verdict",
]

#: stamped on every emitted record so consumers (the report path, the
#: monitoring runtime's replay source) can dispatch on log vintage.
#: Version history: 0 = unversioned pre-stamp logs, 1 = current layout.
SCHEMA_VERSION = 1

#: the percentiles the summary reports for each latency series
PERCENTILES = (50, 90, 99)


class CampaignLog:
    """Append-only JSONL event sink.

    ``stream`` is any writable text file object (or None for a pure
    in-memory log).  Events are also retained in ``events`` so callers
    can inspect a run without re-parsing the file.
    """

    def __init__(self, stream: Optional[IO[str]] = None):
        self.stream = stream
        self.events: List[Dict[str, Any]] = []

    def emit(self, event: str, **payload: Any) -> Dict[str, Any]:
        # ``payload`` may already carry schema_version (buffered trial
        # events being replayed into the main log keep their stamp)
        record = {"event": event, "schema_version": SCHEMA_VERSION, **payload}
        self.events.append(record)
        if self.stream is not None:
            self.stream.write(json.dumps(record, sort_keys=True, default=str))
            self.stream.write("\n")
        return record

    def close(self) -> None:
        if self.stream is not None:
            self.stream.flush()


def read_events(path) -> Iterator[Dict[str, Any]]:
    """Parse a campaign JSONL log back into its event records.

    Blank lines are skipped.  Records from logs written before the
    schema stamp get ``schema_version: 0``, so every consumer sees a
    versioned record regardless of log vintage.
    """
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            record.setdefault("schema_version", 0)
            yield record


def load_summary(path) -> Optional[Dict[str, Any]]:
    """The ``campaign_end`` aggregate summary recorded in a log, or
    None when the log has no campaign end (e.g. a crashed run)."""
    summary: Optional[Dict[str, Any]] = None
    for record in read_events(path):
        if record.get("event") == "campaign_end":
            summary = record.get("summary")
    return summary


def percentile(values: Sequence[float], q: float) -> Optional[float]:
    """Nearest-rank percentile (q in [0, 100]); None for empty input."""
    if not values:
        return None
    ordered = sorted(values)
    if q <= 0:
        return ordered[0]
    if q >= 100:
        return ordered[-1]
    import math

    rank = math.ceil(q / 100.0 * len(ordered))
    return ordered[max(0, rank - 1)]


def _series_summary(values: List[float]) -> Dict[str, Any]:
    return {
        "n": len(values),
        "min": min(values) if values else None,
        "max": max(values) if values else None,
        "mean": sum(values) / len(values) if values else None,
        **{f"p{q}": percentile(values, q) for q in PERCENTILES},
    }


def summarize(scenario: str, verdict: Dict[str, Any],
              metrics: Iterable[Any]) -> Dict[str, Any]:
    """The campaign-level summary dict.

    ``verdict`` comes from :func:`~repro.campaigns.classify.campaign_verdict`;
    ``metrics`` is the per-trial :class:`TrialMetrics` sequence
    (bookkeeping outcomes contribute no latency samples).
    """
    metrics = list(metrics)
    detection = [
        m.detection_latency for m in metrics if m.detection_latency is not None
    ]
    convergence = [
        m.convergence_time for m in metrics if m.convergence_time is not None
    ]
    availability = [
        m.availability for m in metrics
        if m.outcome not in ("error", "timeout")
    ]
    return {
        "scenario": scenario,
        **verdict,
        "faults_injected": sum(m.faults_injected for m in metrics),
        "detection_latency": _series_summary(detection),
        "convergence_time": _series_summary(convergence),
        "availability_mean": (
            sum(availability) / len(availability) if availability else None
        ),
    }


def _fmt(value: Optional[float]) -> str:
    return "   -" if value is None else f"{value:6.2f}"


def format_verdict(summary: Dict[str, Any]) -> str:
    """Human-readable campaign verdict, e.g.::

        == campaign token_ring: nonmasking-tolerant in 20/20 trials
           outcomes: masking=4 failsafe=0 nonmasking=16 intolerant=0 error=0 timeout=0
           detection latency: p50=  1.50 p90=  2.00 p99=  2.50  (n=16)
           convergence time:  p50=  9.00 p90= 14.00 p99= 18.00  (n=20)
           availability: 0.87   faults injected: 120
    """
    counts = summary["counts"]
    verdict = summary["verdict"]
    completed = summary["completed"]
    # a masking trial also witnesses the weaker fail-safe / nonmasking
    # claims, so the claim counts every trial at or above the verdict
    satisfying = {
        "masking": ("masking",),
        "failsafe": ("masking", "failsafe"),
        "nonmasking": ("masking", "nonmasking"),
    }
    claim = (
        f"{verdict}-tolerant in "
        f"{sum(counts.get(o, 0) for o in satisfying[verdict])}/{completed} trials"
        if verdict != "none"
        else f"no uniform tolerance class over {completed} trials"
    )
    detection = summary["detection_latency"]
    convergence = summary["convergence_time"]
    availability = summary["availability_mean"]
    lines = [
        f"== campaign {summary['scenario']}: {claim}",
        "   outcomes: " + " ".join(
            f"{name}={counts.get(name, 0)}"
            for name in ("masking", "failsafe", "nonmasking", "intolerant",
                         "error", "timeout")
        ),
        (
            "   detection latency: "
            + " ".join(f"p{q}={_fmt(detection[f'p{q}'])}" for q in PERCENTILES)
            + f"  (n={detection['n']})"
        ),
        (
            "   convergence time:  "
            + " ".join(f"p{q}={_fmt(convergence[f'p{q}'])}" for q in PERCENTILES)
            + f"  (n={convergence['n']})"
        ),
        (
            f"   availability: "
            + ("-" if availability is None else f"{availability:.2f}")
            + f"   faults injected: {summary['faults_injected']}"
        ),
    ]
    return "\n".join(lines)
