"""Ready-made campaign scenarios over the program zoo.

Each scenario pairs a message-passing realisation of one of the paper's
example programs with the two predicates that define its tolerance
classes, plus the fault envelope a campaign may draw schedules from:

- ``token_ring`` — the mutual-exclusion ring with the regeneration
  corrector (watchdog detector + token regeneration, §7 / the
  self-stabilization examples).  Expected profile: *nonmasking* — the
  one-token safety predicate can be transiently violated by an
  aggressive regeneration, but circulation always resumes.
- ``tmr`` — triple modular redundancy with a repairing voter (§6.1).
  Expected profile: *masking* for single faults — the voter's majority
  masks one corrupted replica and writes the correct value back.
- ``byzantine`` — one-round Byzantine agreement, n = 4, f = 1 (§6.2),
  attacked by tampering intruders on its channels.  Expected profile:
  *masking* while at most one lieutenant's traffic is tampered.
- ``memory_access`` — a client/server memory with timeout-and-retry
  (the Figure 1-3 ladder's workload).  Expected profile: *masking*
  when the server restarts in time, degrading to *fail-safe* (no wrong
  read is ever accepted, but the run may not finish) when it does not.

The expectations are *measured*, not asserted: a campaign reports the
observed outcome mix, including the unlucky trials where a fault burst
exceeds what the component was designed to tolerate.
"""

from __future__ import annotations

import random
from typing import Any, Dict, Hashable, List, Tuple

from ..sim.channel import ChannelConfig
from ..sim.network import Network
from ..sim.process import SimProcess
from ..sim.token_ring import RingProcess
from .runner import Scenario, ScenarioInstance
from .schedules import ScheduleSpec

__all__ = ["SCENARIOS", "get_scenario"]


# ---------------------------------------------------------------------------
# token ring
# ---------------------------------------------------------------------------

class ColdRestartRingProcess(RingProcess):
    """A ring member whose token lives in volatile memory: a restart
    loses it (cold restart), and process 0 re-arms its watchdog."""

    def on_restart(self) -> None:
        self.has_token = False
        if self.pid == 0:
            self.last_seen = self.now
            if self.regeneration_timeout is not None:
                self.set_timer("watchdog", self.regeneration_timeout)


def _erase_token(rng: random.Random, pid: Hashable) -> Dict[str, Any]:
    """Transient corruption: the token vanishes from ``pid``'s memory."""
    return {"has_token": False}


def _build_token_ring(seed: int, size: int = 4,
                      timeout: float = 12.0) -> ScenarioInstance:
    network = Network(
        seed=seed,
        default_channel=ChannelConfig(delay=0.3, jitter=0.1),
    )
    for pid in range(size):
        network.add_process(
            ColdRestartRingProcess(pid, size, regeneration_timeout=timeout)
        )

    def mutex(snapshot) -> bool:
        holders = sum(
            1 for s in snapshot.values()
            if s["has_token"] and not s["crashed"]
        )
        return holders <= 1

    last_total = {"visits": -1}

    def circulating(snapshot) -> bool:
        """Legitimate iff mutual exclusion holds *and* the ring made
        progress since the previous sample (the token is alive)."""
        total = sum(s["visits"] for s in snapshot.values())
        progressed = total > last_total["visits"]
        last_total["visits"] = total
        return progressed and mutex(snapshot)

    return ScenarioInstance(
        network=network, safety=mutex, legitimacy=circulating
    )


def token_ring_scenario(size: int = 4) -> Scenario:
    ring_edges = tuple((pid, (pid + 1) % size) for pid in range(size))
    return Scenario(
        name="token_ring",
        description=(
            "mutual-exclusion ring with the regeneration corrector "
            "(watchdog detector + token regeneration)"
        ),
        build=_build_token_ring,
        spec=ScheduleSpec(
            horizon=120.0,
            budget=5,
            crash_targets=tuple(range(size)),
            corruption_targets=tuple(range(size)),
            loss_channels=ring_edges,
            corruptor=_erase_token,
            max_downtime=15.0,
        ),
        horizon=120.0,
        sample_period=2.0,
    )


# ---------------------------------------------------------------------------
# triple modular redundancy
# ---------------------------------------------------------------------------

TMR_REFERENCE = 1


class Replica(SimProcess):
    """One redundant copy of the computation's result."""

    def __init__(self, pid: Hashable, value: int = TMR_REFERENCE):
        super().__init__(pid)
        self.value = value

    def on_message(self, sender: Hashable, message: Any) -> None:
        if message == "read":
            self.send(sender, ("reading", self.pid, self.value))
        elif isinstance(message, tuple) and message[0] == "repair":
            self.value = message[1]


class Voter(SimProcess):
    """Polls the replicas, outputs the strict majority, and repairs
    disagreeing replicas with it (the §6.1 corrector ``CR``)."""

    def __init__(self, pid: Hashable, replicas: Tuple[Hashable, ...],
                 period: float = 2.0):
        super().__init__(pid)
        self.replicas = tuple(replicas)
        self.period = period
        self.output = None
        self._ballots: Dict[Hashable, int] = {}

    def on_start(self) -> None:
        self.set_timer("poll", self.period)

    def on_restart(self) -> None:
        self.set_timer("poll", self.period)

    def on_timer(self, name: str) -> None:
        if name == "poll":
            self._ballots = {}
            for replica in self.replicas:
                self.send(replica, "read")
            self.set_timer("tally", self.period / 2.0)
            self.set_timer("poll", self.period)
        elif name == "tally":
            values = list(self._ballots.values())
            majority = next(
                (v for v in sorted(set(values))
                 if values.count(v) * 2 > len(values)),
                None,
            )
            if majority is None:
                return
            self.output = majority
            for replica, value in sorted(self._ballots.items()):
                if value != majority:
                    self.send(replica, ("repair", majority))

    def on_message(self, sender: Hashable, message: Any) -> None:
        if isinstance(message, tuple) and message[0] == "reading":
            self._ballots[message[1]] = message[2]


def _corrupt_replica(rng: random.Random, pid: Hashable) -> Dict[str, Any]:
    """Flip the replica's value — the §6.1 fault-class."""
    return {"value": 1 - TMR_REFERENCE}


def _build_tmr(seed: int) -> ScenarioInstance:
    network = Network(
        seed=seed,
        default_channel=ChannelConfig(delay=0.2, jitter=0.05),
    )
    replicas = ("r0", "r1", "r2")
    for pid in replicas:
        network.add_process(Replica(pid))
    network.add_process(Voter("v", replicas))

    def output_correct(snapshot) -> bool:
        return snapshot["v"]["output"] in (None, TMR_REFERENCE)

    def all_correct(snapshot) -> bool:
        if snapshot["v"]["output"] != TMR_REFERENCE:
            return False
        return all(
            snapshot[pid]["value"] == TMR_REFERENCE
            for pid in replicas
            if not snapshot[pid]["crashed"]
        )

    return ScenarioInstance(
        network=network, safety=output_correct, legitimacy=all_correct
    )


def tmr_scenario() -> Scenario:
    replicas = ("r0", "r1", "r2")
    channels = tuple((pid, "v") for pid in replicas) + tuple(
        ("v", pid) for pid in replicas
    )
    return Scenario(
        name="tmr",
        description=(
            "triple modular redundancy with a repairing majority voter "
            "(paper §6.1)"
        ),
        build=_build_tmr,
        spec=ScheduleSpec(
            horizon=80.0,
            budget=3,
            crash_targets=replicas + ("v",),
            corruption_targets=replicas,
            loss_channels=channels,
            corruptor=_corrupt_replica,
            max_downtime=8.0,
        ),
        horizon=80.0,
        sample_period=1.0,
    )


# ---------------------------------------------------------------------------
# Byzantine agreement (n = 4, f = 1, one round of OM(1))
# ---------------------------------------------------------------------------

BYZ_ORDER = 1


class Commander(SimProcess):
    def __init__(self, pid: Hashable, lieutenants: Tuple[Hashable, ...],
                 value: int = BYZ_ORDER):
        super().__init__(pid)
        self.lieutenants = tuple(lieutenants)
        self.value = value

    def on_start(self) -> None:
        self.set_timer("send", 1.0)

    def on_timer(self, name: str) -> None:
        if name == "send":
            for lieutenant in self.lieutenants:
                self.send(lieutenant, ("order", self.value))


class Lieutenant(SimProcess):
    """Relays the commander's order to its peers, then decides by
    strict majority of everything heard (ties default to retreat = 0)."""

    def __init__(self, pid: Hashable, peers: Tuple[Hashable, ...],
                 decide_at: float = 8.0):
        super().__init__(pid)
        self.peers = tuple(peers)
        self.decide_at = decide_at
        self.order = None
        self.decided = None
        self._echoes: Dict[Hashable, int] = {}

    def on_start(self) -> None:
        self.set_timer("decide", self.decide_at)

    def on_message(self, sender: Hashable, message: Any) -> None:
        if not isinstance(message, tuple):
            return
        if message[0] == "order" and self.order is None:
            self.order = message[1]
            for peer in self.peers:
                self.send(peer, ("echo", self.pid, message[1]))
        elif message[0] == "echo":
            self._echoes[message[1]] = message[2]

    def on_timer(self, name: str) -> None:
        if name == "decide" and self.decided is None:
            votes: List[int] = list(self._echoes.values())
            if self.order is not None:
                votes.append(self.order)
            self.decided = next(
                (v for v in sorted(set(votes))
                 if votes.count(v) * 2 > len(votes)),
                0,
            )


def _flip_command(rng: random.Random):
    """A tampering behaviour: invert orders and echoes in transit."""

    def flip(message: Any) -> Any:
        if isinstance(message, tuple) and message[0] == "order":
            return ("order", 1 - message[1])
        if isinstance(message, tuple) and message[0] == "echo":
            return ("echo", message[1], 1 - message[2])
        return message

    return flip


def _build_byzantine(seed: int) -> ScenarioInstance:
    network = Network(
        seed=seed,
        default_channel=ChannelConfig(delay=0.2, jitter=0.05),
    )
    lieutenants = ("l1", "l2", "l3")
    network.add_process(Commander("c", lieutenants))
    for pid in lieutenants:
        peers = tuple(p for p in lieutenants if p != pid)
        network.add_process(Lieutenant(pid, peers))

    def agreement(snapshot) -> bool:
        decided = [
            snapshot[pid]["decided"]
            for pid in lieutenants
            if not snapshot[pid]["crashed"]
            and snapshot[pid]["decided"] is not None
        ]
        return len(set(decided)) <= 1

    def validity(snapshot) -> bool:
        return all(
            snapshot[pid]["decided"] == BYZ_ORDER
            for pid in lieutenants
            if not snapshot[pid]["crashed"]
        )

    return ScenarioInstance(
        network=network, safety=agreement, legitimacy=validity
    )


def byzantine_scenario() -> Scenario:
    lieutenants = ("l1", "l2", "l3")
    channels = tuple(("c", pid) for pid in lieutenants) + tuple(
        (a, b) for a in lieutenants for b in lieutenants if a != b
    )
    return Scenario(
        name="byzantine",
        description=(
            "one-round Byzantine agreement (n=4, f=1) under channel "
            "tampering intruders (paper §6.2 / §7)"
        ),
        build=_build_byzantine,
        spec=ScheduleSpec(
            horizon=20.0,
            budget=2,
            tamper_channels=channels,
            tamperer=_flip_command,
            min_burst=1.0,
            max_burst=6.0,
        ),
        horizon=20.0,
        sample_period=0.5,
    )


# ---------------------------------------------------------------------------
# memory access (client/server with timeout-and-retry)
# ---------------------------------------------------------------------------

class MemoryServer(SimProcess):
    """Serves reads and writes from stable storage (state survives
    crashes; availability does not)."""

    def __init__(self, pid: Hashable):
        super().__init__(pid)
        self.store: Dict[str, int] = {}

    def on_message(self, sender: Hashable, message: Any) -> None:
        kind, rid = message[0], message[1]
        if kind == "write":
            self.store[message[2]] = message[3]
            self.send(sender, ("ack", rid))
        elif kind == "read":
            self.send(sender, ("value", rid, self.store.get(message[2])))


class MemoryClient(SimProcess):
    """Issues a fixed script of writes and read-back checks; a timeout
    detector retries unacknowledged requests (masking crashes that are
    followed by a restart)."""

    def __init__(self, pid: Hashable, server: Hashable,
                 ops: List[Tuple], retry_after: float = 2.0):
        super().__init__(pid)
        self.server = server
        self.retry_after = retry_after
        self.cursor = 0
        self.done = False
        self.bad_reads = 0
        self.retries = 0
        self._ops = list(ops)

    def on_start(self) -> None:
        self._issue()

    def _issue(self) -> None:
        if self.cursor >= len(self._ops):
            self.done = True
            return
        op = self._ops[self.cursor]
        if op[0] == "write":
            self.send(self.server, ("write", self.cursor, op[1], op[2]))
        else:
            self.send(self.server, ("read", self.cursor, op[1]))
        self.set_timer(f"retry:{self.cursor}", self.retry_after)

    def on_message(self, sender: Hashable, message: Any) -> None:
        kind, rid = message[0], message[1]
        if rid != self.cursor:
            return  # stale reply (a retry's duplicate)
        if kind == "value":
            expected = self._ops[self.cursor][2]
            if message[2] != expected:
                self.bad_reads += 1
        self.cursor += 1
        self._issue()

    def on_timer(self, name: str) -> None:
        if self.done or not name.startswith("retry:"):
            return
        if int(name.split(":", 1)[1]) == self.cursor:
            self.retries += 1
            self._issue()


def _memory_ops(pairs: int = 8) -> List[Tuple]:
    ops: List[Tuple] = []
    for index in range(pairs):
        key = f"k{index % 3}"
        ops.append(("write", key, index))
        ops.append(("read", key, index))
    return ops


def _build_memory_access(seed: int) -> ScenarioInstance:
    network = Network(
        seed=seed,
        default_channel=ChannelConfig(delay=0.2, jitter=0.05),
    )
    network.add_process(MemoryServer("s"))
    network.add_process(MemoryClient("c", "s", _memory_ops()))

    def no_wrong_read(snapshot) -> bool:
        return snapshot["c"]["bad_reads"] == 0

    def completed(snapshot) -> bool:
        return bool(snapshot["c"]["done"]) and no_wrong_read(snapshot)

    return ScenarioInstance(
        network=network, safety=no_wrong_read, legitimacy=completed
    )


def memory_access_scenario() -> Scenario:
    return Scenario(
        name="memory_access",
        description=(
            "client/server memory with a timeout-and-retry detector "
            "(the Figures 1-3 workload, run against crashes)"
        ),
        build=_build_memory_access,
        spec=ScheduleSpec(
            horizon=60.0,
            budget=3,
            crash_targets=("s",),
            loss_channels=(("c", "s"), ("s", "c")),
            max_downtime=10.0,
        ),
        horizon=60.0,
        sample_period=1.0,
    )


# ---------------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------------

SCENARIOS: Dict[str, Scenario] = {
    scenario.name: scenario
    for scenario in (
        token_ring_scenario(),
        tmr_scenario(),
        byzantine_scenario(),
        memory_access_scenario(),
    )
}


def get_scenario(name: str) -> Scenario:
    try:
        return SCENARIOS[name]
    except KeyError:
        known = ", ".join(sorted(SCENARIOS))
        raise KeyError(
            f"unknown campaign scenario {name!r}; known scenarios: {known}"
        ) from None
