"""Seeded random fault-schedule generators.

A hand-written fault schedule exercises one adversarial scenario; a
*campaign* needs hundreds of distinct ones.  :func:`random_schedule`
draws a :class:`FaultSchedule` — a sorted bundle of the existing
:mod:`repro.sim.faults` injectors — from a seeded RNG, parameterised by
a :class:`ScheduleSpec`: fault budget, time horizon, and the target
sets (which processes may crash or be corrupted, which channels may
lose or tamper with messages).

Determinism contract: the same ``(spec, seed)`` pair always yields the
same schedule, byte for byte — draws happen in a fixed order and no
global randomness is consulted.  That is what makes campaign runs
replayable from their JSONL logs.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Callable, Dict, Hashable, List, Optional, Tuple

from ..sim.faults import (
    CrashInjector,
    MessageLossBurst,
    RestartInjector,
    StateCorruptionInjector,
    TamperingIntruder,
)
from ..sim.network import Network

__all__ = [
    "ScheduleSpec",
    "FaultSchedule",
    "random_schedule",
    "describe_injector",
]

#: draws ``{variable: corrupted value}`` updates for one process
Corruptor = Callable[[random.Random, Hashable], Dict[str, Any]]
#: draws an in-transit message transform (an intruder behaviour)
Tamperer = Callable[[random.Random], Callable[[Any], Any]]

Channel = Tuple[Hashable, Hashable]


@dataclass(frozen=True)
class ScheduleSpec:
    """What a random schedule may do, and to whom.

    ``budget`` is the number of fault *events* drawn; a crash/restart
    pair counts as one event (the restart is the fault's built-in end,
    like a loss burst's).  Fault kinds whose target set (or generator)
    is empty are never drawn, so a spec with only ``crash_targets``
    produces pure crash/restart campaigns.

    Fault instants are drawn uniformly in ``[0.05, 0.85] * horizon`` so
    every trial retains a fault-free suffix in which convergence can be
    observed — matching the paper's fault model, where fault actions
    eventually stop.
    """

    horizon: float
    budget: int = 4
    crash_targets: Tuple[Hashable, ...] = ()
    corruption_targets: Tuple[Hashable, ...] = ()
    loss_channels: Tuple[Channel, ...] = ()
    tamper_channels: Tuple[Channel, ...] = ()
    corruptor: Optional[Corruptor] = None
    tamperer: Optional[Tamperer] = None
    min_downtime: float = 0.5       #: shortest crash outage
    max_downtime: float = 10.0      #: longest crash outage
    min_burst: float = 0.5          #: shortest loss/tamper window
    max_burst: float = 5.0          #: longest loss/tamper window

    def with_budget(self, budget: int) -> "ScheduleSpec":
        from dataclasses import replace

        return replace(self, budget=budget)

    def with_horizon(self, horizon: float) -> "ScheduleSpec":
        from dataclasses import replace

        return replace(self, horizon=horizon)

    def kinds(self) -> Tuple[str, ...]:
        """The fault kinds this spec can actually draw."""
        available: List[str] = []
        if self.crash_targets:
            available.append("crash_restart")
        if self.corruption_targets and self.corruptor is not None:
            available.append("corruption")
        if self.loss_channels:
            available.append("loss_burst")
        if self.tamper_channels and self.tamperer is not None:
            available.append("tamper")
        return tuple(available)


@dataclass(frozen=True)
class FaultSchedule:
    """A concrete, armable bundle of injectors (sorted by onset)."""

    injectors: Tuple[Any, ...]
    seed: Optional[int] = None

    def arm(self, network: Network) -> None:
        for injector in self.injectors:
            injector.arm(network)

    def describe(self) -> List[Dict[str, Any]]:
        """JSON-serialisable description of every injector, for the
        campaign telemetry log."""
        return [describe_injector(injector) for injector in self.injectors]

    def __len__(self) -> int:
        return len(self.injectors)

    def onset_times(self) -> List[float]:
        """The instant each injector begins acting (sorted)."""
        return sorted(_onset_key(injector) for injector in self.injectors)


def random_schedule(spec: ScheduleSpec, seed_or_rng) -> FaultSchedule:
    """Draw one seeded random schedule satisfying ``spec``.

    ``seed_or_rng`` is an int seed or a ``random.Random`` (the latter
    lets a caller thread one RNG through several draws).
    """
    if isinstance(seed_or_rng, random.Random):
        rng, seed = seed_or_rng, None
    else:
        seed = int(seed_or_rng)
        rng = random.Random(seed)

    kinds = spec.kinds()
    injectors: List[Any] = []
    if not kinds:
        return FaultSchedule(injectors=(), seed=seed)

    for _ in range(max(0, spec.budget)):
        kind = rng.choice(kinds)
        onset = rng.uniform(0.05 * spec.horizon, 0.85 * spec.horizon)
        if kind == "crash_restart":
            pid = rng.choice(spec.crash_targets)
            downtime = rng.uniform(spec.min_downtime, spec.max_downtime)
            injectors.append(CrashInjector(time=onset, pid=pid))
            injectors.append(RestartInjector(time=onset + downtime, pid=pid))
        elif kind == "corruption":
            pid = rng.choice(spec.corruption_targets)
            updates = spec.corruptor(rng, pid)
            injectors.append(
                StateCorruptionInjector(
                    time=onset, pid=pid, updates=tuple(sorted(updates.items()))
                )
            )
        elif kind == "loss_burst":
            source, destination = rng.choice(spec.loss_channels)
            duration = rng.uniform(spec.min_burst, spec.max_burst)
            injectors.append(
                MessageLossBurst(
                    start=onset, duration=duration,
                    source=source, destination=destination,
                )
            )
        else:  # tamper
            source, destination = rng.choice(spec.tamper_channels)
            duration = rng.uniform(spec.min_burst, spec.max_burst)
            injectors.append(
                TamperingIntruder(
                    start=onset, duration=duration,
                    source=source, destination=destination,
                    transform=spec.tamperer(rng),
                )
            )

    injectors.sort(key=lambda injector: (_onset_key(injector), _kind_name(injector)))
    return FaultSchedule(injectors=tuple(injectors), seed=seed)


def _onset_key(injector: Any) -> float:
    if hasattr(injector, "time"):
        return injector.time
    return injector.start


def _kind_name(injector: Any) -> str:
    return type(injector).__name__


def describe_injector(injector: Any) -> Dict[str, Any]:
    """A JSON-serialisable record of one injector (transforms are
    summarised by name, they are not round-trippable)."""
    if isinstance(injector, CrashInjector):
        return {"kind": "crash", "time": injector.time, "pid": injector.pid}
    if isinstance(injector, RestartInjector):
        return {"kind": "restart", "time": injector.time, "pid": injector.pid}
    if isinstance(injector, StateCorruptionInjector):
        return {
            "kind": "corrupt",
            "time": injector.time,
            "pid": injector.pid,
            "updates": {key: value for key, value in injector.updates},
        }
    if isinstance(injector, MessageLossBurst):
        return {
            "kind": "loss_burst",
            "time": injector.start,
            "duration": injector.duration,
            "channel": [injector.source, injector.destination],
        }
    if isinstance(injector, TamperingIntruder):
        return {
            "kind": "tamper",
            "time": injector.start,
            "duration": injector.duration,
            "channel": [injector.source, injector.destination],
            "transform": getattr(
                injector.transform, "__name__", type(injector.transform).__name__
            ),
        }
    return {"kind": _kind_name(injector), "repr": repr(injector)}
