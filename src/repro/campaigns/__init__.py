"""Randomized fault-injection campaigns with structured telemetry.

Where :mod:`repro.core` *certifies* tolerance over all computations and
:mod:`repro.sim` *executes* one hand-written fault scenario, a campaign
sweeps hundreds of seeded random fault schedules over a scenario and
classifies every trial against the paper's Section-2 tolerance classes
(fail-safe / nonmasking / masking) — chaos testing as a statistical
complement to the model checker, in the spirit of model checking's own
role of exploring executions the designer did not anticipate.

- :mod:`repro.campaigns.schedules` — seeded random fault-schedule
  generators over the :mod:`repro.sim.faults` injectors;
- :mod:`repro.campaigns.runner` — the :class:`Campaign` engine
  (independent seeded trials, per-trial timeouts, crash containment);
- :mod:`repro.campaigns.classify` — per-trial outcome classification
  and the campaign-level verdict roll-up;
- :mod:`repro.campaigns.report` — JSONL event log and the aggregate
  summary (percentile detection/convergence latencies, availability);
- :mod:`repro.campaigns.scenarios` — ready-made scenarios for the
  program zoo (token ring, TMR, Byzantine agreement, memory access);
- :mod:`repro.campaigns.distributed` — the same campaigns (and
  ``explore_codes`` censuses) sharded over the ``repro serve`` job
  queue and ``repro worker`` fleets, verdict-identical to the
  in-process paths.

CLI: ``repro campaign <scenario> --trials N --seed S --jsonl PATH``
(add ``--distributed URL`` to run through a served job queue).
"""

from .classify import (
    OUTCOMES,
    TrialMetrics,
    campaign_verdict,
    classify_outcome,
    classify_trial,
)
from .report import (
    SCHEMA_VERSION,
    CampaignLog,
    format_verdict,
    load_summary,
    percentile,
    read_events,
    summarize,
)
from .runner import (
    Campaign,
    CampaignResult,
    Scenario,
    ScenarioInstance,
    TrialRecord,
    TrialTimeout,
    derive_seed,
)
from .schedules import (
    FaultSchedule,
    ScheduleSpec,
    describe_injector,
    random_schedule,
)
from .scenarios import SCENARIOS, get_scenario
from .distributed import (
    DistributedCampaign,
    distributed_census,
    worker_loop,
)

__all__ = [
    "DistributedCampaign",
    "distributed_census",
    "worker_loop",
    "OUTCOMES",
    "TrialMetrics",
    "classify_outcome",
    "classify_trial",
    "campaign_verdict",
    "SCHEMA_VERSION",
    "CampaignLog",
    "read_events",
    "load_summary",
    "percentile",
    "summarize",
    "format_verdict",
    "Campaign",
    "CampaignResult",
    "Scenario",
    "ScenarioInstance",
    "TrialRecord",
    "TrialTimeout",
    "derive_seed",
    "ScheduleSpec",
    "FaultSchedule",
    "random_schedule",
    "describe_injector",
    "SCENARIOS",
    "get_scenario",
]
