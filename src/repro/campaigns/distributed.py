"""Distributed campaigns and censuses over the ``repro serve`` job queue.

The single-process :class:`~repro.campaigns.runner.Campaign` already
fans trials out over a local process pool.  This module takes the same
unit of work — a *trial batch*, a contiguous range ``[lo, hi)`` of
trial indices — and leases it to pull-based ``repro worker`` processes
through the job board of :mod:`repro.store.jobs`, with the result
artifacts flowing back through the content-addressed store itself:

- the **scheduler** (:class:`DistributedCampaign`) plans batches,
  checks the store first (a batch whose result artifact already exists
  is a *cache hit* — no job is submitted, no trial re-runs), submits
  the rest as jobs whose id *is* the batch's content key, and polls the
  store for arriving artifacts;
- **workers** (:func:`worker_loop`) lease jobs, rebuild the campaign
  from the scenario registry, run ``_buffered_trial`` per index, and
  ``PUT`` the packed batch encoding at the result key.  A worker that
  dies mid-batch simply lets its lease expire and the batch is
  re-leased — because every per-trial seed is a pure function of
  ``(master seed, trial index)``, *who* runs a batch (or how many
  times) is unobservable in the result;
- the scheduler decodes every batch and replays the buffered trial
  events **in trial order**, exactly as the process-pool path does, so
  verdicts, summaries and JSONL logs are identical to a single-process
  run for any worker count, batch size, or completion order (modulo
  wall-clock fields, the repo-wide determinism contract).

Batch sizing is adaptive: the first wave runs single-trial calibration
batches, then batches grow to target ``target_lease_s`` seconds of
work each from the per-trial wall times observed in completed batches
— long enough to amortize lease round-trips, short enough that a lost
worker costs one lease timeout, not the campaign.

:func:`distributed_census` applies the same scheme to
:func:`~repro.core.kernels.explore_codes` censuses: the start-code
array is split into ``shards`` slices, each shard BFS runs on a worker
(:func:`~repro.core.kernels.explore_code_shard`) and publishes its
reachable-code *set* (delta + zlib packed) at a content key, and the
scheduler unions the sets — shard reach sets overlap, so only the
union (never the sum) reproduces the exact census count.

With no server configured (or an unreachable one), both schedulers
degrade gracefully to the in-process paths — same results, no queue.
"""

from __future__ import annotations

import pickle
import time
import zlib
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..store import backend as store_backend
from ..store.backend import BaseStore, MemoryStore, RemoteStore, record_event
from ..store.jobs import JobClient, default_worker_id
from ..store.keys import callable_material, digest, value_material
from .classify import TrialMetrics, campaign_verdict
from .report import summarize
from .runner import Campaign, CampaignResult, Scenario, TrialRecord

__all__ = [
    "BATCH_SCHEMA",
    "encode_batch",
    "decode_batch",
    "batch_key",
    "DistributedCampaign",
    "CENSUS_WORKLOADS",
    "build_census_workload",
    "census_shard_key",
    "encode_shard_reach",
    "decode_shard_reach",
    "compute_census_shard",
    "distributed_census",
    "worker_loop",
    "JOB_HANDLERS",
]

#: version stamp inside every packed batch/shard artifact; bump on any
#: layout change so stale artifacts decode-fail instead of lying
BATCH_SCHEMA = 1

#: queue names shared by schedulers and workers
CAMPAIGN_QUEUE = "campaign"
CENSUS_QUEUE = "census"

_RECORD_FIELDS = ("trial", "network_seed", "schedule_seed", "sim_time", "error")
_METRIC_FIELDS = (
    "outcome", "safety_ok", "converged", "detection_latency",
    "convergence_time", "availability", "faults_injected",
)


# -- packed columnar batch-result encoding -------------------------------------

def encode_batch(items: List[Tuple[TrialRecord, List[Dict[str, Any]]]]) -> bytes:
    """Pack ``[(TrialRecord, buffered events), ...]`` columnar: record
    and metric fields become parallel lists, and event dicts become
    ``(keyset id, value tuple)`` rows against a table of interned
    sorted-key tuples — the repeated keys of thousands of ``transition``
    events are stored once, and zlib squeezes the rest."""
    records = {
        field: [getattr(record, field) for record, _ in items]
        for field in _RECORD_FIELDS
    }
    metrics = {
        field: [getattr(record.metrics, field) for record, _ in items]
        for field in _METRIC_FIELDS
    }
    keysets: List[Tuple[str, ...]] = []
    ids: Dict[Tuple[str, ...], int] = {}
    events = []
    for _, trial_events in items:
        rows = []
        for event in trial_events:
            names = tuple(sorted(event))
            ksid = ids.get(names)
            if ksid is None:
                ksid = ids[names] = len(keysets)
                keysets.append(names)
            rows.append((ksid, tuple(event[name] for name in names)))
        events.append(rows)
    payload = {
        "v": BATCH_SCHEMA,
        "records": records,
        "metrics": metrics,
        "keysets": keysets,
        "events": events,
    }
    return zlib.compress(pickle.dumps(payload, protocol=4), 6)


def decode_batch(blob: bytes) -> List[Tuple[TrialRecord, List[Dict[str, Any]]]]:
    payload = pickle.loads(zlib.decompress(blob))
    if payload.get("v") != BATCH_SCHEMA:
        raise ValueError(
            f"batch artifact schema {payload.get('v')!r} != {BATCH_SCHEMA}"
        )
    records, metrics = payload["records"], payload["metrics"]
    keysets, events = payload["keysets"], payload["events"]
    items = []
    for i in range(len(records["trial"])):
        record = TrialRecord(
            metrics=TrialMetrics(
                **{field: metrics[field][i] for field in _METRIC_FIELDS}
            ),
            **{field: records[field][i] for field in _RECORD_FIELDS},
        )
        trial_events = [
            dict(zip(keysets[ksid], values)) for ksid, values in events[i]
        ]
        items.append((record, trial_events))
    return items


def batch_key(scenario: Scenario, spec, horizon: float, seed: int,
              trial_timeout: Optional[float], lo: int, hi: int) -> str:
    """Content key of one trial batch: scenario *content* (name, build
    callable, resolved schedule spec, horizon, sample period), campaign
    seed/timeout, and the trial range.  Identical inputs — on any
    machine — produce identical keys, which is what makes a re-run
    batch a store hit and a duplicate submission a queue no-op."""
    material = (
        "campaign_batch", BATCH_SCHEMA, scenario.name,
        callable_material(scenario.build), value_material(spec),
        horizon, scenario.sample_period, seed, trial_timeout, lo, hi,
    )
    return digest("campaign_batch", material)


# -- the distributed campaign scheduler ----------------------------------------

class DistributedCampaign:
    """Run a campaign through the ``repro serve`` job queue.

    Construction mirrors :class:`Campaign` (same options, same
    determinism) plus the queue knobs: ``base_url`` of the server,
    ``batch_size`` to pin batch sizes (default: adaptive toward
    ``target_lease_s`` seconds per batch), ``max_outstanding`` jobs in
    flight, and ``deadline_s`` as a scheduling safety valve.

    With no ``base_url``, an unreachable server, or a scenario that is
    not in the registry (workers rebuild scenarios by name), ``run()``
    degrades to the in-process :class:`Campaign` — identical results,
    ``self.degraded`` set for observability.
    """

    def __init__(
        self,
        scenario: Scenario,
        trials: int = 20,
        seed: int = 0,
        budget: Optional[int] = None,
        horizon: Optional[float] = None,
        trial_timeout: Optional[float] = None,
        stream=None,
        base_url: Optional[str] = None,
        batch_size: Optional[int] = None,
        target_lease_s: float = 5.0,
        max_outstanding: int = 8,
        poll_interval: float = 0.05,
        deadline_s: Optional[float] = None,
        fallback_workers: int = 1,
    ):
        self.campaign = Campaign(
            scenario, trials=trials, seed=seed, budget=budget,
            horizon=horizon, trial_timeout=trial_timeout, stream=stream,
            workers=fallback_workers,
        )
        self.base_url = base_url
        self.batch_size = batch_size
        self.target_lease_s = target_lease_s
        self.max_outstanding = max(1, int(max_outstanding))
        self.poll_interval = poll_interval
        self.deadline_s = deadline_s
        self.degraded = False
        self.batches_total = 0
        self.batches_from_store = 0
        self._wall_ms_sum = 0.0
        self._wall_ms_trials = 0
        self.client: Optional[JobClient] = None
        self.store: Optional[RemoteStore] = None

    # -- availability ----------------------------------------------------------
    def _registered(self) -> bool:
        from .scenarios import SCENARIOS

        return SCENARIOS.get(self.campaign.scenario.name) \
            is self.campaign.scenario

    def _available(self) -> bool:
        if self.base_url is None or not self._registered():
            return False
        return JobClient(self.base_url).healthz() is not None

    # -- driving ---------------------------------------------------------------
    def run(self) -> CampaignResult:
        c = self.campaign
        if not self._available():
            self.degraded = True
            return c.run()
        self.client = JobClient(self.base_url)
        self.store = RemoteStore(self.base_url)
        c.log.emit(
            "campaign_start",
            scenario=c.scenario.name,
            description=c.scenario.description,
            trials=c.trials,
            seed=c.seed,
            horizon=c.horizon,
            budget=c.spec.budget,
            fault_kinds=list(c.spec.kinds()),
        )
        records = self._run_batches()
        verdict = campaign_verdict([r.outcome for r in records])
        summary = summarize(
            c.scenario.name, verdict, [r.metrics for r in records]
        )
        c.log.emit("campaign_end", summary=summary)
        c.log.close()
        return CampaignResult(
            scenario=c.scenario.name, trials=records, summary=summary
        )

    def _batch_payload(self, lo: int, hi: int, key: str) -> Dict[str, Any]:
        c = self.campaign
        return {
            "kind": "campaign_batch",
            "scenario": c.scenario.name,
            "options": {
                "trials": c.trials,
                "seed": c.seed,
                "budget": c.spec.budget,
                "horizon": c.horizon,
                "trial_timeout": c.trial_timeout,
            },
            "lo": lo,
            "hi": hi,
            "result_key": key,
        }

    def _key(self, lo: int, hi: int) -> str:
        c = self.campaign
        return batch_key(
            c.scenario, c.spec, c.horizon, c.seed, c.trial_timeout, lo, hi
        )

    def _plan_size(self, remaining: int) -> int:
        if self.batch_size is not None:
            return max(1, min(int(self.batch_size), remaining))
        if not self._wall_ms_trials:
            # calibration wave: single-trial batches surface a per-trial
            # wall estimate as fast as the slowest worker round-trip
            return 1
        per_ms = max(self._wall_ms_sum / self._wall_ms_trials, 0.01)
        size = int(self.target_lease_s * 1000.0 / per_ms)
        return max(1, min(size, remaining))

    def _observe(self, items) -> None:
        for _, events in items:
            for event in events:
                if event.get("event") == "trial_end":
                    wall = event.get("wall_ms")
                    if wall is not None:
                        self._wall_ms_sum += float(wall)
                        self._wall_ms_trials += 1

    def _run_batches(self) -> List[TrialRecord]:
        c = self.campaign
        results: Dict[int, list] = {}
        pending: Dict[str, Tuple[int, int]] = {}
        next_trial = 0
        started = time.monotonic()
        status_tick = 0
        # adaptive poll: start fine-grained so sub-tick batches are
        # noticed immediately, back off toward ``poll_interval`` while
        # nothing completes (long batches should not be busy-polled)
        nap = min(0.002, self.poll_interval)
        while next_trial < c.trials or pending:
            while next_trial < c.trials and len(pending) < self.max_outstanding:
                lo = next_trial
                hi = min(c.trials, lo + self._plan_size(c.trials - lo))
                next_trial = hi
                key = self._key(lo, hi)
                self.batches_total += 1
                record_event("campaign-batches")
                blob = self.store.get(key)
                if blob is not None:
                    items = decode_batch(blob)
                    self._observe(items)
                    results[lo] = items
                    self.batches_from_store += 1
                    record_event("campaign-batch-hits")
                    continue
                self.client.submit(
                    CAMPAIGN_QUEUE, self._batch_payload(lo, hi, key),
                    job_id=key, result_key=key,
                )
                pending[key] = (lo, hi)
            if not pending:
                continue
            progressed = False
            status_tick += 1
            for key, (lo, hi) in list(pending.items()):
                blob = self.store.get(key)
                if blob is not None:
                    items = decode_batch(blob)
                    self._observe(items)
                    results[lo] = items
                    del pending[key]
                    progressed = True
                    # settle the queue even if the worker died after its
                    # PUT — completion is idempotent from any side
                    self.client.complete(
                        CAMPAIGN_QUEUE, key, "scheduler", result_key=key
                    )
                    continue
                if status_tick % 20 == 0:
                    job = self.client.job(CAMPAIGN_QUEUE, key)
                    if job is not None and job["state"] == "failed":
                        raise RuntimeError(
                            f"trial batch [{lo}, {hi}) failed permanently: "
                            f"{job['error']}"
                        )
            if progressed:
                nap = min(0.002, self.poll_interval)
            elif pending:
                if (
                    self.deadline_s is not None
                    and time.monotonic() - started > self.deadline_s
                ):
                    raise TimeoutError(
                        f"distributed campaign exceeded deadline of "
                        f"{self.deadline_s}s with {len(pending)} batches "
                        f"outstanding (are workers running?)"
                    )
                time.sleep(nap)
                nap = min(nap * 2.0, self.poll_interval)
        records: List[TrialRecord] = []
        for lo in sorted(results):
            for record, events in results[lo]:
                records.append(record)
                c._replay(events)
        return records


# -- distributed censuses ------------------------------------------------------

def _census_token_ring(size: int = 4, k: Optional[int] = None):
    from ..programs import token_ring

    model = token_ring.build(size, k)
    return model.ring, "all", ()


def _census_byzantine(k: int = 3):
    from ..programs import byzantine

    ngs = tuple(range(1, k + 1))
    model = byzantine.build_family(ngs)
    return model.ib, byzantine.initial_states(ngs), ()


#: census workloads workers can rebuild by name: ``name -> builder``
#: returning ``(program, start_states, fault_actions)``
CENSUS_WORKLOADS: Dict[str, Callable] = {
    "token_ring": _census_token_ring,
    "byzantine": _census_byzantine,
}


def build_census_workload(workload: str, params: Optional[Dict[str, Any]]):
    builder = CENSUS_WORKLOADS.get(workload)
    if builder is None:
        raise KeyError(
            f"unknown census workload {workload!r} "
            f"(have: {', '.join(sorted(CENSUS_WORKLOADS))})"
        )
    return builder(**(params or {}))


def census_shard_key(workload: str, params: Optional[Dict[str, Any]],
                     shard: int, shards: int, max_states: int) -> str:
    material = (
        "census_shard", BATCH_SCHEMA, workload,
        value_material(params or {}), shard, shards, max_states,
    )
    return digest("census_shard", material)


def encode_shard_reach(reach) -> bytes:
    """Pack a shard's reachable-code set: sorted int64 codes are
    delta-encoded (small, repetitive gaps) and zlib-compressed."""
    import numpy as np

    codes = np.asarray(reach.codes, dtype=np.int64)
    deltas = np.diff(codes, prepend=np.int64(0))
    payload = {
        "v": BATCH_SCHEMA,
        "levels": reach.levels,
        "edges": reach.edges,
        "n": int(codes.shape[0]),
        "blob": zlib.compress(deltas.tobytes(), 6),
    }
    return pickle.dumps(payload, protocol=4)


def decode_shard_reach(blob: bytes):
    import numpy as np

    from ..core.kernels import CodeReach

    payload = pickle.loads(blob)
    if payload.get("v") != BATCH_SCHEMA:
        raise ValueError(
            f"shard artifact schema {payload.get('v')!r} != {BATCH_SCHEMA}"
        )
    deltas = np.frombuffer(
        zlib.decompress(payload["blob"]), dtype=np.int64
    ).copy()
    assert deltas.shape[0] == payload["n"]
    codes = np.cumsum(deltas)
    return CodeReach(
        int(codes.shape[0]), payload["levels"], payload["edges"], codes
    )


def compute_census_shard(workload: str, params: Optional[Dict[str, Any]],
                         shard: int, shards: int,
                         max_states: Optional[int] = None):
    """Build the workload and BFS one shard of its start codes — the
    worker half of a distributed census.  The shard partition is
    ``numpy.array_split`` over the sorted start-code array, so scheduler
    and worker agree on slice boundaries without shipping arrays."""
    import numpy as np

    from ..core.kernels import census_start_codes, explore_code_shard

    program, starts, faults = build_census_workload(workload, params)
    _, codes = census_start_codes(program, starts)
    part = np.array_split(codes, shards)[shard]
    if max_states is None:
        return explore_code_shard(program, part, faults)
    return explore_code_shard(program, part, faults, max_states=max_states)


def distributed_census(
    workload: str,
    params: Optional[Dict[str, Any]] = None,
    shards: int = 4,
    base_url: Optional[str] = None,
    max_states: Optional[int] = None,
    poll_interval: float = 0.05,
    deadline_s: Optional[float] = None,
    store: Optional[BaseStore] = None,
):
    """Exact census of a named workload, sharded over the job queue.

    Returns ``(CodeReach, stats)`` where ``stats`` counts shards served
    from the store vs computed.  Every shard result is content-keyed,
    so a re-run census (after a crash, a killed worker, or on another
    machine sharing the store) is answered from hits — the merged state
    count is byte-identical either way because the merge is a set union
    over the shard reach sets.

    With no ``base_url`` the shards compute in-process against
    ``store`` (default: the active store, else a throwaway memory
    store) — same artifacts, same union, no queue.
    """
    from ..core.kernels import DEFAULT_MAX_CODES, merge_code_reaches

    if max_states is None:
        max_states = DEFAULT_MAX_CODES
    shards = max(1, int(shards))
    client: Optional[JobClient] = None
    if base_url is not None:
        client = JobClient(base_url)
        if client.healthz() is None:
            client = None
    if client is not None:
        shard_store: BaseStore = RemoteStore(base_url)
    elif store is not None:
        shard_store = store
    else:
        shard_store = store_backend.active_store() or MemoryStore()

    keys = [
        census_shard_key(workload, params, shard, shards, max_states)
        for shard in range(shards)
    ]
    reaches: Dict[int, Any] = {}
    stats = {"shards": shards, "from_store": 0, "computed": 0,
             "degraded": client is None}
    pending: Dict[str, int] = {}
    for shard, key in enumerate(keys):
        record_event("census-shards")
        blob = shard_store.get(key)
        if blob is not None:
            reaches[shard] = decode_shard_reach(blob)
            stats["from_store"] += 1
            record_event("census-shard-hits")
            continue
        if client is None:
            reach = compute_census_shard(
                workload, params, shard, shards, max_states
            )
            shard_store.put(key, encode_shard_reach(reach), "census_shard")
            reaches[shard] = reach
            stats["computed"] += 1
            continue
        client.submit(
            CENSUS_QUEUE,
            {
                "kind": "census_shard",
                "workload": workload,
                "params": params or {},
                "shard": shard,
                "shards": shards,
                "max_states": max_states,
                "result_key": key,
            },
            job_id=key,
            result_key=key,
        )
        pending[key] = shard

    started = time.monotonic()
    status_tick = 0
    nap = min(0.002, poll_interval)
    while pending:
        progressed = False
        status_tick += 1
        for key, shard in list(pending.items()):
            blob = shard_store.get(key)
            if blob is not None:
                reaches[shard] = decode_shard_reach(blob)
                del pending[key]
                stats["computed"] += 1
                progressed = True
                client.complete(CENSUS_QUEUE, key, "scheduler",
                                result_key=key)
                continue
            if status_tick % 20 == 0:
                job = client.job(CENSUS_QUEUE, key)
                if job is not None and job["state"] == "failed":
                    raise RuntimeError(
                        f"census shard {shard}/{shards} failed permanently: "
                        f"{job['error']}"
                    )
        if progressed:
            nap = min(0.002, poll_interval)
        elif pending:
            if (
                deadline_s is not None
                and time.monotonic() - started > deadline_s
            ):
                raise TimeoutError(
                    f"distributed census exceeded deadline of {deadline_s}s "
                    f"with {len(pending)} shards outstanding"
                )
            time.sleep(nap)
            nap = min(nap * 2.0, poll_interval)

    merged = merge_code_reaches(reaches[shard] for shard in range(shards))
    return merged, stats


# -- the worker loop -----------------------------------------------------------

def _handle_campaign_batch(payload: Dict[str, Any],
                           store: BaseStore) -> str:
    from .scenarios import get_scenario

    result_key = payload["result_key"]
    if store.get(result_key) is not None:
        # idempotent re-run (a re-leased batch another worker finished):
        # the content-addressed artifact already exists, nothing to do
        record_event("batch-replays")
        return result_key
    options = payload["options"]
    campaign = Campaign(
        get_scenario(payload["scenario"]),
        trials=options["trials"],
        seed=options["seed"],
        budget=options.get("budget"),
        horizon=options.get("horizon"),
        trial_timeout=options.get("trial_timeout"),
        stream=None,
        workers=1,
    )
    items = [
        campaign._buffered_trial(trial)
        for trial in range(payload["lo"], payload["hi"])
    ]
    store.put(result_key, encode_batch(items), "campaign_batch")
    return result_key


def _handle_census_shard(payload: Dict[str, Any], store: BaseStore) -> str:
    result_key = payload["result_key"]
    if store.get(result_key) is not None:
        record_event("batch-replays")
        return result_key
    reach = compute_census_shard(
        payload["workload"], payload.get("params") or {},
        payload["shard"], payload["shards"], payload["max_states"],
    )
    store.put(result_key, encode_shard_reach(reach), "census_shard")
    return result_key


JOB_HANDLERS: Dict[str, Callable[[Dict[str, Any], BaseStore], str]] = {
    "campaign_batch": _handle_campaign_batch,
    "census_shard": _handle_census_shard,
}


def worker_loop(
    base_url: str,
    queues: Tuple[str, ...] = (CAMPAIGN_QUEUE, CENSUS_QUEUE),
    worker_id: Optional[str] = None,
    once: bool = False,
    lease_s: float = 60.0,
    poll_floor: float = 0.05,
    poll_cap: float = 2.0,
    announce: Optional[Callable[[str], None]] = None,
    stop=None,
) -> int:
    """Pull-and-run loop of ``repro worker``: lease jobs round-robin
    across ``queues``, dispatch on the payload ``kind``, publish the
    result artifact, complete the lease.  Idle leases long-poll: the
    server parks each request for up to ``poll_cap`` seconds (split
    across the queues), so a fresh job is picked up within tens of
    milliseconds while an idle fleet holds one open request each
    instead of hammering the queue.  Between empty sweeps the loop
    additionally sleeps a full-jitter interval up to ``poll_floor``
    so reconnecting workers never synchronize into a stampede;
    transport errors retry with exponential backoff + jitter inside
    :class:`~repro.store.jobs.JobClient`.

    ``once=True`` returns at the first fully-empty sweep (CI drains);
    ``stop`` (a ``threading.Event``) ends the loop cooperatively.
    Returns the number of jobs completed.  A job whose handler raises
    is reported via ``fail`` — the queue re-leases it elsewhere until
    the attempt cap parks it as failed.
    """
    import random

    client = JobClient(base_url)
    store = RemoteStore(base_url)
    worker = worker_id or default_worker_id()
    handled = 0
    wait_s = 0.0 if once else poll_cap / max(1, len(queues))
    while stop is None or not stop.is_set():
        leased = None
        queue = None
        for queue in queues:
            leased = client.lease(queue, worker, lease_s, wait_s=wait_s)
            if leased is not None:
                break
        if leased is None:
            if once:
                break
            time.sleep(random.uniform(0.0, poll_floor))
            continue
        payload = leased.get("payload") or {}
        handler = JOB_HANDLERS.get(payload.get("kind"))
        try:
            if handler is None:
                raise ValueError(f"unknown job kind {payload.get('kind')!r}")
            result_key = handler(payload, store)
            client.complete(queue, leased["id"], worker, result_key)
            handled += 1
            if announce is not None:
                announce(
                    f"[{worker}] {queue} job {leased['id'][:12]} done "
                    f"({payload.get('kind')})"
                )
        except Exception as exc:
            client.fail(
                queue, leased["id"], worker, f"{type(exc).__name__}: {exc}"
            )
            if announce is not None:
                announce(
                    f"[{worker}] {queue} job {leased['id'][:12]} failed: "
                    f"{type(exc).__name__}: {exc}"
                )
    return handled
