"""Lint targets for every bundled catalogue program.

Each entry of :data:`LINT_CATALOGUE` mirrors an entry of
:data:`repro.cli.CATALOGUE` and expands into one or more
:class:`~repro.analysis.linter.LintTarget`\\ s — one per program variant
the entry verifies (``memory_access`` contributes ``p``/``pf``/``pn``/
``pm``, ``tmr`` contributes ``ir``/``dr_ir``/``tmr``, …).  The targets
carry the same invariants, spans, and fault classes the ``verify``
subcommand uses, so ``repro lint --all --strict`` is a static
pre-flight over exactly the artifacts the exhaustive certificates run
on.

Classification notes (the interesting part of each target):

- ``correctors`` lists reset-style corrector actions — their guards
  must be false everywhere inside the invariant, and the strict
  semantic interference rule (``DC203``) enforces that.
- ``components`` lists composed detector/corrector actions that
  *legitimately* execute inside the invariant (a detector setting its
  witness, TMR's majority vote, the modelled Byzantine behaviour):
  they are exempt from the start-set advisory but not held to the
  strict condition.
- A span is only attached where it is actually closed under the
  target's action set: ``T_io`` is not closed under the *unguarded*
  ``IR``, so the ``tmr/ir`` target carries the invariant alone.

The catalogue is **coverage-checked** against :mod:`repro.programs`:
every builder registers (via :func:`lint_entry`) which scenario modules
it covers, and :func:`all_lint_targets` raises
:class:`CatalogueCoverageError` if a bundled scenario module is neither
covered nor explicitly exempted in :data:`EXEMPT_MODULES`.  Adding a
new scenario without a lint entry therefore fails the CI self-lint
instead of silently skipping it.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Sequence

from ..core.predicate import TRUE
from .linter import LintTarget

__all__ = [
    "LINT_CATALOGUE",
    "EXEMPT_MODULES",
    "CatalogueCoverageError",
    "lint_entry",
    "lint_targets",
    "all_lint_targets",
    "uncovered_modules",
]

#: catalogue name -> builder of that entry's lint targets (filled by
#: :func:`lint_entry`; kept a plain dict so tests can monkeypatch it)
LINT_CATALOGUE: Dict[str, Callable[[], List[LintTarget]]] = {}

#: catalogue name -> the repro.programs modules the entry self-lints
_COVERS: Dict[str, tuple] = {}

#: scenario modules that deliberately have no lint entry, with the
#: recorded reason (shown when coverage enforcement trips)
EXEMPT_MODULES: Dict[str, str] = {
    "oral_messages": (
        "direct EIG protocol simulation (run_oral_messages); it has no "
        "guarded-command Program surface for the linter to check"
    ),
}


class CatalogueCoverageError(RuntimeError):
    """A bundled scenario module is neither lint-covered nor exempt."""


def lint_entry(name: str, covers: Sequence[str] = ()):
    """Register a lint-target builder under ``name``.

    ``covers`` names the :mod:`repro.programs` modules whose programs
    the entry lints; the coverage check in :func:`all_lint_targets`
    unions these over the whole catalogue.
    """

    def register(builder: Callable[[], List[LintTarget]]):
        LINT_CATALOGUE[name] = builder
        _COVERS[name] = tuple(covers)
        return builder

    return register


@lint_entry("memory_access", covers=("memory_access",))
def _memory_access() -> List[LintTarget]:
    from ..programs import memory_access

    m = memory_access.build()
    return [
        # the intolerant program: no faults, no span — but its invariant
        # must still be closed and its spec representable
        LintTarget(name="memory_access/p", program=m.p,
                   spec=m.spec, invariant=m.S_p),
        # fail-safe: pf1 is a *detector* (it raises the witness Z1
        # inside the invariant), so it is advisory, not strict
        LintTarget(name="memory_access/pf", program=m.pf,
                   spec=m.spec, invariant=m.S_pf, span=m.T_pf,
                   faults=m.fault_before_witness,
                   components=("pf1",)),
        # nonmasking: pn1 restores mem and must be disabled inside S_pn
        LintTarget(name="memory_access/pn", program=m.pn,
                   spec=m.spec, invariant=m.S_pn, span=m.T_pn,
                   faults=m.fault_anytime,
                   correctors=("pn1",)),
        # masking: corrector pm1 strict, detector pm2 advisory
        LintTarget(name="memory_access/pm", program=m.pm,
                   spec=m.spec, invariant=m.S_pm, span=m.T_pm,
                   faults=m.fault_before_witness,
                   correctors=("pm1",), components=("pm2",)),
    ]


@lint_entry('tmr', covers=('tmr',))
def _tmr() -> List[LintTarget]:
    from ..programs import tmr

    t = tmr.build()
    n = tmr.build_nmr(5)
    return [
        # T_io is not closed under the unguarded IR (IR1 may copy the
        # corrupted input), so the intolerant target gets S_io only
        LintTarget(name="tmr/ir", program=t.ir,
                   spec=t.spec, invariant=t.invariant),
        LintTarget(name="tmr/dr_ir", program=t.dr_ir,
                   spec=t.spec, invariant=t.invariant, span=t.span,
                   faults=t.faults),
        # CR1/CR2 vote inside the invariant (out=⊥ there), so they are
        # inline correctors — advisory, not reset-style
        LintTarget(name="tmr/tmr", program=t.tmr,
                   spec=t.spec, invariant=t.invariant, span=t.span,
                   faults=t.faults,
                   components=("CR1", "CR2")),
        # the n-way voter backs the symmetry quotient benchmarks; its
        # S_5 declaration (blocks + VOTE orbit) is what DC106 validates
        LintTarget(name="tmr/nmr5", program=n.nmr,
                   spec=n.spec, invariant=n.invariant, span=n.span,
                   faults=n.faults,
                   components=tuple(a.name for a in n.nmr.actions)),
    ]


@lint_entry('byzantine', covers=('byzantine',))
def _byzantine() -> List[LintTarget]:
    from ..programs import byzantine

    b = byzantine.build()
    lies = tuple(
        a.name for a in b.failsafe.actions if ".lie" in a.name
    )
    return [
        LintTarget(name="byzantine/failsafe", program=b.failsafe,
                   spec=b.spec, invariant=b.invariant, span=b.span,
                   faults=b.faults,
                   components=lies),
        # the CB guard needs d.j ≠ majority, which is false everywhere
        # inside S_byz — strict correctors
        LintTarget(name="byzantine/masking", program=b.masking,
                   spec=b.spec, invariant=b.invariant, span=b.span,
                   faults=b.faults,
                   correctors=("CB1.1", "CB1.2", "CB1.3"),
                   components=lies),
    ]


@lint_entry('token_ring', covers=('token_ring',))
def _token_ring() -> List[LintTarget]:
    from ..programs import token_ring

    r = token_ring.build(4)
    return [
        # self-stabilizing: the move actions run inside the invariant
        # too (the token holder moves), so none are correctors
        LintTarget(name="token_ring", program=r.ring,
                   spec=r.spec, invariant=r.invariant, span=TRUE,
                   faults=r.faults),
    ]


@lint_entry('mutual_exclusion', covers=('mutual_exclusion',))
def _mutual_exclusion() -> List[LintTarget]:
    from ..programs import mutual_exclusion

    x = mutual_exclusion.build(3)
    return [
        LintTarget(name="mutual_exclusion/intolerant",
                   program=x.intolerant,
                   spec=x.spec, invariant=x.invariant),
        LintTarget(name="mutual_exclusion/tolerant", program=x.tolerant,
                   spec=x.spec, invariant=x.invariant, span=x.span,
                   faults=x.faults,
                   correctors=("regenerate",)),
        # the duplication fault-class with its own span; regenerate and
        # dedup both fire only outside "exactly one token"
        LintTarget(name="mutual_exclusion/multitolerant",
                   program=x.multitolerant,
                   spec=x.spec_strong, invariant=x.invariant,
                   span=x.span_duplication, faults=x.duplication,
                   correctors=("regenerate", "dedup")),
    ]


@lint_entry('leader_election', covers=('leader_election',))
def _leader_election() -> List[LintTarget]:
    from ..programs import leader_election

    e = leader_election.build((3, 1, 2))
    return [
        # elect actions are the stabilizing corrector: all candidates
        # already hold max(ids) inside the invariant
        LintTarget(name="leader_election", program=e.program,
                   spec=e.spec, invariant=e.invariant, span=TRUE,
                   faults=e.faults,
                   correctors=tuple(
                       a.name for a in e.program.actions
                   )),
    ]


@lint_entry('termination_detection', covers=('termination_detection',))
def _termination_detection() -> List[LintTarget]:
    from ..programs import termination_detection

    t = termination_detection.build(3)
    scanner = tuple(
        a.name for a in t.detector.actions if a.name.startswith("scan")
    )
    return [
        # a pure detector: no invariant/faults, lint from U_td; with no
        # invariant the interference rule falls back to the frame-race
        # audit, which (correctly) flags the dirty-bit handshake
        LintTarget(name="termination_detection", program=t.detector,
                   spec=t.spec, start=t.from_,
                   components=scanner),
    ]


@lint_entry('distributed_reset', covers=('distributed_reset',))
def _distributed_reset() -> List[LintTarget]:
    from ..programs import distributed_reset

    d = distributed_reset.build(3, 2)
    return [
        # the whole program is one distributed corrector: every action
        # is disabled in the all-clean invariant
        LintTarget(name="distributed_reset", program=d.program,
                   spec=d.spec, invariant=d.invariant, span=d.span,
                   faults=d.faults,
                   correctors=tuple(
                       a.name for a in d.program.actions
                   )),
    ]


@lint_entry('tree_maintenance', covers=('tree_maintenance',))
def _tree_maintenance() -> List[LintTarget]:
    from ..programs import tree_maintenance

    t = tree_maintenance.build()
    return [
        LintTarget(name="tree_maintenance", program=t.program,
                   spec=t.spec, invariant=t.invariant, span=TRUE,
                   faults=t.faults,
                   correctors=tuple(
                       a.name for a in t.program.actions
                   )),
    ]


@lint_entry('barrier', covers=('barrier',))
def _barrier() -> List[LintTarget]:
    from ..programs import barrier

    b = barrier.build(3)
    re_announce = tuple(
        a.name for a in b.tolerant.actions
        if a.name.startswith("re_announce")
    )
    return [
        LintTarget(name="barrier/intolerant", program=b.intolerant,
                   spec=b.spec, invariant=b.invariant, span=b.span,
                   faults=b.faults),
        # flags mirror arrival inside S_barrier, so re-announce is
        # disabled there — strict correctors
        LintTarget(name="barrier/tolerant", program=b.tolerant,
                   spec=b.spec, invariant=b.invariant, span=b.span,
                   faults=b.faults,
                   correctors=re_announce),
    ]


@lint_entry('failure_detector')
def _failure_detector() -> List[LintTarget]:
    from ..failure_detectors import build

    fd = build(limit=2)
    return [
        LintTarget(name="failure_detector", program=fd.program,
                   spec=None, start=fd.from_, faults=fd.faults),
    ]


def uncovered_modules(
    modules: Optional[Iterable[str]] = None,
) -> List[str]:
    """Scenario modules with neither a covering lint entry nor an
    exemption.  ``modules`` defaults to the live
    :func:`repro.programs.program_modules` listing; tests inject their
    own to exercise the enforcement without adding files.
    """
    if modules is None:
        from ..programs import program_modules

        modules = program_modules()
    covered = {
        module
        for name, modules_of in _COVERS.items()
        if name in LINT_CATALOGUE
        for module in modules_of
    }
    return sorted(
        module for module in modules
        if module not in covered and module not in EXEMPT_MODULES
    )


def lint_targets(name: str) -> List[LintTarget]:
    """The lint targets of one catalogue entry."""
    try:
        builder = LINT_CATALOGUE[name]
    except KeyError:
        raise KeyError(
            f"unknown catalogue entry {name!r}; "
            f"choose from {sorted(LINT_CATALOGUE)}"
        ) from None
    return builder()


def all_lint_targets() -> List[LintTarget]:
    """Every lint target of every catalogue entry, in catalogue order.

    Raises :class:`CatalogueCoverageError` if a bundled scenario module
    has no covering entry and no exemption — the self-lint refuses to
    report success while silently skipping a scenario.
    """
    missing = uncovered_modules()
    if missing:
        raise CatalogueCoverageError(
            f"scenario module(s) {missing} in repro.programs have no "
            f"lint catalogue entry; add a lint_entry(..., covers=...) "
            f"builder in repro.analysis.catalogue or record an "
            f"exemption in EXEMPT_MODULES with a reason"
        )
    return [t for name in LINT_CATALOGUE for t in lint_targets(name)]
