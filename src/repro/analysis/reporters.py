"""Render :class:`~repro.analysis.diagnostics.LintReport`\\ s.

Three reporters, all writing to a file-like object:

- :func:`render_text` — the human-facing format used by ``repro
  lint``: one line per diagnostic (``target: CODE severity [action]
  message``), an optional ``hint:`` continuation, and a per-run
  summary line (including the number of proven facts).
- :func:`render_json` — one JSON document for the whole run
  (``{"reports": [...], "summary": {...}}``), for CI artifacts and
  editor integrations.  The shape is stable: diagnostics serialize via
  :meth:`Diagnostic.to_dict`, which never drops keys.
- :func:`render_sarif` — SARIF 2.1.0 for code-scanning services
  (GitHub uploads it for PR annotations).  Diagnostics become
  ``results`` with stable rule ids; since the lint targets are built
  programs rather than source files, locations are logical
  (``target::action``) anchored on the catalogue module.
"""

from __future__ import annotations

import json
from typing import Dict, List, Sequence, TextIO

from .diagnostics import Diagnostic, LintReport, Severity

__all__ = [
    "render_text",
    "render_json",
    "render_sarif",
    "summarize",
    "worst_severity",
]


def summarize(reports: Sequence[LintReport]) -> dict:
    """Aggregate counts over a run, for both reporters."""
    counts = {"error": 0, "warning": 0, "info": 0, "suppressed": 0}
    proven = 0
    for report in reports:
        for diagnostic in report.diagnostics:
            if diagnostic.suppressed:
                counts["suppressed"] += 1
            else:
                counts[str(diagnostic.severity)] += 1
        proven += len(getattr(report, "proofs", ()))
    counts["proven"] = proven
    counts["targets"] = len(reports)
    return counts


def _text_line(diagnostic: Diagnostic) -> str:
    location = diagnostic.target or "<program>"
    if diagnostic.action:
        location += f" [{diagnostic.action}]"
    flags = ""
    if diagnostic.sampled:
        flags += " (sampled)"
    if diagnostic.suppressed:
        flags += " (suppressed)"
    return (
        f"{location}: {diagnostic.code} {diagnostic.severity}{flags}: "
        f"{diagnostic.message}"
    )


def render_text(
    reports: Sequence[LintReport],
    out: TextIO,
    verbose: bool = False,
) -> None:
    """One line per diagnostic plus a summary.

    Suppressed diagnostics and hints only appear with ``verbose``;
    clean targets print a single ``ok`` line so a full-catalogue run
    shows its coverage.
    """
    for report in reports:
        shown = [
            d for d in report.diagnostics
            if verbose or not d.suppressed
        ]
        if not shown:
            out.write(f"{report.target}: ok\n")
        else:
            for diagnostic in shown:
                out.write(_text_line(diagnostic) + "\n")
                if verbose and diagnostic.hint:
                    out.write(f"    hint: {diagnostic.hint}\n")
                if verbose and diagnostic.suppressed:
                    out.write(
                        f"    suppressed: {diagnostic.justification}\n"
                    )
                if verbose and diagnostic.evidence:
                    out.write(f"    evidence: {diagnostic.evidence}\n")
        if verbose:
            for proof in getattr(report, "proofs", ()):
                out.write(f"    {proof.format()}\n")
    counts = summarize(reports)
    proven = ""
    if counts.get("proven"):
        proven = f", {counts['proven']} proven fact(s)"
    out.write(
        f"{counts['targets']} target(s): "
        f"{counts['error']} error(s), {counts['warning']} warning(s), "
        f"{counts['info']} info, {counts['suppressed']} suppressed"
        f"{proven}\n"
    )


def render_json(reports: Sequence[LintReport], out: TextIO) -> None:
    """The whole run as one JSON document."""
    document = {
        "reports": [report.to_dict() for report in reports],
        "summary": summarize(reports),
    }
    json.dump(document, out, indent=2, sort_keys=True)
    out.write("\n")


#: SARIF levels by severity (SARIF has no "info" result level; "note"
#: is its advisory tier)
_SARIF_LEVELS = {
    Severity.ERROR: "error",
    Severity.WARNING: "warning",
    Severity.INFO: "note",
}

#: the artifact results anchor on: the lint targets are built programs,
#: not files, and this module is where every target is declared
_CATALOGUE_URI = "src/repro/analysis/catalogue.py"


def _sarif_result(diagnostic: Diagnostic) -> dict:
    fqn = diagnostic.target or "<program>"
    if diagnostic.action:
        fqn += f"::{diagnostic.action}"
    result: dict = {
        "ruleId": diagnostic.code,
        "level": _SARIF_LEVELS[diagnostic.severity],
        "message": {"text": diagnostic.message},
        "locations": [{
            "physicalLocation": {
                "artifactLocation": {"uri": _CATALOGUE_URI},
                "region": {"startLine": 1},
            },
            "logicalLocations": [{"fullyQualifiedName": fqn}],
        }],
        "properties": {
            "target": diagnostic.target,
            "sampled": diagnostic.sampled,
        },
    }
    if diagnostic.action:
        result["properties"]["action"] = diagnostic.action
    if diagnostic.evidence:
        result["properties"]["evidence"] = diagnostic.evidence
    if diagnostic.suppressed:
        result["suppressions"] = [{
            "kind": "inSource",
            "justification": diagnostic.justification or "",
        }]
    return result


def render_sarif(reports: Sequence[LintReport], out: TextIO) -> None:
    """The whole run as one SARIF 2.1.0 document."""
    rules: Dict[str, dict] = {}
    results: List[dict] = []
    for report in reports:
        for diagnostic in report.diagnostics:
            rules.setdefault(diagnostic.code, {
                "id": diagnostic.code,
                "name": diagnostic.rule,
                "shortDescription": {"text": diagnostic.rule},
                "helpUri": "docs/static_analysis.md",
            })
            results.append(_sarif_result(diagnostic))
    document = {
        "$schema": (
            "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
            "master/Schemata/sarif-schema-2.1.0.json"
        ),
        "version": "2.1.0",
        "runs": [{
            "tool": {
                "driver": {
                    "name": "repro-lint",
                    "informationUri": "docs/static_analysis.md",
                    "rules": [rules[code] for code in sorted(rules)],
                },
            },
            "results": results,
            "properties": {"summary": summarize(reports)},
        }],
    }
    json.dump(document, out, indent=2, sort_keys=True)
    out.write("\n")


def worst_severity(reports: Sequence[LintReport]):
    """The highest unsuppressed severity across a run, or ``None``."""
    worst = None
    for report in reports:
        for diagnostic in report.diagnostics:
            if diagnostic.suppressed:
                continue
            if worst is None or diagnostic.severity > worst:
                worst = diagnostic.severity
    return worst
