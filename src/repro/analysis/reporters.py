"""Render :class:`~repro.analysis.diagnostics.LintReport`\\ s.

Two reporters, both writing to a file-like object:

- :func:`render_text` — the human-facing format used by ``repro
  lint``: one line per diagnostic (``target: CODE severity [action]
  message``), an optional ``hint:`` continuation, and a per-run
  summary line.
- :func:`render_json` — one JSON document for the whole run
  (``{"reports": [...], "summary": {...}}``), for CI artifacts and
  editor integrations.  The shape is stable: diagnostics serialize via
  :meth:`Diagnostic.to_dict`, which never drops keys.
"""

from __future__ import annotations

import json
from typing import Sequence, TextIO

from .diagnostics import Diagnostic, LintReport, Severity

__all__ = ["render_text", "render_json", "summarize", "worst_severity"]


def summarize(reports: Sequence[LintReport]) -> dict:
    """Aggregate counts over a run, for both reporters."""
    counts = {"error": 0, "warning": 0, "info": 0, "suppressed": 0}
    for report in reports:
        for diagnostic in report.diagnostics:
            if diagnostic.suppressed:
                counts["suppressed"] += 1
            else:
                counts[str(diagnostic.severity)] += 1
    counts["targets"] = len(reports)
    return counts


def _text_line(diagnostic: Diagnostic) -> str:
    location = diagnostic.target or "<program>"
    if diagnostic.action:
        location += f" [{diagnostic.action}]"
    flags = ""
    if diagnostic.sampled:
        flags += " (sampled)"
    if diagnostic.suppressed:
        flags += " (suppressed)"
    return (
        f"{location}: {diagnostic.code} {diagnostic.severity}{flags}: "
        f"{diagnostic.message}"
    )


def render_text(
    reports: Sequence[LintReport],
    out: TextIO,
    verbose: bool = False,
) -> None:
    """One line per diagnostic plus a summary.

    Suppressed diagnostics and hints only appear with ``verbose``;
    clean targets print a single ``ok`` line so a full-catalogue run
    shows its coverage.
    """
    for report in reports:
        shown = [
            d for d in report.diagnostics
            if verbose or not d.suppressed
        ]
        if not shown:
            out.write(f"{report.target}: ok\n")
            continue
        for diagnostic in shown:
            out.write(_text_line(diagnostic) + "\n")
            if verbose and diagnostic.hint:
                out.write(f"    hint: {diagnostic.hint}\n")
            if verbose and diagnostic.suppressed:
                out.write(
                    f"    suppressed: {diagnostic.justification}\n"
                )
            if verbose and diagnostic.evidence:
                out.write(f"    evidence: {diagnostic.evidence}\n")
    counts = summarize(reports)
    out.write(
        f"{counts['targets']} target(s): "
        f"{counts['error']} error(s), {counts['warning']} warning(s), "
        f"{counts['info']} info, {counts['suppressed']} suppressed\n"
    )


def render_json(reports: Sequence[LintReport], out: TextIO) -> None:
    """The whole run as one JSON document."""
    document = {
        "reports": [report.to_dict() for report in reports],
        "summary": summarize(reports),
    }
    json.dump(document, out, indent=2, sort_keys=True)
    out.write("\n")


def worst_severity(reports: Sequence[LintReport]):
    """The highest unsuppressed severity across a run, or ``None``."""
    worst = None
    for report in reports:
        for diagnostic in report.diagnostics:
            if diagnostic.suppressed:
                continue
            if worst is None or diagnostic.severity > worst:
                worst = diagnostic.severity
    return worst
