"""Guard satisfiability: dead guards and never-enabled actions.

An action whose guard is false on every schema-consistent valuation is
dead code — it can never contribute a transition, which in a
guarded-command model almost always means a typo in the guard (a
conjunction that accidentally became unsatisfiable, a comparison against
a value outside the domain).  Weaker variants are worth surfacing too:

- ``DC301``: the guard is false on every probed valuation.  An error on
  an exhaustive probe (the action is provably dead), a warning on a
  sampled one (never observed enabled).
- ``DC302`` (info): the guard is satisfiable, but disjoint from the
  target's start set (``from_``/invariant).  Detector and corrector
  actions are *designed* to be disabled inside the invariant
  (interference freedom), so this rule skips declared component
  actions; for base-program actions it usually means the action only
  runs after faults.
- ``DC303`` (info): the action is enabled somewhere but every enabled
  probed valuation yields only self-loops — the action never changes
  the state (a detector that witnesses nothing, or a statement that
  re-assigns current values).
- ``DC001`` (error): the guard or statement raised during probing.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from ..core.action import Action
from ..core.predicate import Predicate
from .diagnostics import Diagnostic, Severity
from .probe import ProbeSet, raw_successors

__all__ = ["check_guards"]

RULE = "guard-satisfiability"


def check_guards(
    actions: Sequence[Action],
    probe: ProbeSet,
    target: str = "",
    start: Optional[Predicate] = None,
    component_names: Iterable[str] = (),
    kind: str = "action",
    facts: Optional[Dict[str, "GuardFacts"]] = None,
) -> List[Diagnostic]:
    """Guard diagnostics for ``actions`` over ``probe`` (see module doc).

    ``kind`` labels the actions in messages (``"action"`` for program
    actions, ``"fault action"`` for a fault class); a dead fault action
    means the modelled fault can never strike, which is as suspicious as
    a dead program action.

    ``facts`` carries the symbolic analyzer's proven verdicts (by action
    name, :class:`~.symbolic.GuardFacts`).  A proven-dead action is
    skipped outright (its ``DC301`` was already emitted as a proof, not
    a sample); a proven satisfiability/stutter verdict removes the
    corresponding probe scan and diagnostic here.  ``DC302`` stays
    probe-based either way: it reasons about the start *predicate*,
    which has no IR.
    """
    component_names = frozenset(component_names)
    diagnostics: List[Diagnostic] = []
    start_fn = start.fn if start is not None else None
    facts = facts or {}

    for action in actions:
        fact = facts.get(action.name)
        known_satisfiable = fact.satisfiable if fact is not None else None
        known_changes = fact.changes_state if fact is not None else None
        if known_satisfiable is False:
            # proven dead: DC301 came from the symbolic pass, and the
            # enabled-dependent rules below have nothing to probe
            continue

        enabled_anywhere = False
        enabled_in_start = False
        changes_state = False
        failure: Optional[Diagnostic] = None
        for state in probe.states:
            try:
                if not action.guard.fn(state):
                    continue
                enabled_anywhere = True
                if start_fn is not None and not enabled_in_start:
                    enabled_in_start = bool(start_fn(state))
                if not changes_state and known_changes is None:
                    for successor in raw_successors(action, state):
                        if successor != state:
                            changes_state = True
                            break
            except Exception as exc:
                failure = Diagnostic(
                    code="DC001",
                    severity=Severity.ERROR,
                    rule=RULE,
                    message=(
                        f"guard or statement of {action.name!r} raised "
                        f"{type(exc).__name__}: {exc}"
                    ),
                    target=target,
                    action=action.name,
                    evidence=repr(state),
                    hint="guards and statements must be total on the full "
                         "Cartesian state space",
                )
                break
            if (
                enabled_anywhere
                and (changes_state or known_changes is not None)
                and (start_fn is None or enabled_in_start)
            ):
                break  # nothing left to learn about this action
        if failure is not None:
            diagnostics.append(failure)
            continue

        if not enabled_anywhere:
            if known_satisfiable is None:
                diagnostics.append(Diagnostic(
                    code="DC301",
                    severity=Severity.ERROR if probe.exhaustive
                    else Severity.WARNING,
                    rule=RULE,
                    message=(
                        f"guard of {kind} {action.name!r} is "
                        + ("unsatisfiable: the action is dead code"
                           if probe.exhaustive else
                           f"false on all {len(probe)} sampled valuations")
                    ),
                    target=target,
                    action=action.name,
                    hint="check the guard against the variable domains",
                    sampled=not probe.exhaustive,
                ))
            # proven satisfiable but never observed enabled on a sampled
            # probe: the enabled-dependent advisories below would be
            # guessing, so stop here either way
            continue

        if (
            start_fn is not None
            and not enabled_in_start
            and action.name not in component_names
        ):
            diagnostics.append(Diagnostic(
                code="DC302",
                severity=Severity.INFO,
                rule=RULE,
                message=(
                    f"{kind} {action.name!r} is never enabled in the "
                    f"start set ({start.name}); it only runs outside it"
                ),
                target=target,
                action=action.name,
                hint="expected for recovery actions; otherwise check the "
                     "guard against the start predicate",
                sampled=not probe.exhaustive,
            ))

        if not changes_state and known_changes is None:
            diagnostics.append(Diagnostic(
                code="DC303",
                severity=Severity.INFO,
                rule=RULE,
                message=(
                    f"{kind} {action.name!r} is enabled but never changes "
                    f"the state on any probed valuation (self-loops only)"
                ),
                target=target,
                action=action.name,
                hint="a pure stutter action; drop it unless the self-loop "
                     "is intentional",
                sampled=not probe.exhaustive,
            ))

    return diagnostics
