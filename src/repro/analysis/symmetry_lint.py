"""Symmetry-declaration soundness: the ``DC106`` rule.

A symmetry declaration (:mod:`repro.core.symmetry`) is a *claim* that
every group element is an automorphism of the transition relation of
``p [] F`` — quotient exploration trusts it, so a wrong declaration
silently merges states that behave differently.  This rule validates
the claim the same way the frame rules validate ``reads``/``writes``
declarations: differentially, on the probe set, from first principles
(:func:`~repro.analysis.probe.raw_successors` bypasses every memo).

For each generator ``g`` and probed state ``s``:

- **program actions** are checked at *orbit* granularity: every edge
  ``s --a--> t`` must map to an edge ``g·s --a'--> g·t`` for some
  action ``a'`` in ``a``'s declared orbit
  (:meth:`~repro.core.symmetry.Symmetry.orbit_of`).  An undeclared
  action has a singleton orbit — it claims to be a *fixed point* of the
  group — so this check also catches a missing ``action_orbits``
  declaration, which would make the quotient's orbit-granular fairness
  test unsound;
- **fault actions** are checked as a set: the image of a fault edge
  must be a fault edge (fault actions carry no fairness obligations, so
  per-orbit resolution is not needed — Dijkstra's ring is the motivating
  case, where value translation maps the fault ``x0 := 2`` onto the
  *different* fault ``x0 := 3``).

A violation is an error: the declaration must be fixed (or removed),
not suppressed.  Like all lint rules this is a probe, not a proof —
the exhaustive net is ``tests/test_symmetry_parity.py``.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..core.action import Action
from ..core.faults import FaultClass
from ..core.program import Program
from ..core.state import State
from .diagnostics import Diagnostic, Severity
from .probe import ProbeSet, raw_successors

__all__ = ["check_symmetry"]

RULE = "symmetry-soundness"


def check_symmetry(
    program: Program,
    probe: ProbeSet,
    target: str = "",
    faults: Optional[FaultClass] = None,
    limit: int = 256,
) -> List[Diagnostic]:
    """``DC106`` diagnostics for ``program``'s symmetry declaration.

    Silently returns no findings when the program declares no symmetry.
    ``limit`` bounds the probed states per generator (the check is
    quadratic in successors, so it gets a tighter budget than the
    pointwise rules).
    """
    symmetry = program.symmetry
    if symmetry is None:
        return []
    diagnostics: List[Diagnostic] = []
    states = probe.states[:limit]
    sampled = not probe.exhaustive or len(states) < len(probe.states)

    by_name = {action.name: action for action in program.actions}
    for generator in symmetry.generators():
        apply = generator.apply
        for action in program.actions:
            orbit = symmetry.orbit_of(action.name)
            partners = tuple(
                by_name[name] for name in sorted(orbit) if name in by_name
            )
            witness = _orbit_mismatch(action, partners, apply, states)
            if witness is None:
                continue
            s, t = witness
            declared = (
                f"declared orbit {{{', '.join(sorted(orbit))}}}"
                if len(orbit) > 1 else "claimed fixed (no declared orbit)"
            )
            diagnostics.append(Diagnostic(
                code="DC106",
                severity=Severity.ERROR,
                rule=RULE,
                message=(
                    f"symmetry {symmetry.name!r} is not an automorphism: "
                    f"generator {generator.name} maps an edge of "
                    f"{action.name!r} ({declared}) to a transition no "
                    f"orbit member produces"
                ),
                target=target,
                action=action.name,
                evidence=f"{s!r} --{action.name}--> {t!r}",
                hint="fix the block/orbit declaration or remove the "
                     "symmetry; quotient exploration trusts it",
                sampled=sampled,
            ))
        if faults is not None and faults.actions:
            witness = _fault_set_mismatch(
                tuple(faults.actions), apply, states
            )
            if witness is not None:
                s, t = witness
                diagnostics.append(Diagnostic(
                    code="DC106",
                    severity=Severity.ERROR,
                    rule=RULE,
                    message=(
                        f"symmetry {symmetry.name!r} is not an automorphism "
                        f"of the fault class {faults.name!r}: generator "
                        f"{generator.name} maps a fault edge to a "
                        f"transition no fault action produces"
                    ),
                    target=target,
                    evidence=f"{s!r} --fault--> {t!r}",
                    hint="the group must permute fault edges too "
                         "(tolerance checks explore p [] F)",
                    sampled=sampled,
                ))
    return diagnostics


def _orbit_mismatch(
    action: Action,
    partners: Sequence[Action],
    apply,
    states: Sequence[State],
) -> Optional[Tuple[State, State]]:
    """An edge of ``action`` whose image under the generator is produced
    by no orbit member, or ``None``."""
    for s in states:
        successors = raw_successors(action, s)
        if not successors:
            continue
        gs = apply(s)
        images = None
        for t in successors:
            gt = apply(t)
            if images is None:
                images = set()
                for partner in partners:
                    images.update(raw_successors(partner, gs))
            if gt not in images:
                return (s, t)
    return None


def _fault_set_mismatch(
    fault_actions: Sequence[Action],
    apply,
    states: Sequence[State],
) -> Optional[Tuple[State, State]]:
    """A fault edge whose image is no fault edge, or ``None``."""
    for s in states:
        gs = None
        images = None
        for action in fault_actions:
            for t in raw_successors(action, s):
                if gs is None:
                    gs = apply(s)
                    images = set()
                    for other in fault_actions:
                        images.update(raw_successors(other, gs))
                if apply(t) not in images:
                    return (s, t)
    return None
