"""Content-addressed lint certificates.

Two granularities, mirroring the closure-row scheme in
:mod:`repro.store.certificates`:

- **whole-report certificates** — keyed by the complete lint target
  (program, spec, invariant, span, faults, start, component split,
  suppressions) plus the lint configuration.  A hit replays the entire
  :class:`~.diagnostics.LintReport` without touching a single rule.
- **per-action analysis certificates** — keyed by one action's own
  material (for planned actions the fingerprint covers the plan tuples)
  plus the variable declarations and the symbolic-analyzer budgets.
  Editing one action invalidates exactly that action's certificate; the
  others replay, so incremental re-lints scale with the size of the
  edit, not the program.

Both key families fold in :data:`~.symbolic.ANALYZER_VERSION`, so a
rule change orphans every stored verdict (the salt already covers the
engine and package versions).  All store traffic is best-effort: any
backend or pickling failure falls back to a cold computation.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Tuple

from ..store import backend as store_backend
from ..store import keys as store_keys
from .diagnostics import LintReport
from .symbolic import ANALYZER_VERSION, ActionAnalysis

__all__ = [
    "lint_config_material",
    "lint_target_material",
    "lookup_report",
    "record_report",
    "lookup_analysis",
    "record_analysis",
]


def lint_config_material(config) -> Tuple:
    """Every budget/flag of a :class:`~.linter.LintConfig`, by field
    name, so adding a knob automatically re-keys stored reports."""
    return (
        "lint-config",
        tuple(
            (f.name, getattr(config, f.name))
            for f in dataclasses.fields(config)
        ),
    )


def _optional(material_fn, value) -> Optional[Tuple]:
    return None if value is None else material_fn(value)


def lint_target_material(target) -> Tuple:
    return (
        "lint-target",
        target.name,
        store_keys.program_material(target.program),
        _optional(store_keys.spec_material, target.spec),
        _optional(store_keys.predicate_material, target.invariant),
        _optional(store_keys.predicate_material, target.span),
        _optional(store_keys.faults_material, target.faults),
        _optional(store_keys.predicate_material, target.start),
        tuple(target.correctors),
        tuple(target.components),
        tuple(
            (s.code, s.action, s.justification)
            for s in target.suppressions
        ),
    )


def _report_key(target, config) -> str:
    return store_keys.digest("lint-report", (
        lint_target_material(target),
        lint_config_material(config),
        ANALYZER_VERSION,
    ))


def _analysis_key(action, variables, kind: str, config) -> str:
    return store_keys.digest("lint-action", (
        store_keys.action_material(action),
        tuple(store_keys._variable_material(v) for v in variables),
        kind,
        (config.solver_budget, config.translation_limit,
         config.translation_samples, config.seed),
        ANALYZER_VERSION,
    ))


def lookup_report(target, config) -> Optional[LintReport]:
    store = store_backend.active_store()
    if store is None:
        return None
    try:
        payload = store.get(_report_key(target, config))
        if payload is None:
            return None
        report = store_backend.loads(payload)
    except Exception:
        return None
    if not isinstance(report, LintReport):
        return None
    store_backend.record_event("lint_report_hits")
    return report


def record_report(target, config, report: LintReport) -> None:
    store = store_backend.active_store()
    if store is None:
        return
    try:
        store.put(_report_key(target, config), store_backend.dumps(report))
    except Exception:
        pass


def _retarget(analysis: ActionAnalysis, target: str) -> ActionAnalysis:
    """Analysis certificates are shared across targets (the key covers
    only the action and its variable context), so the target label is
    re-stamped at replay time."""
    return dataclasses.replace(
        analysis,
        diagnostics=tuple(
            dataclasses.replace(d, target=target)
            for d in analysis.diagnostics
        ),
        proofs=tuple(
            dataclasses.replace(p, target=target)
            for p in analysis.proofs
        ),
    )


def lookup_analysis(
    action, variables, kind: str, config, target: str = ""
) -> Optional[ActionAnalysis]:
    store = store_backend.active_store()
    if store is None:
        return None
    try:
        payload = store.get(_analysis_key(action, variables, kind, config))
        if payload is None:
            return None
        analysis = store_backend.loads(payload)
    except Exception:
        return None
    if not isinstance(analysis, ActionAnalysis):
        return None
    store_backend.record_event("lint_action_hits")
    return _retarget(analysis, target)


def record_analysis(
    action, variables, kind: str, config, analysis: ActionAnalysis
) -> None:
    store = store_backend.active_store()
    if store is None:
        return
    try:
        store.put(
            _analysis_key(action, variables, kind, config),
            store_backend.dumps(_retarget(analysis, "")),
        )
    except Exception:
        pass
