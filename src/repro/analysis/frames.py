"""Frame soundness: validating ``reads``/``writes`` declarations.

Since PR 3, :class:`repro.core.action.Action` accepts a frame
declaration and uses it to collapse successor computation across states
that agree outside ``writes - reads``.  The contract (see the comment in
``Action.__init__``) is threefold:

1. ``reads`` covers every variable whose value can influence the guard
   or the successor set;
2. ``writes`` covers every variable the statement may change;
3. every variable in ``writes - reads`` is *overwritten regardless of
   its current value* — the memo masks those variables, so two states
   differing only there must have identical successor sets.

A wrong declaration does not crash anything: it silently corrupts the
transition relation, which for a verification library is the worst
possible failure mode.  This rule validates the contract by
**differential probing**: evaluate the action from first principles
(:func:`repro.analysis.probe.raw_successors`) on a probe set, then
perturb one variable at a time and compare successor sets.

- ``DC102`` (error): a successor differs from its source on a variable
  outside ``writes``.
- ``DC101`` (error): perturbing a variable outside ``reads`` changed
  the successor set — for ``v ∈ writes`` the sets must be identical
  (the memo masks ``v``); for ``v ∉ writes`` they must be identical
  after carrying the perturbed value through.
- ``DC105`` (error): the frame names a variable the program lacks.
- ``DC104`` (warning): only one of ``reads``/``writes`` declared — the
  memo needs both, so a partial declaration buys nothing.
- ``DC103`` (info): no frame declared; with ``suggest=True`` the hint
  carries an inferred minimal frame.
- ``DC001`` (error): the guard or statement raised during probing.

A violation found on *any* schema-consistent valuation is an error even
when that valuation is unreachable: the memo keys on valuations, not on
reachability, so the declaration must hold on the full space.  On an
exhaustive probe a clean single-variable sweep is a complete check (any
two states differ by a chain of single-variable changes); on a sampled
probe it is evidence, and the diagnostics say so.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from ..core.action import Action
from ..core.state import State, Variable
from .diagnostics import Diagnostic, Severity
from .probe import ProbeSet, raw_successors

__all__ = [
    "check_frames", "infer_frame", "infer_predicate_reads",
    "exact_predicate_reads", "format_frame",
]

RULE = "frame-soundness"


def format_frame(reads: Iterable[str], writes: Iterable[str]) -> str:
    fmt = lambda names: "{%s}" % ", ".join(repr(n) for n in sorted(names))
    return f"reads={fmt(reads)}, writes={fmt(writes)}"


class _ProbeFailure(Exception):
    """Internal: guard/statement raised; carries the DC001 diagnostic."""

    def __init__(self, diagnostic: Diagnostic):
        self.diagnostic = diagnostic


class _ActionProbe:
    """Successor sets of one action over a probe set, with perturbation.

    Wraps :func:`raw_successors` with a values-tuple-keyed cache (probe
    pairs revisit the same perturbed valuations) and converts evaluation
    exceptions into a single ``DC001`` diagnostic.
    """

    def __init__(self, action: Action, target: str):
        self.action = action
        self.target = target
        self._cache: Dict[Tuple, Tuple[State, ...]] = {}

    def successors(self, state: State) -> Tuple[State, ...]:
        key = state.values_tuple
        found = self._cache.get(key)
        if found is None:
            try:
                found = raw_successors(self.action, state)
            except Exception as exc:
                raise _ProbeFailure(Diagnostic(
                    code="DC001",
                    severity=Severity.ERROR,
                    rule=RULE,
                    message=(
                        f"guard or statement of {self.action.name!r} raised "
                        f"{type(exc).__name__}: {exc}"
                    ),
                    target=self.target,
                    action=self.action.name,
                    evidence=repr(state),
                    hint="guards and statements must be total on the full "
                         "Cartesian state space",
                )) from exc
            self._cache[key] = found
        return found


def _alternatives(domain: Sequence, current, limit: int) -> List:
    """Up to ``limit`` other domain values to perturb a variable to."""
    others = [value for value in domain if value != current]
    return others[:limit] if limit and len(others) > limit else others


def _perturbation_agrees(
    probe: _ActionProbe,
    state: State,
    successors: Tuple[State, ...],
    variable: str,
    alternative,
    carried: bool,
) -> bool:
    """Does perturbing ``variable`` leave the successor set unchanged?

    ``carried=False`` (``variable ∈ writes``): the memo masks the
    variable, so the sets must match exactly.  ``carried=True``
    (``variable ∉ writes``): an unread, unwritten variable rides along
    unchanged, so the sets must match after substituting the perturbed
    value into each successor.
    """
    perturbed = state.assign_one(variable, alternative)
    actual = probe.successors(perturbed)
    if carried:
        expected = frozenset(
            t.assign_one(variable, alternative) for t in successors
        )
    else:
        expected = frozenset(successors)
    return frozenset(actual) == expected


def check_frames(
    action: Action,
    variables: Sequence[Variable],
    probe: ProbeSet,
    target: str = "",
    suggest: bool = False,
    pair_budget: int = 2000,
    alt_limit: int = 3,
) -> List[Diagnostic]:
    """All frame diagnostics for one action (see module docstring)."""
    variable_names = frozenset(v.name for v in variables)
    domains = {v.name: v.domain for v in variables}
    diagnostics: List[Diagnostic] = []

    if action.reads is None and action.writes is None:
        hint = None
        if suggest:
            try:
                reads, writes, complete = infer_frame(
                    action, variables, probe,
                    pair_budget=pair_budget, alt_limit=alt_limit,
                )
                hint = "declare " + format_frame(reads, writes)
                if not complete:
                    hint += " (inferred from a sample; verify by hand)"
            except _ProbeFailure as failure:
                return [failure.diagnostic]
        return [Diagnostic(
            code="DC103",
            severity=Severity.INFO,
            rule=RULE,
            message=(
                f"action {action.name!r} declares no reads/writes frame; "
                "the successor memo stays off"
            ),
            target=target,
            action=action.name,
            hint=hint or "run with --suggest-frames to infer one",
            sampled=not probe.exhaustive,
        )]

    if action.reads is None or action.writes is None:
        missing = "reads" if action.reads is None else "writes"
        return [Diagnostic(
            code="DC104",
            severity=Severity.WARNING,
            rule=RULE,
            message=(
                f"action {action.name!r} declares "
                f"{'writes' if missing == 'reads' else 'reads'} but not "
                f"{missing}; the successor memo needs both and is disabled"
            ),
            target=target,
            action=action.name,
            hint=f"declare {missing} as well (or drop the frame entirely)",
        )]

    unknown = (action.reads | action.writes) - variable_names
    if unknown:
        diagnostics.append(Diagnostic(
            code="DC105",
            severity=Severity.ERROR,
            rule=RULE,
            message=(
                f"frame of {action.name!r} names unknown variable(s) "
                f"{sorted(unknown)}"
            ),
            target=target,
            action=action.name,
            variables=tuple(sorted(unknown)),
            hint="frames may only name the program's variables",
        ))

    action_probe = _ActionProbe(action, target)
    try:
        # -- write check: successors may only differ inside ``writes`` ----
        write_violations: Dict[str, str] = {}
        successor_table: List[Tuple[State, Tuple[State, ...]]] = []
        for state in probe.states:
            successors = action_probe.successors(state)
            successor_table.append((state, successors))
            for successor in successors:
                for name in variable_names:
                    if name in write_violations or name in action.writes:
                        continue
                    if state[name] != successor[name]:
                        write_violations[name] = (
                            f"{state!r} -> {successor!r}"
                        )
        for name in sorted(write_violations):
            diagnostics.append(Diagnostic(
                code="DC102",
                severity=Severity.ERROR,
                rule=RULE,
                message=(
                    f"action {action.name!r} writes {name!r} which is "
                    f"outside its declared writes frame"
                ),
                target=target,
                action=action.name,
                variables=(name,),
                evidence=write_violations[name],
                hint=f"add {name!r} to writes",
                sampled=not probe.exhaustive,
            ))

        # -- read check: perturbing an undeclared variable must not
        #    change the successor set (DC101) ----------------------------
        candidates = sorted(
            (variable_names - action.reads) - set(write_violations)
        )
        truncated = not probe.exhaustive
        if candidates:
            per_variable = max(1, pair_budget // len(candidates))
            for name in candidates:
                carried = name not in action.writes
                domain = domains[name]
                violation = None
                pairs = 0
                for state, successors in successor_table:
                    if violation is not None:
                        break
                    if pairs >= per_variable:
                        truncated = True  # budget ran out before the states did
                        break
                    alts = _alternatives(domain, state[name], alt_limit)
                    if len(domain) - 1 > len(alts):
                        truncated = True
                    for alternative in alts:
                        pairs += 1
                        if not _perturbation_agrees(
                            action_probe, state, successors,
                            name, alternative, carried,
                        ):
                            violation = (state, alternative)
                            break
                if violation is not None:
                    state, alternative = violation
                    effect = (
                        "changes the carried-through successor set"
                        if carried else
                        "changes the successor set the memo would share"
                    )
                    diagnostics.append(Diagnostic(
                        code="DC101",
                        severity=Severity.ERROR,
                        rule=RULE,
                        message=(
                            f"action {action.name!r} depends on {name!r} "
                            f"which is outside its declared reads frame: "
                            f"setting {name}={alternative!r} {effect}"
                        ),
                        target=target,
                        action=action.name,
                        variables=(name,),
                        evidence=repr(state),
                        hint=f"add {name!r} to reads",
                        sampled=truncated,
                    ))
    except _ProbeFailure as failure:
        diagnostics.append(failure.diagnostic)

    return diagnostics


def infer_predicate_reads(
    predicate,
    variables: Sequence[Variable],
    states: Iterable[State],
    alt_limit: int = 3,
) -> FrozenSet[str]:
    """The variables ``predicate`` observably depends on, by probing.

    Same differential idea as the action frame check, applied to a
    boolean function of the state: a variable is *read* iff perturbing
    it (to up to ``alt_limit`` other domain values) flips the
    predicate's value at some probe state.  On an exhaustive probe with
    an unbounded ``alt_limit`` this is exact; on a sample it is a lower
    bound — callers that need soundness (e.g. the monitoring runtime's
    incremental evaluation, which *skips* detectors whose read frame
    misses an event's writes) should pass the full state space.

    Used by :meth:`repro.monitoring.DetectorBank` to derive detector
    read-frames when none are declared.
    """
    domains = {v.name: v.domain for v in variables}
    reads = set()
    probe_states = list(states)
    for name, domain in domains.items():
        if len(domain) < 2:
            continue
        for state in probe_states:
            value = bool(predicate(state))
            flipped = False
            for alternative in _alternatives(domain, state[name], alt_limit):
                if bool(predicate(state.assign_one(name, alternative))) != value:
                    flipped = True
                    break
            if flipped:
                reads.add(name)
                break
    return frozenset(reads)


def exact_predicate_reads(
    predicate,
    states: Sequence[State],
    max_states: int = 1 << 17,
) -> Optional[FrozenSet[str]]:
    """The *exact* read frame of ``predicate`` over an exhaustive state
    list, or ``None`` when exactness cannot be established.

    Unlike :func:`infer_predicate_reads` (a differential probe, hence a
    lower bound on a sample), this is a complete decision procedure when
    ``states`` enumerates the full Cartesian space over one schema: a
    variable is unread iff the predicate is constant on every group of
    states agreeing everywhere else.  One predicate evaluation per state
    plus one dict pass per variable — no perturbed states are built.

    The certificate store's frame-aware invalidation
    (:mod:`repro.store.certificates`) relies on this: reusing an
    obligation verdict across a program edit is sound only against an
    *over*-approximation of what the consulted predicates read, which an
    exact frame trivially is.  Returns ``None`` (refuse, never guess)
    for empty or oversized lists and for mixed-schema lists.
    """
    states = list(states)
    if not states or len(states) > max_states:
        return None
    schema = states[0].schema
    if any(state.schema is not schema for state in states):
        return None
    fn = predicate.fn
    truth = [bool(fn(state)) for state in states]
    reads = set()
    for position, name in enumerate(schema.names):
        groups: Dict[Tuple, bool] = {}
        setdefault = groups.setdefault
        for state, value in zip(states, truth):
            values = state.values_tuple
            masked = values[:position] + values[position + 1:]
            if setdefault(masked, value) != value:
                reads.add(name)
                break
    return frozenset(reads)


def infer_frame(
    action: Action,
    variables: Sequence[Variable],
    probe: ProbeSet,
    pair_budget: int = 2000,
    alt_limit: int = 3,
) -> Tuple[FrozenSet[str], FrozenSet[str], bool]:
    """Infer a minimal sound ``(reads, writes)`` frame by probing.

    Returns ``(reads, writes, complete)`` where ``complete`` is True iff
    the probe was exhaustive and no budget truncation occurred — only
    then is the inferred frame a proof rather than a best guess.  May
    raise the internal probe-failure exception if the action is not
    total; :func:`check_frames` converts that into ``DC001``.
    """
    variable_names = [v.name for v in variables]
    domains = {v.name: v.domain for v in variables}
    action_probe = _ActionProbe(action, "")

    writes = set()
    successor_table: List[Tuple[State, Tuple[State, ...]]] = []
    for state in probe.states:
        successors = action_probe.successors(state)
        successor_table.append((state, successors))
        for successor in successors:
            for name in variable_names:
                if name not in writes and state[name] != successor[name]:
                    writes.add(name)

    reads = set()
    complete = probe.exhaustive
    per_variable = max(1, pair_budget // max(1, len(variable_names)))
    for name in variable_names:
        carried = name not in writes
        domain = domains[name]
        dependent = False
        pairs = 0
        for state, successors in successor_table:
            if dependent:
                break
            if pairs >= per_variable:
                complete = False  # budget ran out before the states did
                break
            alts = _alternatives(domain, state[name], alt_limit)
            if len(domain) - 1 > len(alts):
                complete = False
            for alternative in alts:
                pairs += 1
                if not _perturbation_agrees(
                    action_probe, state, successors, name, alternative, carried
                ):
                    dependent = True
                    break
        if dependent:
            reads.add(name)

    return frozenset(reads), frozenset(writes), complete
