"""Specification and invariant well-formedness.

Section 2.2 restricts problem specifications to suffix-closed,
fusion-closed sets of sequences, and Lemma 3.2 shows that for such
safety specifications violation is detectable from the last state or
transition alone — which is why the representable safety shapes in this
library are exactly :class:`StateInvariant` and
:class:`TransitionInvariant` (``repro.core.invariants._safety_checks``
raises ``TypeError`` on anything else).  These rules catch the
violations statically, before a spec reaches the region engine:

- ``DC401`` (error): a safety component outside the representable
  class — the downstream machinery will reject it.
- ``DC402`` / ``DC403`` (error on exhaustive probe, warning on
  sampled): a :class:`StateInvariant` predicate, or a
  :class:`LeadsTo` target, satisfiable nowhere — the invariant can
  never hold / the obligation can never be discharged.
- ``DC404`` (info): a :class:`LeadsTo` source satisfiable nowhere —
  the obligation is vacuous.
- ``DC405`` (error/warning): a declared invariant or fault-span is
  empty.
- ``DC406`` (error): the invariant is not closed under the program's
  actions — a precondition of every tolerance definition
  (``S`` must be an invariant *of the program*).
- ``DC407`` (error): the span is not closed under program ∪ fault
  actions — the F-span condition of Section 2.3.
- ``DC408`` (error): the invariant does not imply the span
  (``S ⇒ T`` fails).

Closure counterexamples found on a *sampled* probe are still errors —
the witness transition is concrete — but a clean sampled run is
reported as evidence, not proof (``sampled`` flag on nothing found
means nothing here; absence of diagnostics is simply absence).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..core.action import Action
from ..core.predicate import Predicate
from ..core.specification import (
    LeadsTo,
    Spec,
    StateInvariant,
    TransitionInvariant,
)
from ..core.state import State
from .diagnostics import Diagnostic, Severity
from .probe import ProbeSet, raw_successors

__all__ = ["check_spec", "check_closure"]

RULE = "spec-wellformedness"


def _unsat(
    predicate: Predicate,
    states: Sequence[State],
) -> bool:
    fn = predicate.fn
    return not any(fn(s) for s in states)


def check_spec(
    spec: Spec,
    probe: ProbeSet,
    target: str = "",
) -> List[Diagnostic]:
    """Well-formedness diagnostics for one :class:`Spec`."""
    diagnostics: List[Diagnostic] = []
    unsat_severity = (
        Severity.ERROR if probe.exhaustive else Severity.WARNING
    )
    scope = "" if probe.exhaustive else (
        f" on all {len(probe)} sampled valuations"
    )
    for component in spec.components:
        if component.kind == "safety" and not isinstance(
            component, (StateInvariant, TransitionInvariant)
        ):
            diagnostics.append(Diagnostic(
                code="DC401",
                severity=Severity.ERROR,
                rule=RULE,
                message=(
                    f"safety component {component.name!r} of {spec.name} is "
                    f"a {type(component).__name__}, outside the "
                    f"fusion/suffix-closed representable class "
                    f"(Lemma 3.2: StateInvariant or TransitionInvariant)"
                ),
                target=target,
                hint="express the property as a state or transition "
                     "invariant",
            ))
            continue
        if isinstance(component, StateInvariant):
            if _unsat(component.predicate, probe.states):
                diagnostics.append(Diagnostic(
                    code="DC402",
                    severity=unsat_severity,
                    rule=RULE,
                    message=(
                        f"state invariant {component.name!r} of {spec.name} "
                        f"is satisfiable nowhere{scope}: every computation "
                        f"violates it immediately"
                    ),
                    target=target,
                    sampled=not probe.exhaustive,
                ))
        elif isinstance(component, LeadsTo):
            if _unsat(component.target, probe.states):
                diagnostics.append(Diagnostic(
                    code="DC403",
                    severity=unsat_severity,
                    rule=RULE,
                    message=(
                        f"leads-to target {component.target.name!r} of "
                        f"{component.name!r} is satisfiable nowhere{scope}: "
                        f"the obligation can never be discharged"
                    ),
                    target=target,
                    sampled=not probe.exhaustive,
                ))
            elif _unsat(component.source, probe.states):
                diagnostics.append(Diagnostic(
                    code="DC404",
                    severity=Severity.INFO,
                    rule=RULE,
                    message=(
                        f"leads-to source {component.source.name!r} of "
                        f"{component.name!r} is satisfiable nowhere{scope}: "
                        f"the obligation is vacuous"
                    ),
                    target=target,
                    sampled=not probe.exhaustive,
                ))
    return diagnostics


def _closure_violation(
    actions: Sequence[Action],
    predicate: Predicate,
    states: Sequence[State],
    limit: int,
) -> Optional[tuple]:
    """First ``(action, state, successor)`` leaving ``predicate``."""
    fn = predicate.fn
    checked = 0
    for state in states:
        if not fn(state):
            continue
        checked += 1
        if checked > limit:
            break
        for action in actions:
            for successor in raw_successors(action, state):
                if not fn(successor):
                    return action, state, successor
    return None


def check_closure(
    program_actions: Sequence[Action],
    probe: ProbeSet,
    invariant: Optional[Predicate] = None,
    span: Optional[Predicate] = None,
    fault_actions: Sequence[Action] = (),
    target: str = "",
    closure_limit: int = 2048,
) -> List[Diagnostic]:
    """Invariant/span closure preconditions (DC405–DC408)."""
    diagnostics: List[Diagnostic] = []
    unsat_severity = (
        Severity.ERROR if probe.exhaustive else Severity.WARNING
    )
    scope = "" if probe.exhaustive else (
        f" on all {len(probe)} sampled valuations"
    )

    for name, predicate in (("invariant", invariant), ("span", span)):
        if predicate is not None and _unsat(predicate, probe.states):
            diagnostics.append(Diagnostic(
                code="DC405",
                severity=unsat_severity,
                rule=RULE,
                message=(
                    f"declared {name} {predicate.name!r} is satisfiable "
                    f"nowhere{scope}"
                ),
                target=target,
                sampled=not probe.exhaustive,
            ))
    if any(d.code == "DC405" for d in diagnostics):
        return diagnostics  # the closure checks below would be vacuous

    if invariant is not None:
        violation = _closure_violation(
            program_actions, invariant, probe.states, closure_limit
        )
        if violation is not None:
            action, state, successor = violation
            diagnostics.append(Diagnostic(
                code="DC406",
                severity=Severity.ERROR,
                rule=RULE,
                message=(
                    f"invariant {invariant.name!r} is not closed under the "
                    f"program: action {action.name!r} leaves it"
                ),
                target=target,
                action=action.name,
                evidence=f"{state!r} -> {successor!r}",
                hint="every tolerance definition requires the invariant "
                     "to be closed in the fault-free program",
                sampled=not probe.exhaustive,
            ))

    if span is not None:
        violation = _closure_violation(
            list(program_actions) + list(fault_actions),
            span, probe.states, closure_limit,
        )
        if violation is not None:
            action, state, successor = violation
            diagnostics.append(Diagnostic(
                code="DC407",
                severity=Severity.ERROR,
                rule=RULE,
                message=(
                    f"span {span.name!r} is not closed under "
                    f"program ∪ faults: action {action.name!r} leaves it"
                ),
                target=target,
                action=action.name,
                evidence=f"{state!r} -> {successor!r}",
                hint="the F-span (Section 2.3) must be closed under both "
                     "the program's and the fault-class's actions",
                sampled=not probe.exhaustive,
            ))

    if invariant is not None and span is not None:
        invariant_fn, span_fn = invariant.fn, span.fn
        for state in probe.states:
            if invariant_fn(state) and not span_fn(state):
                diagnostics.append(Diagnostic(
                    code="DC408",
                    severity=Severity.ERROR,
                    rule=RULE,
                    message=(
                        f"invariant {invariant.name!r} does not imply span "
                        f"{span.name!r} (S ⇒ T fails)"
                    ),
                    target=target,
                    evidence=repr(state),
                    hint="the fault-span must contain the invariant",
                    sampled=not probe.exhaustive,
                ))
                break

    return diagnostics
