"""Structured diagnostics for the static linter.

Every rule in :mod:`repro.analysis` reports its findings as
:class:`Diagnostic` values — a stable code (``DC101``), a severity, the
program/action the finding is about, a human-readable message, and a fix
hint — collected into a :class:`LintReport`.  The shape is deliberately
close to what compiler front-ends emit: stable codes make findings
greppable and suppressible, severities drive exit codes, and the whole
report serializes to JSON for tooling.

Code blocks (the "DC" is for detector/corrector):

- ``DC0xx`` — the analysis itself failed (a guard or statement raised);
- ``DC1xx`` — frame soundness (``reads``/``writes`` declarations);
- ``DC2xx`` — interference between base and component actions;
- ``DC3xx`` — guard satisfiability / enabledness;
- ``DC4xx`` — specification and invariant well-formedness;
- ``DC5xx`` — symbolic findings over the Plan IR (dead/tautological
  guard sub-expressions, translation-validation failures).

Alongside findings, rules that *prove* a property (rather than sampling
evidence for it) record a :class:`Proof` — which rule, for which
action, by what method.  Proofs are the positive complement of
diagnostics: a clean report with a frame-soundness proof for every
planned action is a theorem about the program, not an absence of
observations.

:class:`InterferenceError` lives here (rather than in the synthesis
layer) so that :mod:`repro.synthesis.nonmasking` can raise an exception
carrying structured diagnostics without creating an import cycle:
``analysis.diagnostics`` imports nothing from the rest of the library.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "Severity",
    "Diagnostic",
    "Proof",
    "Suppression",
    "LintReport",
    "InterferenceError",
]


class Severity(enum.IntEnum):
    """Diagnostic severity; ordering supports ``max``/threshold checks."""

    INFO = 0
    WARNING = 1
    ERROR = 2

    def __str__(self) -> str:  # "error", not "Severity.ERROR"
        return self.name.lower()


@dataclass(frozen=True)
class Diagnostic:
    """One finding of one rule.

    Attributes
    ----------
    code:
        Stable rule code (``DC101``); documented in
        ``docs/static_analysis.md``.
    severity:
        :class:`Severity` — only ``ERROR`` findings fail ``--strict``.
    rule:
        Short rule family name (``frame-soundness``, ``interference``, …).
    message:
        Human-readable finding, self-contained (includes names/values).
    target:
        The lint target (program/model) the finding belongs to.
    action:
        The offending action's name, when the finding is about one.
    variables:
        The variables involved (frame violations, conflicts).
    hint:
        A suggested fix, when the rule can compute one.
    evidence:
        Rendering of a concrete counterexample (state / state pair).
    sampled:
        True when the rule probed a sample rather than the full space —
        a clean sampled probe is evidence, not a proof.
    suppressed:
        Set by :meth:`LintReport.apply_suppressions`; a suppressed
        finding stays in the report (with its justification) but does
        not count toward :meth:`LintReport.errors`.
    justification:
        The suppression's justification, when suppressed.
    """

    code: str
    severity: Severity
    rule: str
    message: str
    target: str = ""
    action: Optional[str] = None
    variables: Tuple[str, ...] = ()
    hint: Optional[str] = None
    evidence: Optional[str] = None
    sampled: bool = False
    suppressed: bool = False
    justification: Optional[str] = None

    def to_dict(self) -> Dict[str, object]:
        data: Dict[str, object] = {
            "code": self.code,
            "severity": str(self.severity),
            "rule": self.rule,
            "message": self.message,
            "target": self.target,
        }
        if self.action is not None:
            data["action"] = self.action
        if self.variables:
            data["variables"] = sorted(self.variables)
        if self.hint is not None:
            data["hint"] = self.hint
        if self.evidence is not None:
            data["evidence"] = self.evidence
        if self.sampled:
            data["sampled"] = True
        if self.suppressed:
            data["suppressed"] = True
            data["justification"] = self.justification
        return data

    def format(self) -> str:
        location = self.target
        if self.action is not None:
            location = f"{location}::{self.action}" if location else self.action
        head = f"{self.code} {self.severity:<7} {location}: {self.message}"
        if self.suppressed:
            head += f"  [suppressed: {self.justification}]"
        elif self.hint:
            head += f"  (hint: {self.hint})"
        return head

    def __str__(self) -> str:
        return self.format()


@dataclass(frozen=True)
class Proof:
    """A positive, machine-checked fact established during linting.

    Attributes
    ----------
    rule:
        The rule family the proof belongs to (``frame-soundness``,
        ``guard-satisfiability``, ``translation-validation``,
        ``interference``).
    method:
        How it was established: ``ir-exact`` (exhaustive enumeration
        over the plan's support variables), ``exhaustive`` (full
        state-space sweep), ``decomposed`` (per-variable symbolic
        decomposition on an oversized space — sound for the plan,
        sampled for the action), or ``solver`` (finite-domain
        constraint solving).
    detail:
        Human-readable statement of what was proven, self-contained.
    """

    rule: str
    method: str
    detail: str
    target: str = ""
    action: Optional[str] = None

    def to_dict(self) -> Dict[str, object]:
        data: Dict[str, object] = {
            "rule": self.rule,
            "method": self.method,
            "detail": self.detail,
            "target": self.target,
        }
        if self.action is not None:
            data["action"] = self.action
        return data

    def format(self) -> str:
        location = self.target
        if self.action is not None:
            location = f"{location}::{self.action}" if location else self.action
        return f"proof  {self.rule} [{self.method}] {location}: {self.detail}"

    def __str__(self) -> str:
        return self.format()


@dataclass(frozen=True)
class Suppression:
    """An explicit, justified waiver for one diagnostic code.

    ``action=None`` suppresses the code for the whole target.  A
    justification is mandatory: the point of a suppression is to record
    *why* the finding is acceptable, next to the program it concerns.
    """

    code: str
    justification: str
    action: Optional[str] = None

    def matches(self, diagnostic: Diagnostic) -> bool:
        if self.code != diagnostic.code:
            return False
        return self.action is None or self.action == diagnostic.action


@dataclass
class LintReport:
    """All diagnostics produced for one lint target."""

    target: str = ""
    diagnostics: List[Diagnostic] = field(default_factory=list)
    proofs: List[Proof] = field(default_factory=list)

    def add(self, diagnostic: Diagnostic) -> None:
        self.diagnostics.append(diagnostic)

    def extend(self, diagnostics: Iterable[Diagnostic]) -> None:
        self.diagnostics.extend(diagnostics)

    def add_proofs(self, proofs: Iterable[Proof]) -> None:
        self.proofs.extend(proofs)

    def proofs_for(self, rule: str, action: Optional[str] = None) -> List[Proof]:
        return [
            p for p in self.proofs
            if p.rule == rule and (action is None or p.action == action)
        ]

    def errors(self) -> List[Diagnostic]:
        """Unsuppressed error-severity findings (what ``--strict`` gates on)."""
        return [
            d for d in self.diagnostics
            if d.severity is Severity.ERROR and not d.suppressed
        ]

    def warnings(self) -> List[Diagnostic]:
        return [
            d for d in self.diagnostics
            if d.severity is Severity.WARNING and not d.suppressed
        ]

    @property
    def ok(self) -> bool:
        return not self.errors()

    def by_code(self, code: str) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.code == code]

    def apply_suppressions(self, suppressions: Sequence[Suppression]) -> None:
        """Mark matching diagnostics suppressed (in place)."""
        if not suppressions:
            return
        updated: List[Diagnostic] = []
        for diagnostic in self.diagnostics:
            for suppression in suppressions:
                if suppression.matches(diagnostic):
                    diagnostic = replace(
                        diagnostic,
                        suppressed=True,
                        justification=suppression.justification,
                    )
                    break
            updated.append(diagnostic)
        self.diagnostics[:] = updated

    def to_dict(self) -> Dict[str, object]:
        return {
            "target": self.target,
            "diagnostics": [d.to_dict() for d in self.diagnostics],
            "proofs": [p.to_dict() for p in self.proofs],
            "summary": {
                "errors": len(self.errors()),
                "warnings": len(self.warnings()),
                "total": len(self.diagnostics),
                "suppressed": sum(1 for d in self.diagnostics if d.suppressed),
                "proven": len(self.proofs),
            },
        }


class InterferenceError(ValueError):
    """A component provably interferes with the base program.

    Raised by :func:`repro.synthesis.nonmasking.add_nonmasking` (and
    usable by any composition pass) with the *complete* list of
    interference diagnostics, so a user fixing a model sees every
    offending corrector in one run instead of one per run.  Subclasses
    ``ValueError`` for backward compatibility with callers that caught
    the old single-offender error.
    """

    def __init__(self, diagnostics: Sequence[Diagnostic]):
        self.diagnostics: Tuple[Diagnostic, ...] = tuple(diagnostics)
        super().__init__(
            "\n".join(d.message for d in self.diagnostics)
            or "interference detected"
        )
