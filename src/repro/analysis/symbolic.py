"""Symbolic analysis over the Plan IR: proofs, not probes.

The differential rules in :mod:`repro.analysis.frames` and
:mod:`repro.analysis.guards` evaluate actions pointwise over a probe
set, so on spaces above the probe limit a clean result is *evidence*.
Actions that carry a :class:`~repro.core.kernels.Plan` admit something
strictly better: the plan is a finite syntax tree over finite domains,
so frame soundness, guard satisfiability, and stutter-freedom are all
**decidable by exact enumeration over the plan's support variables** —
a handful of variables regardless of how many the program has.  This
module implements that decision procedure and the glue that turns its
verdicts into diagnostics and :class:`~.diagnostics.Proof` records:

- :class:`GuardSolver` — a finite-domain constraint solver for the plan
  guard grammar (``eq/ne/majority/and/or/not``).  Small expressions get
  an exact truth table over their support product; oversized ones fall
  back to a three-valued value-set abstraction that still proves many
  unsatisfiability/tautology facts.  Used for dead guards (``DC301``
  proven), dead or tautological *sub*-expressions (``DC501``/``DC502``),
  and guard-pair disjointness (race-freedom in
  :mod:`repro.analysis.interference`).
- :func:`plan_frame_table` — a joint guard+effect table over the plan's
  support, from which the **exact** reads/writes frame of the plan
  falls out (the same carried/masked contract the differential probe
  checks, decided rather than sampled).
- :func:`analyze_action` — the per-action driver: **translation
  validation** first (the plan must agree with the interpreted
  guard+statement: exhaustive sweep on small spaces, per-variable
  decomposition on large ones; ``DC511``/``DC512``), then frame and
  guard verdicts from the validated IR.

Every verdict is deterministic in the action's content, which is what
lets :mod:`repro.analysis.lint_store` cache analyses in the
content-addressed certificate store and replay them across processes.
"""

from __future__ import annotations

import itertools
import random
import weakref
from dataclasses import dataclass
from typing import (
    Callable, Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple,
)

from ..core.action import Action
from ..core.kernels import (
    Plan,
    _compile_effects_pure,
    _compile_guard_pure,
    row_kernel,
)
from ..core.state import State, Variable, _state_of, state_space
from .diagnostics import Diagnostic, Proof, Severity
from .probe import raw_successors

__all__ = [
    "ANALYZER_VERSION",
    "GuardSolver",
    "GuardFacts",
    "ActionAnalysis",
    "guard_support",
    "plan_support",
    "plan_targets",
    "analyze_action",
    "clear_symbolic_caches",
]

#: bumped on any behaviour change of the analyzer; folded into lint
#: certificate keys so stored analyses never survive a rule change
ANALYZER_VERSION = 1

RULE_FRAMES = "frame-soundness"
RULE_GUARDS = "guard-satisfiability"
RULE_TRANSLATION = "translation-validation"


# -- syntactic support ---------------------------------------------------------

def guard_support(expr: Tuple) -> FrozenSet[str]:
    """The variables a guard expression syntactically mentions."""
    op = expr[0]
    if op == "true":
        return frozenset()
    if op in ("eq_const", "ne_const"):
        return frozenset((expr[1],))
    if op in ("eq_var", "ne_var"):
        return frozenset((expr[1], expr[2]))
    if op == "all_ne_const":
        return frozenset(expr[1])
    if op in ("eq_majority", "ne_majority"):
        return frozenset((expr[1],)) | frozenset(expr[2])
    if op == "not":
        return guard_support(expr[1])
    # "and" / "or"
    support: FrozenSet[str] = frozenset()
    for sub in expr[1:]:
        support |= guard_support(sub)
    return support


def _effect_sources(effect: Tuple) -> FrozenSet[str]:
    op = effect[0]
    if op == "set_const":
        return frozenset()
    if op in ("copy", "inc_mod"):
        return frozenset((effect[2],))
    return frozenset(effect[2])  # set_majority


def plan_targets(plan: Plan) -> Tuple[str, ...]:
    """The variables the plan's effects assign, in effect order, deduped."""
    seen: Dict[str, None] = {}
    for effect in plan.effects:
        seen[effect[1]] = None
    return tuple(seen)


def plan_support(plan: Plan) -> FrozenSet[str]:
    """Every variable the plan mentions (guard, sources, and targets)."""
    support = guard_support(plan.guard)
    for effect in plan.effects:
        support |= _effect_sources(effect)
        support |= frozenset((effect[1],))
    return support


# -- the finite-domain guard solver --------------------------------------------

#: (domains signature, expr) -> (names, assignments, truth) | None
_TRUTH_TABLES: Dict[Tuple, Optional[Tuple]] = {}


class GuardSolver:
    """Exact satisfiability/tautology/disjointness for plan guards.

    ``domains`` maps every variable name to its declared domain tuple.
    Expressions whose support product fits under ``budget`` states get a
    memoized truth table — satisfiability, tautology, and witnesses are
    then decided exactly.  Larger expressions fall back to a
    three-valued abstract evaluation over per-variable value sets, which
    returns a definite verdict when it can and ``None`` when it cannot;
    callers treat ``None`` as "fall back to probing".
    """

    def __init__(self, domains: Dict[str, Tuple], budget: int = 1 << 16):
        self.domains = domains
        self.budget = budget
        self._signature = tuple(sorted(
            (name, tuple(domain)) for name, domain in domains.items()
        ))

    # -- exact enumeration -------------------------------------------------
    def table(self, expr: Tuple) -> Optional[Tuple]:
        """``(names, assignments, truth)`` over the expression's support
        product, or ``None`` when a support variable has no domain or
        the product exceeds the budget."""
        key = (self._signature, expr)
        found = _TRUTH_TABLES.get(key, _TRUTH_TABLES)
        if found is not _TRUTH_TABLES:
            return found
        result = self._build_table(expr)
        _TRUTH_TABLES[key] = result
        return result

    def _build_table(self, expr: Tuple) -> Optional[Tuple]:
        names = tuple(sorted(guard_support(expr)))
        domains = []
        size = 1
        for name in names:
            domain = self.domains.get(name)
            if not domain:
                return None
            domains.append(tuple(domain))
            size *= len(domain)
            if size > self.budget:
                return None
        index = {name: i for i, name in enumerate(names)}
        fn = _compile_guard_pure(expr, index)
        assignments = tuple(itertools.product(*domains)) if names else ((),)
        if fn is None:  # a literal/derived "true"
            truth = (True,) * len(assignments)
        else:
            truth = tuple(bool(fn(values)) for values in assignments)
        return (names, assignments, truth)

    # -- verdicts ----------------------------------------------------------
    def satisfiable(self, expr: Tuple) -> Optional[bool]:
        table = self.table(expr)
        if table is not None:
            return any(table[2])
        return self._abstract(expr, None)

    def tautological(self, expr: Tuple) -> Optional[bool]:
        table = self.table(expr)
        if table is not None:
            return all(table[2])
        verdict = self._abstract(expr, None)
        return None if verdict is None else verdict

    def witness(self, expr: Tuple) -> Optional[Dict[str, object]]:
        """A satisfying partial assignment (support variables only), or
        ``None`` when unsatisfiable/undecided."""
        table = self.table(expr)
        if table is None:
            return None
        names, assignments, truth = table
        for values, value in zip(assignments, truth):
            if value:
                return dict(zip(names, values))
        return None

    def co_satisfiable(self, left: Tuple, right: Tuple) -> Optional[bool]:
        """Can both guards hold in one state?  ``False`` is a proof the
        guarded actions are never simultaneously enabled."""
        return self.satisfiable(("and", left, right))

    # -- three-valued value-set abstraction --------------------------------
    def _abstract(self, expr: Tuple, env: Optional[Dict]) -> Optional[bool]:
        if env is None:
            env = {
                name: frozenset(domain)
                for name, domain in self.domains.items()
            }
        op = expr[0]
        if op == "true":
            return True
        if op in ("eq_const", "ne_const"):
            dom = env.get(expr[1])
            if dom is None:
                return None
            holds = expr[2] in dom
            if not holds:
                return op == "ne_const"
            if len(dom) == 1:
                return op == "eq_const"
            return None
        if op in ("eq_var", "ne_var"):
            a, b = env.get(expr[1]), env.get(expr[2])
            if a is None or b is None:
                return None
            if not (a & b):
                return op == "ne_var"
            if len(a) == 1 and len(b) == 1 and a == b:
                return op == "eq_var"
            return None
        if op == "all_ne_const":
            verdicts = [
                self._abstract(("ne_const", name, expr[2]), env)
                for name in expr[1]
            ]
            if any(v is False for v in verdicts):
                return False
            if all(v is True for v in verdicts):
                return True
            return None
        if op in ("eq_majority", "ne_majority"):
            definite = sum(
                1 for name in expr[2] if env.get(name) == frozenset((1,))
            )
            possible = sum(
                1 for name in expr[2]
                if env.get(name) is not None and 1 in env[name]
            )
            k = expr[3]
            if 2 * definite > k:
                majority: Optional[int] = 1
            elif 2 * possible <= k:
                majority = 0
            else:
                return None
            comparison = "eq_const" if op == "eq_majority" else "ne_const"
            return self._abstract((comparison, expr[1], majority), env)
        if op == "not":
            verdict = self._abstract(expr[1], env)
            return None if verdict is None else not verdict
        verdicts = [self._abstract(sub, env) for sub in expr[1:]]
        if op == "and":
            if any(v is False for v in verdicts):
                return False
            if all(v is True for v in verdicts):
                return True
            return None
        if any(v is True for v in verdicts):
            return True
        if all(v is False for v in verdicts):
            return False
        return None


def _render_assignment(names: Sequence[str], values: Sequence) -> str:
    if not names:
        return "any state"
    body = ", ".join(f"{n}={v!r}" for n, v in zip(names, values))
    return f"{body} (other variables arbitrary)"


# -- exact plan frames ---------------------------------------------------------

@dataclass(frozen=True)
class PlanTable:
    """A joint guard+effect evaluation over the plan's support product.

    ``rows`` holds, for every assignment of the support variables, the
    guard's verdict and the post-state of the support variables (effects
    never touch anything outside the support, so this is the plan's
    complete behaviour up to carried variables).
    """

    names: Tuple[str, ...]
    assignments: Tuple[Tuple, ...]
    enabled: Tuple[bool, ...]
    finals: Tuple[Optional[Tuple], ...]


def plan_frame_table(
    plan: Plan, domains: Dict[str, Tuple], budget: int = 1 << 16
) -> Optional[PlanTable]:
    """The plan's behaviour table, or ``None`` when a support variable
    has no domain or the support product exceeds ``budget``."""
    names = tuple(sorted(plan_support(plan)))
    doms = []
    size = 1
    for name in names:
        domain = domains.get(name)
        if not domain:
            return None
        doms.append(tuple(domain))
        size *= len(domain)
        if size > budget:
            return None
    index = {name: i for i, name in enumerate(names)}
    guard = _compile_guard_pure(plan.guard, index)
    effects = _compile_effects_pure(plan, index)
    assignments = tuple(itertools.product(*doms)) if names else ((),)
    enabled: List[bool] = []
    finals: List[Optional[Tuple]] = []
    for values in assignments:
        if guard is None or guard(values):
            enabled.append(True)
            finals.append(effects(values))
        else:
            enabled.append(False)
            finals.append(None)
    return PlanTable(names, assignments, tuple(enabled), tuple(finals))


def _exact_writes(table: PlanTable) -> Dict[str, int]:
    """``variable -> witness row index`` for every variable some enabled
    row observably changes."""
    writes: Dict[str, int] = {}
    for row, (values, on, final) in enumerate(
        zip(table.assignments, table.enabled, table.finals)
    ):
        if not on:
            continue
        for position, name in enumerate(table.names):
            if name not in writes and final[position] != values[position]:
                writes[name] = row
    return writes


def _exact_reads(
    table: PlanTable, writes: FrozenSet[str]
) -> Dict[str, Tuple[int, int]]:
    """``variable -> (row a, row b)`` witness pairs for every variable
    the plan's behaviour depends on.

    Two assignments differing only in ``v`` must exhibit the same
    behaviour for ``v`` to be unread: equal guard verdicts and, when
    enabled, equal post-states — compared under the memo's contract
    (``v`` written: full post-states match; ``v`` unwritten: post-states
    match outside ``v``, the old value merely rides along).
    """
    reads: Dict[str, Tuple[int, int]] = {}
    for position, name in enumerate(table.names):
        masked = name not in writes

        def behaviour(row: int) -> Tuple:
            final = table.finals[row]
            if final is None:
                return (False, None)
            if masked:
                final = final[:position] + final[position + 1:]
            return (True, final)

        groups: Dict[Tuple, int] = {}
        for row, values in enumerate(table.assignments):
            group = values[:position] + values[position + 1:]
            first = groups.setdefault(group, row)
            if first != row and behaviour(first) != behaviour(row):
                reads[name] = (first, row)
                break
    return reads


# -- per-action analysis -------------------------------------------------------

@dataclass(frozen=True)
class GuardFacts:
    """Proven facts :func:`check_guards` can consume instead of probing.

    ``None`` fields are *undecided* (fall back to probing); boolean
    fields are proofs either way.
    """

    satisfiable: Optional[bool] = None
    changes_state: Optional[bool] = None


@dataclass(frozen=True)
class ActionAnalysis:
    """Everything the symbolic analyzer established about one action.

    ``translation`` is one of ``unplanned`` (no plan — nothing to
    analyze), ``uncompilable`` (plan does not fit the schema, DC512),
    ``failed`` (the interpreted action raised, DC001), ``refuted``
    (plan and interpretation disagree, DC511), ``proven`` (full-space
    sweep), or ``decomposed`` (per-variable decomposition on an
    oversized space).  ``reads``/``writes`` are the plan's exact frame
    when the support table fit the budget; ``covers_frames`` /
    ``covers_guards`` tell the linter whether the probe-based rules may
    be skipped for this action.
    """

    action: str
    translation: str
    diagnostics: Tuple[Diagnostic, ...] = ()
    proofs: Tuple[Proof, ...] = ()
    reads: Optional[FrozenSet[str]] = None
    writes: Optional[FrozenSet[str]] = None
    satisfiable: Optional[bool] = None
    changes_state: Optional[bool] = None
    covers_frames: bool = False
    covers_guards: bool = False

    @property
    def validated(self) -> bool:
        return self.translation in ("proven", "decomposed")

    def guard_facts(self) -> GuardFacts:
        return GuardFacts(
            satisfiable=self.satisfiable,
            changes_state=self.changes_state,
        )


#: action -> {analysis key: ActionAnalysis}
_ANALYSES: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()


def clear_symbolic_caches() -> None:
    """Drop memoized truth tables and per-action analyses.  Wired into
    :func:`repro.core.exploration.clear_all_caches` so cold runs redo
    symbolic work like any other cache miss."""
    _TRUTH_TABLES.clear()
    _ANALYSES.clear()


def _successor_tuple(
    action: Action, state: State
) -> Tuple[Tuple[Tuple, ...], Optional[Tuple]]:
    """Interpreted successors as values-tuples, plus what a
    deterministic plan would have to return (``None`` for disabled)."""
    successors = tuple(
        s.values_tuple for s in raw_successors(action, state)
    )
    if not successors:
        return successors, None
    return successors, successors[0]


def _translation_mismatch(
    action: Action,
    state_values: Tuple,
    expected: Tuple[Tuple, ...],
    got: Optional[Tuple],
    names: Tuple[str, ...],
    target: str,
    sampled: bool,
) -> Diagnostic:
    def render(values: Optional[Tuple]) -> str:
        if values is None:
            return "disabled"
        return "{" + ", ".join(
            f"{n}={v!r}" for n, v in zip(names, values)
        ) + "}"

    if len(expected) > 1:
        interpreted = f"{len(expected)} successors (nondeterministic)"
    elif expected:
        interpreted = render(expected[0])
    else:
        interpreted = "disabled"
    return Diagnostic(
        code="DC511",
        severity=Severity.ERROR,
        rule=RULE_TRANSLATION,
        message=(
            f"plan of action {action.name!r} disagrees with its "
            f"interpreted guard/statement at {render(state_values)}: "
            f"plan yields {render(got)}, interpretation yields "
            f"{interpreted}"
        ),
        target=target,
        action=action.name,
        evidence=f"{render(state_values)}: plan {render(got)} vs "
                 f"interpreted {interpreted}",
        hint="the plan is a claim about the action; regenerate it from "
             "the guard/statement or fix whichever drifted",
        sampled=sampled,
    )


def _validate_translation(
    action: Action,
    kernel: Callable,
    variables: Sequence[Variable],
    schema,
    space_size: int,
    target: str,
    config,
) -> Tuple[str, List[Diagnostic]]:
    """Prove (or refute) plan ≡ interpreted action.

    Small spaces get the full sweep — a proof.  Oversized spaces get a
    sound-for-the-plan decomposition: the full product over the plan's
    support variables is swept in a handful of base contexts, and every
    non-support variable is swept one at a time — exactly the
    single-variable-chain argument the frame rule relies on, so a plan
    that consults or clobbers an undeclared variable is still caught.
    """
    names = schema.names
    limit = getattr(config, "translation_limit", 1 << 16)
    failure: Optional[Diagnostic] = None

    def check(state: State, sampled: bool) -> Optional[Diagnostic]:
        nonlocal failure
        try:
            expected, single = _successor_tuple(action, state)
        except Exception as exc:
            failure = Diagnostic(
                code="DC001",
                severity=Severity.ERROR,
                rule=RULE_TRANSLATION,
                message=(
                    f"guard or statement of {action.name!r} raised "
                    f"{type(exc).__name__}: {exc}"
                ),
                target=target,
                action=action.name,
                evidence=repr(state),
                hint="guards and statements must be total on the full "
                     "Cartesian state space",
            )
            return failure
        got = kernel(state.values_tuple)
        if got != single or len(expected) > 1:
            return _translation_mismatch(
                action, state.values_tuple, expected, got,
                names, target, sampled,
            )
        return None

    if space_size <= limit:
        for state in state_space(variables):
            found = check(state, sampled=False)
            if found is not None:
                status = "failed" if found is failure else "refuted"
                return status, [found]
        return "proven", []

    # -- decomposition on an oversized space -------------------------------
    domains = [tuple(v.domain) for v in variables]
    positions = {name: i for i, name in enumerate(names)}
    support = sorted(
        plan_support(action.plan) & set(names), key=positions.__getitem__
    )
    support_positions = [positions[n] for n in support]
    support_product = 1
    for p in support_positions:
        support_product *= len(domains[p])
    rng = random.Random(config.seed)
    contexts = [
        tuple(d[0] for d in domains),
        tuple(d[-1] for d in domains),
    ]
    for _ in range(getattr(config, "translation_samples", 4)):
        contexts.append(tuple(rng.choice(d) for d in domains))

    budget = getattr(config, "solver_budget", 1 << 16)
    for context in contexts:
        if support_product <= budget:
            for combo in itertools.product(
                *(domains[p] for p in support_positions)
            ):
                values = list(context)
                for p, v in zip(support_positions, combo):
                    values[p] = v
                found = check(_state_of(schema, tuple(values)), sampled=True)
                if found is not None:
                    status = "failed" if found is failure else "refuted"
                    return status, [found]
        # sweep every non-support variable one at a time: a plan that
        # ignores a variable the interpretation consults shows up here
        for p, domain in enumerate(domains):
            if p in support_positions:
                continue
            for value in domain:
                values = list(context)
                values[p] = value
                found = check(_state_of(schema, tuple(values)), sampled=True)
                if found is not None:
                    status = "failed" if found is failure else "refuted"
                    return status, [found]
    return "decomposed", []


def _subexpression_diagnostics(
    solver: GuardSolver,
    guard: Tuple,
    action: Action,
    target: str,
    root_satisfiable: Optional[bool],
) -> List[Diagnostic]:
    """``DC501`` (dead sub-expression) / ``DC502`` (tautological
    sub-expression or non-literal tautological guard).

    Walks top-down and does not descend into an already-flagged
    sub-expression, so one dead disjunct yields one finding, not one
    per literal inside it.
    """
    diagnostics: List[Diagnostic] = []
    flagged: set = set()

    def visit(expr: Tuple, is_root: bool) -> None:
        op = expr[0]
        if op == "true" or expr in flagged:
            return
        if not is_root or op in ("and", "or", "not"):
            satisfiable = solver.satisfiable(expr)
            if satisfiable is False and not is_root and root_satisfiable:
                flagged.add(expr)
                diagnostics.append(Diagnostic(
                    code="DC501",
                    severity=Severity.WARNING,
                    rule=RULE_GUARDS,
                    message=(
                        f"guard sub-expression {expr!r} of action "
                        f"{action.name!r} is unsatisfiable: the branch "
                        f"is dead code"
                    ),
                    target=target,
                    action=action.name,
                    hint="check the comparison against the variable "
                         "domains; an always-false conjunct usually "
                         "means a typo",
                ))
                return
            if solver.tautological(expr) is True:
                flagged.add(expr)
                where = "guard" if is_root else "guard sub-expression"
                diagnostics.append(Diagnostic(
                    code="DC502",
                    severity=Severity.INFO,
                    rule=RULE_GUARDS,
                    message=(
                        f"{where} {expr!r} of action {action.name!r} is "
                        f"tautological"
                        + ("" if is_root else
                           "; it never constrains the guard")
                    ),
                    target=target,
                    action=action.name,
                    hint="drop the redundant test (or write ('true',) "
                         "if the action is meant to be always enabled)",
                ))
                return
        if op in ("and", "or"):
            for sub in expr[1:]:
                visit(sub, False)
        elif op == "not":
            visit(expr[1], False)

    visit(guard, True)
    return diagnostics


def _frame_diagnostics(
    action: Action,
    table: PlanTable,
    variable_names: FrozenSet[str],
    satisfiable: bool,
    target: str,
) -> Tuple[List[Diagnostic], List[Proof], FrozenSet[str], FrozenSet[str]]:
    """Exact DC101/DC102/DC103/DC104/DC105 from the plan table."""
    diagnostics: List[Diagnostic] = []
    proofs: List[Proof] = []
    write_rows = _exact_writes(table)
    exact_writes = frozenset(write_rows)
    read_rows = _exact_reads(table, exact_writes)
    exact_reads = frozenset(read_rows)
    targets = frozenset(plan_targets(action.plan))

    def row_evidence(row: int) -> str:
        return _render_assignment(table.names, table.assignments[row])

    if action.reads is None and action.writes is None:
        diagnostics.append(Diagnostic(
            code="DC103",
            severity=Severity.INFO,
            rule=RULE_FRAMES,
            message=(
                f"action {action.name!r} declares no reads/writes frame; "
                "the successor memo stays off"
            ),
            target=target,
            action=action.name,
            hint="declare reads={%s}, writes={%s} (exact, from the plan)"
                 % (", ".join(repr(n) for n in sorted(exact_reads)),
                    ", ".join(repr(n) for n in sorted(exact_writes))),
        ))
        return diagnostics, proofs, exact_reads, exact_writes

    if action.reads is None or action.writes is None:
        missing = "reads" if action.reads is None else "writes"
        diagnostics.append(Diagnostic(
            code="DC104",
            severity=Severity.WARNING,
            rule=RULE_FRAMES,
            message=(
                f"action {action.name!r} declares "
                f"{'writes' if missing == 'reads' else 'reads'} but not "
                f"{missing}; the successor memo needs both and is disabled"
            ),
            target=target,
            action=action.name,
            hint=f"declare {missing} as well (or drop the frame entirely)",
        ))
        return diagnostics, proofs, exact_reads, exact_writes

    unknown = (action.reads | action.writes) - variable_names
    if unknown:
        diagnostics.append(Diagnostic(
            code="DC105",
            severity=Severity.ERROR,
            rule=RULE_FRAMES,
            message=(
                f"frame of {action.name!r} names unknown variable(s) "
                f"{sorted(unknown)}"
            ),
            target=target,
            action=action.name,
            variables=tuple(sorted(unknown)),
            hint="frames may only name the program's variables",
        ))

    for name in sorted(exact_writes - action.writes):
        diagnostics.append(Diagnostic(
            code="DC102",
            severity=Severity.ERROR,
            rule=RULE_FRAMES,
            message=(
                f"action {action.name!r} writes {name!r} which is "
                f"outside its declared writes frame (proven from the "
                f"plan IR)"
            ),
            target=target,
            action=action.name,
            variables=(name,),
            evidence=row_evidence(write_rows[name]),
            hint=f"add {name!r} to writes",
        ))

    for name in sorted(exact_reads - action.reads):
        row_a, row_b = read_rows[name]
        a = table.assignments[row_a]
        b = table.assignments[row_b]
        position = table.names.index(name)
        diagnostics.append(Diagnostic(
            code="DC101",
            severity=Severity.ERROR,
            rule=RULE_FRAMES,
            message=(
                f"action {action.name!r} depends on {name!r} which is "
                f"outside its declared reads frame: "
                f"{name}={a[position]!r} vs {name}={b[position]!r} "
                f"behave differently (proven from the plan IR)"
            ),
            target=target,
            action=action.name,
            variables=(name,),
            evidence=row_evidence(row_a),
            hint=f"add {name!r} to reads",
        ))

    # a variable declared written but never assigned by an effect is not
    # overwritten when the action fires: the memo would mask it, yet the
    # old value survives into the successor — the masked-perturbation
    # violation, decided statically
    if satisfiable:
        for name in sorted(
            (action.writes - action.reads) - targets - exact_reads
        ):
            if name not in variable_names:
                continue
            diagnostics.append(Diagnostic(
                code="DC101",
                severity=Severity.ERROR,
                rule=RULE_FRAMES,
                message=(
                    f"action {action.name!r} declares {name!r} written "
                    f"but no effect ever assigns it: the successor memo "
                    f"would mask a variable that is carried through "
                    f"(proven from the plan IR)"
                ),
                target=target,
                action=action.name,
                variables=(name,),
                hint=f"drop {name!r} from writes (or add an effect that "
                     f"assigns it)",
            ))

    if not any(d.severity is Severity.ERROR for d in diagnostics):
        proofs.append(Proof(
            rule=RULE_FRAMES,
            method="ir-exact",
            detail=(
                f"declared frame covers the exact IR frame "
                f"(reads={sorted(exact_reads)}, "
                f"writes={sorted(exact_writes)}) on the full space"
            ),
            target=target,
            action=action.name,
        ))
    return diagnostics, proofs, exact_reads, exact_writes


def analyze_action(
    action: Action,
    variables: Sequence[Variable],
    schema,
    target: str = "",
    kind: str = "action",
    config=None,
) -> ActionAnalysis:
    """The full symbolic verdict for one action (memoized).

    Actions without a plan (or whose plan fails translation validation)
    come back with ``covers_frames``/``covers_guards`` False and the
    linter falls back to the differential probe for them.
    """
    from .linter import LintConfig

    config = config or LintConfig()
    plan = getattr(action, "plan", None)
    if plan is None or getattr(action, "_base", None) is not None:
        return ActionAnalysis(action=action.name, translation="unplanned")

    config_key = (
        config.solver_budget, config.translation_limit,
        config.translation_samples, config.seed,
    )
    domains = {v.name: tuple(v.domain) for v in variables}
    memo_key = (
        schema, tuple(sorted(domains.items())), target, kind, config_key,
    )
    per_action = _ANALYSES.get(action)
    if per_action is None:
        per_action = _ANALYSES[action] = {}
    found = per_action.get(memo_key)
    if found is not None:
        return found

    analysis = _analyze_uncached(
        action, plan, variables, schema, domains, target, kind, config
    )
    per_action[memo_key] = analysis
    return analysis


def _analyze_uncached(
    action: Action,
    plan: Plan,
    variables: Sequence[Variable],
    schema,
    domains: Dict[str, Tuple],
    target: str,
    kind: str,
    config,
) -> ActionAnalysis:
    diagnostics: List[Diagnostic] = []
    proofs: List[Proof] = []

    kernel = row_kernel(action, schema, domains)
    if kernel is None:
        diagnostics.append(Diagnostic(
            code="DC512",
            severity=Severity.WARNING,
            rule=RULE_TRANSLATION,
            message=(
                f"plan of {kind} {action.name!r} does not compile for "
                f"this schema; kernels fall back to interpretation and "
                f"nothing was proven about it"
            ),
            target=target,
            action=action.name,
            hint="the plan names an unknown variable or a value outside "
                 "its domain; fix the plan or the declared domains",
        ))
        return ActionAnalysis(
            action=action.name, translation="uncompilable",
            diagnostics=tuple(diagnostics),
        )

    space_size = 1
    for variable in variables:
        space_size *= len(variable.domain)
    status, translation_diags = _validate_translation(
        action, kernel, variables, schema, space_size, target, config
    )
    diagnostics.extend(translation_diags)
    if status in ("refuted", "failed"):
        return ActionAnalysis(
            action=action.name, translation=status,
            diagnostics=tuple(diagnostics),
        )
    proofs.append(Proof(
        rule=RULE_TRANSLATION,
        method="exhaustive" if status == "proven" else "decomposed",
        detail=(
            f"plan agrees with the interpreted guard/statement on "
            + (f"all {space_size} states"
               if status == "proven" else
               f"the support product and single-variable sweeps of a "
               f"{space_size}-state space")
        ),
        target=target,
        action=action.name,
    ))

    solver = GuardSolver(domains, budget=config.solver_budget)
    satisfiable = solver.satisfiable(plan.guard)
    variable_names = frozenset(domains)

    if satisfiable is False:
        diagnostics.append(Diagnostic(
            code="DC301",
            severity=Severity.ERROR,
            rule=RULE_GUARDS,
            message=(
                f"guard of {kind} {action.name!r} is unsatisfiable: "
                f"the action is dead code (proven from the plan IR)"
            ),
            target=target,
            action=action.name,
            hint="check the guard against the variable domains",
        ))
    elif satisfiable is True:
        witness = solver.witness(plan.guard)
        detail = "guard is satisfiable"
        if witness is not None:
            detail += ": " + _render_assignment(
                tuple(witness), tuple(witness.values())
            )
        proofs.append(Proof(
            rule=RULE_GUARDS,
            method="solver",
            detail=detail,
            target=target,
            action=action.name,
        ))
    diagnostics.extend(_subexpression_diagnostics(
        solver, plan.guard, action, target, satisfiable
    ))

    table = plan_frame_table(plan, domains, budget=config.solver_budget)
    reads: Optional[FrozenSet[str]] = None
    writes: Optional[FrozenSet[str]] = None
    changes_state: Optional[bool] = None
    covers_frames = False
    if table is not None:
        changes_state = any(
            on and final != values
            for values, on, final in zip(
                table.assignments, table.enabled, table.finals
            )
        )
        if satisfiable and changes_state is False:
            diagnostics.append(Diagnostic(
                code="DC303",
                severity=Severity.INFO,
                rule=RULE_GUARDS,
                message=(
                    f"{kind} {action.name!r} is enabled but never "
                    f"changes the state (proven from the plan IR: "
                    f"self-loops only)"
                ),
                target=target,
                action=action.name,
                hint="a pure stutter action; drop it unless the "
                     "self-loop is intentional",
            ))
        frame_diags, frame_proofs, reads, writes = _frame_diagnostics(
            action, table, variable_names, bool(satisfiable), target
        )
        diagnostics.extend(frame_diags)
        proofs.extend(frame_proofs)
        covers_frames = True

    return ActionAnalysis(
        action=action.name,
        translation=status,
        diagnostics=tuple(diagnostics),
        proofs=tuple(proofs),
        reads=reads,
        writes=writes,
        satisfiable=satisfiable,
        changes_state=changes_state,
        covers_frames=covers_frames,
        covers_guards=satisfiable is not None,
    )
