"""Interference between base-program and component actions.

The paper's composition theorems (3.6, 4.3, 5.5) require that an added
detector or corrector does not *interfere* with the base program: inside
the invariant the component must not move the state (its job is done
there), and outside it the component must not race the base program on
shared variables in a way that invalidates the base program's reasoning.

Two complementary rules over two classes of composed actions:

- **correctors** — actions whose job is done inside the invariant
  (reset-style correctors, Section 5): they must not move any invariant
  state.  ``DC203`` (error): **semantic interference** — a corrector
  action, evaluated from first principles, moves some invariant state.
  This is the check :func:`repro.synthesis.nonmasking.add_nonmasking`
  performs at composition time, generalized to any declared corrector
  and run without composing; one diagnostic per offending action, with
  the total offending-state count.
- **components** — detectors and inline correctors that legitimately
  execute inside the invariant (a detector setting its witness, TMR's
  majority-vote correctors): the strict condition would be a false
  positive, so they only get the advisory race audit.
- ``DC201`` / ``DC202`` (warning / info): **frame races** — a composed
  action's write set intersects a base action's write set (write-write,
  DC201) or read set (write-read, DC202).  Computed from the symbolic
  analyzer's **exact IR frames** when the action's plan was validated,
  else from declared frames, else inferred by probing.  A shared
  variable is how correctors do their job (they fix the base program's
  variables), so overlap alone is not a bug — which is why these are
  advisory and why both rules are **skipped** when DC203 was checked
  exhaustively and found nothing: the paper's interference condition
  has then been verified directly, and the syntactic overlap adds no
  information.

When both actions of a racing pair carry validated plans, the guard
solver additionally checks **pair disjointness**: if the two guards can
never hold in the same state, the actions are never simultaneously
enabled, the race cannot happen, and the pair is dropped from the
advisory with an ``interference`` proof recorded instead — the paper's
interference-freedom side condition discharged statically.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..core.action import Action
from ..core.predicate import Predicate
from ..core.state import State, Variable
from .diagnostics import Diagnostic, Proof, Severity
from .frames import infer_frame
from .probe import ProbeSet, raw_successors

__all__ = ["check_interference", "interference_diagnostics_for_states"]

RULE = "interference"


def interference_diagnostics_for_states(
    components: Sequence[Action],
    invariant: Predicate,
    states: Sequence[State],
    target: str = "",
    exhaustive: bool = True,
    use_memo: bool = False,
) -> List[Diagnostic]:
    """``DC203`` diagnostics: component actions that move an invariant
    state, aggregated over *all* components and *all* states.

    This is the shared engine behind the lint rule and the synthesis
    check in :mod:`repro.synthesis.nonmasking`.  ``use_memo=True`` goes
    through :meth:`Action.successors` (appropriate at composition time,
    where the memoized relation is what the composed program will run
    with); the linter passes ``False`` to probe from first principles.
    """
    diagnostics: List[Diagnostic] = []
    invariant_fn = invariant.fn
    for component in components:
        example: Optional[Tuple[State, State]] = None
        offending = 0
        for state in states:
            if not invariant_fn(state):
                continue
            successors = (
                component.successors(state) if use_memo
                else raw_successors(component, state)
            )
            moved = False
            for successor in successors:
                if successor != state:
                    moved = True
                    if example is None:
                        example = (state, successor)
            if moved:
                offending += 1
        if example is not None:
            state, successor = example
            more = f" ({offending} invariant states affected)" if offending > 1 else ""
            diagnostics.append(Diagnostic(
                code="DC203",
                severity=Severity.ERROR,
                rule=RULE,
                message=(
                    f"corrector {component.name!r} interferes: it moves "
                    f"invariant state {state!r} to {successor!r}{more}"
                ),
                target=target,
                action=component.name,
                evidence=f"{state!r} -> {successor!r}",
                hint=f"strengthen the guard of {component.name!r} with "
                     f"¬({invariant.name})",
                sampled=not exhaustive,
            ))
    return diagnostics


def _frame_of(
    action: Action,
    variables: Sequence[Variable],
    probe: ProbeSet,
    pair_budget: int,
    exact_frames: Optional[Dict[str, Tuple[frozenset, frozenset]]] = None,
) -> Tuple[frozenset, frozenset, bool]:
    """``(reads, writes, exact)`` — the symbolic analyzer's exact IR
    frame when available, else the declared frame, else an inferred one.

    If the action is not even total (its guard/statement raises — the
    frame and guard rules report that as ``DC001``), fall back to the
    most conservative frame rather than crashing this rule.
    """
    if exact_frames is not None and action.name in exact_frames:
        reads, writes = exact_frames[action.name]
        return reads, writes, True
    if action.reads is not None and action.writes is not None:
        return action.reads, action.writes, False
    try:
        reads, writes, _ = infer_frame(
            action, variables, probe, pair_budget=pair_budget
        )
    except Exception:
        names = frozenset(v.name for v in variables)
        return names, names, False
    return reads, writes, False


def check_interference(
    base_actions: Sequence[Action],
    correctors: Sequence[Action],
    variables: Sequence[Variable],
    probe: ProbeSet,
    components: Sequence[Action] = (),
    invariant: Optional[Predicate] = None,
    invariant_states: Optional[Sequence[State]] = None,
    invariant_exhaustive: bool = True,
    target: str = "",
    pair_budget: int = 500,
    exact_frames: Optional[Dict[str, Tuple[frozenset, frozenset]]] = None,
    guards: Optional[Dict[str, Tuple]] = None,
    solver=None,
    proofs_out: Optional[List[Proof]] = None,
) -> List[Diagnostic]:
    """All interference diagnostics (see module docstring).

    ``correctors`` get the strict semantic rule (DC203) plus the race
    audit; ``components`` only the race audit.  ``invariant_states`` is
    the state set for the semantic check; when the caller enumerated it
    from the full space, pass ``invariant_exhaustive=True`` and a clean
    result suppresses the advisory frame-race rules.

    ``exact_frames`` / ``guards`` / ``solver`` come from the symbolic
    pass: exact IR frames replace declared/inferred ones, and a racing
    pair whose plan guards the ``solver`` proves disjoint is dropped
    (with a :class:`Proof` appended to ``proofs_out``).
    """
    diagnostics: List[Diagnostic] = []
    guards = guards or {}
    semantic_clean = False
    if invariant is not None and invariant_states is not None:
        semantic = interference_diagnostics_for_states(
            correctors, invariant, invariant_states,
            target=target, exhaustive=invariant_exhaustive,
        )
        diagnostics.extend(semantic)
        semantic_clean = not semantic and invariant_exhaustive

    if semantic_clean:
        return diagnostics

    def disjoint(component: Action, base: Action) -> bool:
        if solver is None:
            return False
        left = guards.get(component.name)
        right = guards.get(base.name)
        if left is None or right is None:
            return False
        return solver.co_satisfiable(left, right) is False

    base_frames = [
        (action, *_frame_of(action, variables, probe, pair_budget,
                            exact_frames))
        for action in base_actions
    ]
    for component in list(correctors) + list(components):
        _, component_writes, component_exact = _frame_of(
            component, variables, probe, pair_budget, exact_frames
        )
        write_write = {}
        write_read = {}
        all_exact = component_exact
        disjoint_with: List[str] = []
        for base, base_reads, base_writes, base_exact in base_frames:
            ww = component_writes & base_writes
            wr = (component_writes & base_reads) - ww
            if (ww or wr) and disjoint(component, base):
                disjoint_with.append(base.name)
                continue
            if ww:
                write_write[base.name] = ww
                all_exact = all_exact and base_exact
            if wr:
                write_read[base.name] = wr
                all_exact = all_exact and base_exact
        if disjoint_with and proofs_out is not None:
            proofs_out.append(Proof(
                rule=RULE,
                method="solver",
                detail=(
                    f"guard of {component.name!r} is disjoint from "
                    f"{sorted(disjoint_with)}: the actions are never "
                    f"simultaneously enabled, so their frame overlap "
                    f"cannot race"
                ),
                target=target,
                action=component.name,
            ))
        if write_write:
            shared = sorted(set().union(*write_write.values()))
            diagnostics.append(Diagnostic(
                code="DC201",
                severity=Severity.WARNING,
                rule=RULE,
                message=(
                    f"component {component.name!r} writes variable(s) "
                    f"{shared} also written by base action(s) "
                    f"{sorted(write_write)} and interference freedom "
                    f"was not proven"
                ),
                target=target,
                action=component.name,
                variables=tuple(shared),
                hint="provide the invariant so the semantic check (DC203) "
                     "can run exhaustively, or verify the composition",
                sampled=not probe.exhaustive and not all_exact,
            ))
        if write_read:
            shared = sorted(set().union(*write_read.values()))
            diagnostics.append(Diagnostic(
                code="DC202",
                severity=Severity.INFO,
                rule=RULE,
                message=(
                    f"component {component.name!r} writes variable(s) "
                    f"{shared} read by base action(s) {sorted(write_read)}"
                ),
                target=target,
                action=component.name,
                variables=tuple(shared),
                hint="expected when the component repairs the base "
                     "program's state; listed for audit",
                sampled=not probe.exhaustive and not all_exact,
            ))
    return diagnostics
