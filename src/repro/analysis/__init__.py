"""Static analysis for guarded-command programs (``repro lint``).

A rule-based linter that checks program, fault-class, and component
definitions *without* exhaustive state-space exploration: every rule
evaluates guards, statements, and predicates pointwise over a bounded
probe set (exhaustive for small spaces, seeded-sampled otherwise) and
emits structured :class:`~repro.analysis.diagnostics.Diagnostic`\\ s
with stable codes.

Rules and code ranges:

- ``DC0xx`` — totality: guards/statements that raise during probing.
- ``DC1xx`` — declaration soundness: ``reads``/``writes`` frames
  validated by differential probing (:mod:`repro.analysis.frames`) — a
  wrong frame silently corrupts the successor memo introduced in the
  perf core, which is exactly the class of bug a test suite built on
  the same memo cannot see — and symmetry declarations validated the
  same way (``DC106``, :mod:`repro.analysis.symmetry_lint`): a group
  element that is not an automorphism of ``p [] F`` silently merges
  inequivalent states in quotient exploration.
- ``DC2xx`` — interference (:mod:`repro.analysis.interference`):
  the paper's interference-freedom condition checked semantically for
  declared correctors, plus an advisory read/write race audit.
- ``DC3xx`` — guard satisfiability (:mod:`repro.analysis.guards`):
  dead guards, actions never enabled from the start set, pure
  stutterers.
- ``DC4xx`` — spec well-formedness (:mod:`repro.analysis.specs`):
  representable safety shapes (Lemma 3.2), satisfiability, and the
  invariant/span closure preconditions every tolerance definition
  assumes.
- ``DC5xx`` — symbolic findings over the Plan IR
  (:mod:`repro.analysis.symbolic`): dead/tautological guard
  sub-expressions (``DC501``/``DC502``) and translation-validation
  failures — a plan that disagrees with its action's interpreted
  guard/statement (``DC511``) or does not compile (``DC512``).

Actions that carry a Plan IR are analyzed *symbolically*: their frame
(``DC1xx``) and guard (``DC3xx``) verdicts are proofs over the full
space regardless of its size, recorded as
:class:`~repro.analysis.diagnostics.Proof` values on the report.  With
a certificate store active (``repro lint --store``), whole reports and
per-action analyses replay content-addressed
(:mod:`repro.analysis.lint_store`).

Entry points: :func:`lint` / :func:`lint_program` for one target, the
:data:`LINT_CATALOGUE` for the bundled programs, and ``repro lint`` on
the command line.
"""

from .diagnostics import (
    Diagnostic,
    InterferenceError,
    LintReport,
    Proof,
    Severity,
    Suppression,
)
from .catalogue import (
    EXEMPT_MODULES,
    LINT_CATALOGUE,
    CatalogueCoverageError,
    all_lint_targets,
    lint_entry,
    lint_targets,
    uncovered_modules,
)
from .frames import (
    check_frames,
    format_frame,
    infer_frame,
    infer_predicate_reads,
)
from .guards import check_guards
from .interference import (
    check_interference,
    interference_diagnostics_for_states,
)
from .linter import LintConfig, LintTarget, lint, lint_program
from .probe import ProbeSet, build_probe, raw_successors
from .reporters import (
    render_json,
    render_sarif,
    render_text,
    summarize,
    worst_severity,
)
from .specs import check_closure, check_spec
from .symbolic import (
    ActionAnalysis,
    GuardSolver,
    analyze_action,
    clear_symbolic_caches,
)
from .symmetry_lint import check_symmetry

__all__ = [
    "Diagnostic", "Severity", "Suppression", "LintReport", "Proof",
    "InterferenceError",
    "LintConfig", "LintTarget", "lint", "lint_program",
    "LINT_CATALOGUE", "lint_targets", "all_lint_targets",
    "lint_entry", "uncovered_modules", "EXEMPT_MODULES",
    "CatalogueCoverageError",
    "check_frames", "infer_frame", "infer_predicate_reads", "format_frame",
    "check_guards", "check_interference",
    "interference_diagnostics_for_states",
    "check_spec", "check_closure", "check_symmetry",
    "ActionAnalysis", "GuardSolver", "analyze_action",
    "clear_symbolic_caches",
    "ProbeSet", "build_probe", "raw_successors",
    "render_text", "render_json", "render_sarif", "summarize",
    "worst_severity",
]
