"""Probe sets: the states the linter evaluates rules over.

The linter never *explores* — it evaluates guards and statements on a
set of schema-consistent valuations chosen up front:

- when the full Cartesian space fits under ``limit`` states, the probe
  set is the whole space and every clean rule result is a proof
  (``exhaustive=True``);
- otherwise the probe set is a deterministic seeded sample of the space
  (plus the all-first-values and all-last-values corner states), and
  clean results are reported as sampled evidence, not proofs.

:func:`raw_successors` is the linter's view of an action: it calls the
guard function and the statement directly, bypassing both the per-state
successor memo and the frame-indexed class memo in
:meth:`repro.core.action.Action.successors`.  That bypass is the point —
the frame-soundness rule exists to validate the declarations those memos
trust, so it must observe the action's *actual* behaviour.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Sequence, Tuple

from ..core.action import Action
from ..core.state import State, Variable, state_space

__all__ = ["ProbeSet", "build_probe", "raw_successors"]


@dataclass(frozen=True)
class ProbeSet:
    """The valuations a lint run evaluates rules over."""

    states: Tuple[State, ...]
    exhaustive: bool       #: True iff ``states`` is the full Cartesian space
    space_size: int        #: size of the full space (for reporting)

    def __len__(self) -> int:
        return len(self.states)


def build_probe(
    variables: Sequence[Variable],
    limit: int = 4096,
    seed: int = 0,
) -> ProbeSet:
    """The probe set for a program's variables.

    Deterministic for a given ``(variables, limit, seed)``: CI and local
    runs see identical diagnostics.
    """
    space_size = 1
    for variable in variables:
        space_size *= len(variable.domain)
    if space_size <= limit:
        return ProbeSet(
            states=tuple(state_space(variables)),
            exhaustive=True,
            space_size=space_size,
        )

    rng = random.Random(seed)
    names = [v.name for v in variables]
    domains = [v.domain for v in variables]
    seen = set()
    states = []

    def record(values_by_name):
        state = State(values_by_name)
        key = state.values_tuple
        if key not in seen:
            seen.add(key)
            states.append(state)

    # corner states first: all-first and all-last domain values surface
    # "everything still ⊥ / everything saturated" pathologies that a
    # uniform sample of a large space is unlikely to hit
    record({n: d[0] for n, d in zip(names, domains)})
    record({n: d[-1] for n, d in zip(names, domains)})
    attempts = 0
    max_attempts = limit * 4
    while len(states) < limit and attempts < max_attempts:
        attempts += 1
        record({n: rng.choice(d) for n, d in zip(names, domains)})
    return ProbeSet(
        states=tuple(states), exhaustive=False, space_size=space_size
    )


def raw_successors(action: Action, state: State) -> Tuple[State, ...]:
    """The action's successors at ``state``, computed from first
    principles — no per-state memo, no frame-indexed class memo, no
    restricted-action base-memo shortcut.

    For restricted actions (``Z ∧ ac``) the composed guard already
    includes the restriction, so evaluating ``guard.fn`` + ``statement``
    directly is exactly the restricted action's semantics.
    """
    if not action.guard.fn(state):
        return ()
    raw = action.statement(state)
    return (raw,) if isinstance(raw, State) else tuple(raw)
