"""The linter driver: one target in, one :class:`LintReport` out.

A :class:`LintTarget` names a program plus the optional semantic
context the rules can exploit — spec, invariant, fault-span, fault
class, start set, and a declared split of the actions into base program
vs detector/corrector components.  :func:`lint` runs every applicable
rule over a shared probe set and applies the target's suppressions.

Nothing here explores a transition system: every rule evaluates guards,
statements, and predicates pointwise on the probe states.  That is what
makes ``repro lint`` cheap enough to run on every catalogue entry in CI
while `repro verify` remains the (exhaustive, expensive) certificate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple

from ..core.action import Action
from ..core.faults import FaultClass
from ..core.predicate import Predicate
from ..core.program import Program
from ..core.specification import Spec
from ..core.state import State
from .diagnostics import LintReport, Suppression
from .frames import check_frames
from .guards import check_guards
from .interference import check_interference
from .probe import build_probe
from .specs import check_closure, check_spec
from .symmetry_lint import check_symmetry

__all__ = ["LintConfig", "LintTarget", "lint", "lint_program"]


@dataclass(frozen=True)
class LintConfig:
    """Tunable budgets for one lint run.

    The defaults keep a full-catalogue run in CI territory: spaces up to
    ``probe_limit`` states are enumerated (rule results are proofs
    there); larger spaces are sampled with ``seed``; differential frame
    probing spends at most ``pair_budget`` perturbation pairs per
    action, trying at most ``alt_limit`` alternative values per
    variable; closure sweeps stop after ``closure_limit`` in-predicate
    states.
    """

    probe_limit: int = 4096
    pair_budget: int = 2000
    alt_limit: int = 3
    closure_limit: int = 2048
    invariant_limit: int = 1 << 16
    symmetry_limit: int = 256
    seed: int = 0
    suggest_frames: bool = False


@dataclass(frozen=True)
class LintTarget:
    """One lintable program with its semantic context.

    ``correctors`` names the actions (of ``program``) added as
    reset-style correctors: their job is done inside the invariant, so
    they get the strict semantic interference rule (``DC203``).
    ``components`` names other composed detector/corrector actions —
    ones that legitimately execute inside the invariant (detectors
    setting a witness, TMR's majority vote) — which only get the
    advisory race audit.  Both classes are exempt from the
    start-set-disjointness advisory (``DC302``): being disabled inside
    the invariant is their design.
    """

    name: str
    program: Program
    spec: Optional[Spec] = None
    invariant: Optional[Predicate] = None
    span: Optional[Predicate] = None
    faults: Optional[FaultClass] = None
    start: Optional[Predicate] = None
    correctors: Tuple[str, ...] = ()
    components: Tuple[str, ...] = ()
    suppressions: Tuple[Suppression, ...] = ()

    def _named(self, names: frozenset) -> Tuple[Action, ...]:
        return tuple(a for a in self.program.actions if a.name in names)

    def corrector_actions(self) -> Tuple[Action, ...]:
        return self._named(frozenset(self.correctors))

    def component_actions(self) -> Tuple[Action, ...]:
        return self._named(frozenset(self.components))

    def base_actions(self) -> Tuple[Action, ...]:
        names = frozenset(self.correctors) | frozenset(self.components)
        return tuple(a for a in self.program.actions if a.name not in names)


def _invariant_states(
    target: LintTarget, config: LintConfig, probe
) -> Tuple[Sequence[State], bool]:
    """The invariant states for the semantic interference rule, and
    whether they are the *complete* set (full-space enumeration)."""
    program = target.program
    if program.state_count() <= config.invariant_limit:
        return program.states_satisfying(target.invariant), True
    fn = target.invariant.fn
    return [s for s in probe.states if fn(s)], False


def lint(target: LintTarget, config: Optional[LintConfig] = None) -> LintReport:
    """Run every applicable rule over ``target``."""
    config = config or LintConfig()
    program = target.program
    probe = build_probe(
        program.variables, limit=config.probe_limit, seed=config.seed
    )
    report = LintReport(target=target.name)

    fault_actions: Tuple[Action, ...] = (
        tuple(target.faults.actions) if target.faults is not None else ()
    )

    # frame soundness — program actions and fault actions alike (fault
    # actions run through the same successor machinery when explored)
    for action in program.actions + fault_actions:
        if action._base is not None:
            # a restricted action ``Z ∧ ac`` delegates to its base
            # action's memo; it carries no frame of its own to validate
            continue
        report.extend(check_frames(
            action, program.variables, probe,
            target=target.name,
            suggest=config.suggest_frames,
            pair_budget=config.pair_budget,
            alt_limit=config.alt_limit,
        ))

    # guard satisfiability
    start = target.start if target.start is not None else target.invariant
    report.extend(check_guards(
        program.actions, probe,
        target=target.name,
        start=start,
        component_names=target.correctors + target.components,
    ))
    if fault_actions:
        report.extend(check_guards(
            fault_actions, probe,
            target=target.name,
            kind="fault action",
        ))

    # symmetry-declaration soundness (DC106) — only fires when the
    # program declares a group; quotient exploration trusts the claim
    if program.symmetry is not None:
        report.extend(check_symmetry(
            program, probe,
            target=target.name,
            faults=target.faults,
            limit=config.symmetry_limit,
        ))

    # spec well-formedness
    if target.spec is not None:
        report.extend(check_spec(target.spec, probe, target=target.name))
    report.extend(check_closure(
        program.actions, probe,
        invariant=target.invariant,
        span=target.span,
        fault_actions=fault_actions,
        target=target.name,
        closure_limit=config.closure_limit,
    ))

    # interference between base and composed corrector/component actions
    correctors = target.corrector_actions()
    components = target.component_actions()
    if correctors or components:
        if target.invariant is not None:
            states, exhaustive = _invariant_states(target, config, probe)
        else:
            states, exhaustive = None, False
        report.extend(check_interference(
            target.base_actions(), correctors, program.variables, probe,
            components=components,
            invariant=target.invariant,
            invariant_states=states,
            invariant_exhaustive=exhaustive,
            target=target.name,
            pair_budget=min(config.pair_budget, 500),
        ))

    report.apply_suppressions(target.suppressions)
    return report


def lint_program(program: Program, **context) -> LintReport:
    """Convenience wrapper: lint a bare program.

    ``context`` accepts the :class:`LintTarget` fields (``spec``,
    ``invariant``, ``span``, ``faults``, ``start``, ``correctors``,
    ``components``, ``suppressions``) plus ``config``.
    """
    config = context.pop("config", None)
    target = LintTarget(name=program.name, program=program, **context)
    return lint(target, config=config)
