"""The linter driver: one target in, one :class:`LintReport` out.

A :class:`LintTarget` names a program plus the optional semantic
context the rules can exploit — spec, invariant, fault-span, fault
class, start set, and a declared split of the actions into base program
vs detector/corrector components.  :func:`lint` runs every applicable
rule over a shared probe set and applies the target's suppressions.

Nothing here explores a transition system: every rule evaluates guards,
statements, and predicates pointwise on the probe states — except the
symbolic pass (:mod:`repro.analysis.symbolic`), which *proves* frame,
guard, and translation properties of actions that carry a Plan IR by
exact enumeration over the plan's few support variables.  Planned
actions therefore get proofs regardless of space size, while unplanned
actions keep the differential probe.  That split is what makes ``repro
lint`` cheap enough to run on every catalogue entry in CI while
`repro verify` remains the (exhaustive, expensive) certificate.

When a certificate store is active (``repro lint --store``), whole
reports and per-action symbolic analyses are content-addressed through
:mod:`repro.analysis.lint_store`: a warm run replays everything, and
editing one action re-analyzes exactly that action.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.action import Action
from ..core.faults import FaultClass
from ..core.predicate import Predicate
from ..core.program import Program
from ..core.specification import Spec
from ..core.state import Schema, State
from .diagnostics import LintReport, Proof, Suppression
from .frames import check_frames
from .guards import check_guards
from .interference import check_interference
from .probe import build_probe
from .specs import check_closure, check_spec
from .symbolic import ActionAnalysis, GuardSolver, analyze_action
from .symmetry_lint import check_symmetry
from . import lint_store

__all__ = ["LintConfig", "LintTarget", "lint", "lint_program"]


@dataclass(frozen=True)
class LintConfig:
    """Tunable budgets for one lint run.

    The defaults keep a full-catalogue run in CI territory: spaces up to
    ``probe_limit`` states are enumerated (rule results are proofs
    there); larger spaces are sampled with ``seed``; differential frame
    probing spends at most ``pair_budget`` perturbation pairs per
    action, trying at most ``alt_limit`` alternative values per
    variable; closure sweeps stop after ``closure_limit`` in-predicate
    states.

    The symbolic pass has its own budgets: ``solver_budget`` caps the
    support-product size the guard solver and frame-table enumerate
    exactly (beyond it the solver falls back to value-set abstraction
    and frames fall back to probing); translation validation sweeps the
    full space up to ``translation_limit`` states and decomposes
    per-variable with ``translation_samples`` random base contexts
    above it.  ``symbolic=False`` disables the pass entirely (every
    action takes the differential-probe path, as before PR 10).
    """

    probe_limit: int = 4096
    pair_budget: int = 2000
    alt_limit: int = 3
    closure_limit: int = 2048
    invariant_limit: int = 1 << 16
    symmetry_limit: int = 256
    seed: int = 0
    suggest_frames: bool = False
    symbolic: bool = True
    solver_budget: int = 1 << 16
    translation_limit: int = 1 << 16
    translation_samples: int = 4


@dataclass(frozen=True)
class LintTarget:
    """One lintable program with its semantic context.

    ``correctors`` names the actions (of ``program``) added as
    reset-style correctors: their job is done inside the invariant, so
    they get the strict semantic interference rule (``DC203``).
    ``components`` names other composed detector/corrector actions —
    ones that legitimately execute inside the invariant (detectors
    setting a witness, TMR's majority vote) — which only get the
    advisory race audit.  Both classes are exempt from the
    start-set-disjointness advisory (``DC302``): being disabled inside
    the invariant is their design.
    """

    name: str
    program: Program
    spec: Optional[Spec] = None
    invariant: Optional[Predicate] = None
    span: Optional[Predicate] = None
    faults: Optional[FaultClass] = None
    start: Optional[Predicate] = None
    correctors: Tuple[str, ...] = ()
    components: Tuple[str, ...] = ()
    suppressions: Tuple[Suppression, ...] = ()

    def _named(self, names: frozenset) -> Tuple[Action, ...]:
        return tuple(a for a in self.program.actions if a.name in names)

    def corrector_actions(self) -> Tuple[Action, ...]:
        return self._named(frozenset(self.correctors))

    def component_actions(self) -> Tuple[Action, ...]:
        return self._named(frozenset(self.components))

    def base_actions(self) -> Tuple[Action, ...]:
        names = frozenset(self.correctors) | frozenset(self.components)
        return tuple(a for a in self.program.actions if a.name not in names)


def _invariant_states(
    target: LintTarget, config: LintConfig, probe
) -> Tuple[Sequence[State], bool]:
    """The invariant states for the semantic interference rule, and
    whether they are the *complete* set (full-space enumeration)."""
    program = target.program
    if program.state_count() <= config.invariant_limit:
        return program.states_satisfying(target.invariant), True
    fn = target.invariant.fn
    return [s for s in probe.states if fn(s)], False


def _symbolic_pass(
    target: LintTarget,
    config: LintConfig,
    report: LintReport,
    fault_actions: Tuple[Action, ...],
) -> Dict[str, ActionAnalysis]:
    """Run (or replay) the symbolic analyzer over every planned action.

    Returns the analyses by action name; downstream rules consult them
    to skip work the analyzer already decided exactly.
    """
    program = target.program
    variables = program.variables
    schema = Schema.of(tuple(v.name for v in variables))
    analyses: Dict[str, ActionAnalysis] = {}
    labeled = [(a, "action") for a in program.actions]
    labeled += [(a, "fault action") for a in fault_actions]
    for action, kind in labeled:
        if getattr(action, "plan", None) is None or action._base is not None:
            continue
        analysis = lint_store.lookup_analysis(
            action, variables, kind, config, target=target.name
        )
        if analysis is None:
            analysis = analyze_action(
                action, variables, schema,
                target=target.name, kind=kind, config=config,
            )
            lint_store.record_analysis(
                action, variables, kind, config, analysis
            )
        analyses[action.name] = analysis
        report.extend(analysis.diagnostics)
        report.add_proofs(analysis.proofs)
    return analyses


def lint(target: LintTarget, config: Optional[LintConfig] = None) -> LintReport:
    """Run every applicable rule over ``target``."""
    config = config or LintConfig()

    cached = lint_store.lookup_report(target, config)
    if cached is not None:
        return cached

    program = target.program
    probe = build_probe(
        program.variables, limit=config.probe_limit, seed=config.seed
    )
    report = LintReport(target=target.name)

    fault_actions: Tuple[Action, ...] = (
        tuple(target.faults.actions) if target.faults is not None else ()
    )

    # symbolic pass over the Plan IR: translation validation first, then
    # exact frames and guard verdicts for every action it validated
    analyses: Dict[str, ActionAnalysis] = {}
    if config.symbolic:
        analyses = _symbolic_pass(target, config, report, fault_actions)

    # frame soundness — program actions and fault actions alike (fault
    # actions run through the same successor machinery when explored).
    # Actions whose plan survived translation validation were already
    # judged exactly by the symbolic pass; the probe adds nothing.
    for action in program.actions + fault_actions:
        if action._base is not None:
            # a restricted action ``Z ∧ ac`` delegates to its base
            # action's memo; it carries no frame of its own to validate
            continue
        analysis = analyses.get(action.name)
        if analysis is not None and analysis.validated and analysis.covers_frames:
            continue
        report.extend(check_frames(
            action, program.variables, probe,
            target=target.name,
            suggest=config.suggest_frames,
            pair_budget=config.pair_budget,
            alt_limit=config.alt_limit,
        ))

    # guard satisfiability — symbolic verdicts (proven satisfiable /
    # dead / stutter) replace the probe scan where available
    facts = {
        name: analysis.guard_facts()
        for name, analysis in analyses.items()
        if analysis.validated
    }
    start = target.start if target.start is not None else target.invariant
    report.extend(check_guards(
        program.actions, probe,
        target=target.name,
        start=start,
        component_names=target.correctors + target.components,
        facts=facts,
    ))
    if fault_actions:
        report.extend(check_guards(
            fault_actions, probe,
            target=target.name,
            kind="fault action",
            facts=facts,
        ))

    # symmetry-declaration soundness (DC106) — only fires when the
    # program declares a group; quotient exploration trusts the claim
    if program.symmetry is not None:
        report.extend(check_symmetry(
            program, probe,
            target=target.name,
            faults=target.faults,
            limit=config.symmetry_limit,
        ))

    # spec well-formedness
    if target.spec is not None:
        report.extend(check_spec(target.spec, probe, target=target.name))
    report.extend(check_closure(
        program.actions, probe,
        invariant=target.invariant,
        span=target.span,
        fault_actions=fault_actions,
        target=target.name,
        closure_limit=config.closure_limit,
    ))

    # interference between base and composed corrector/component actions
    correctors = target.corrector_actions()
    components = target.component_actions()
    if correctors or components:
        if target.invariant is not None:
            states, exhaustive = _invariant_states(target, config, probe)
        else:
            states, exhaustive = None, False
        exact_frames = {
            name: (analysis.reads, analysis.writes)
            for name, analysis in analyses.items()
            if analysis.validated and analysis.reads is not None
        }
        guards = {
            action.name: action.plan.guard
            for action in program.actions
            if analyses.get(action.name) is not None
            and analyses[action.name].validated
        }
        solver = None
        if guards:
            solver = GuardSolver(
                {v.name: tuple(v.domain) for v in program.variables},
                budget=config.solver_budget,
            )
        interference_proofs: List[Proof] = []
        report.extend(check_interference(
            target.base_actions(), correctors, program.variables, probe,
            components=components,
            invariant=target.invariant,
            invariant_states=states,
            invariant_exhaustive=exhaustive,
            target=target.name,
            pair_budget=min(config.pair_budget, 500),
            exact_frames=exact_frames,
            guards=guards,
            solver=solver,
            proofs_out=interference_proofs,
        ))
        report.add_proofs(interference_proofs)

    report.apply_suppressions(target.suppressions)
    lint_store.record_report(target, config, report)
    return report


def lint_program(program: Program, **context) -> LintReport:
    """Convenience wrapper: lint a bare program.

    ``context`` accepts the :class:`LintTarget` fields (``spec``,
    ``invariant``, ``span``, ``faults``, ``start``, ``correctors``,
    ``components``, ``suppressions``) plus ``config``.
    """
    config = context.pop("config", None)
    target = LintTarget(name=program.name, program=program, **context)
    return lint(target, config=config)
